"""Named, independent, reproducible random streams.

Stochastic model components (workload arrivals, failure times, message
jitter) must each draw from their *own* stream so that adding randomness to
one component cannot perturb another — the classic variance-reduction
discipline for simulation experiments.  :class:`RandomStreams` derives one
:class:`numpy.random.Generator` per name from a root seed using NumPy's
``SeedSequence.spawn`` machinery, which guarantees statistical independence
between children.

Usage::

    streams = RandomStreams(seed=42)
    arrivals = streams.get("workload.arrivals")
    failures = streams.get("fault.node")      # independent of arrivals
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of independent RNG streams keyed by dotted names.

    The same ``(seed, name)`` pair always yields a generator with the same
    initial state, regardless of creation order — names are hashed into the
    seed material rather than assigned sequential spawn keys.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._generators: Dict[str, np.random.Generator] = {}

    def _sequence(self, name: str) -> np.random.SeedSequence:
        # Mix the stream name into the entropy deterministically.  The
        # digest is stable across processes (unlike hash()) because it
        # uses the bytes of the name itself.
        name_key = tuple(name.encode("utf-8"))
        return np.random.SeedSequence(entropy=self.seed, spawn_key=name_key)

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._generators.get(name)
        if generator is None:
            generator = np.random.default_rng(self._sequence(name))
            self._generators[name] = generator
        return generator

    def fresh(self, name: str) -> np.random.Generator:
        """A NEW generator for ``name`` in its deterministic initial state.

        Unlike :meth:`get`, the result is not cached: every call returns
        an independent generator object starting from the same state.
        SPMD programs use this so every simulated rank can derive
        identical input data without sharing (and therefore perturbing)
        one generator's state.
        """
        return np.random.default_rng(self._sequence(name))

    def fork(self, salt: int) -> "RandomStreams":
        """A new registry whose streams are independent of this one.

        Used for replications: ``streams.fork(rep)`` gives replication
        ``rep`` its own universe of streams while staying reproducible.
        """
        return RandomStreams(seed=self.seed * 1_000_003 + int(salt) + 1)

    def names(self):
        """Names of the streams created so far (sorted)."""
        return sorted(self._generators)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._generators)})"
