"""Discrete-event simulation kernel.

A small, SimPy-flavoured engine: *processes* are Python generators that
``yield`` events; the :class:`~repro.sim.engine.Simulator` advances virtual
time from one event to the next.  All cluster behaviour in :mod:`repro`
(message transfers, job execution, failures) happens in virtual time, so
model latencies in the microsecond range are exact quantities rather than
wall-clock measurements distorted by interpreter overhead.

Public surface
--------------
:class:`Simulator`
    The event loop: ``now``, :meth:`~repro.sim.engine.Simulator.process`,
    :meth:`~repro.sim.engine.Simulator.timeout`,
    :meth:`~repro.sim.engine.Simulator.run`.
:class:`Event`, :class:`Timeout`, :class:`Process`
    Awaitable primitives.
:class:`AllOf`, :class:`AnyOf`
    Event combinators.
:class:`Resource`, :class:`Store`
    Queueing primitives (capacity-limited server, FIFO buffer).
:class:`RandomStreams`
    Named, independent, reproducible RNG streams.
:class:`DetSanRecorder`
    Determinism sanitizer: folds every scheduling decision into a
    rolling digest so two same-seed runs can be diffed event-by-event
    (:func:`~repro.sim.detsan.first_divergence`).
:class:`Interrupt`
    Exception injected into a process by ``Process.interrupt``.
:class:`FailureCause`, :class:`LinkDownCause`, :class:`AbortCause`
    Structured interrupt causes (tuple-compatible) used by fault injection.
"""

from repro.sim.causes import AbortCause, FailureCause, LinkDownCause
from repro.sim.detsan import (
    DetSanRecorder,
    Divergence,
    EventRecord,
    first_divergence,
)
from repro.sim.equeue import CalendarEventQueue, HeapEventQueue
from repro.sim.event import AllOf, AnyOf, Event, EventStatus, Timeout
from repro.sim.engine import Interrupt, Process, SimulationError, Simulator
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, RecordingTracer, TraceRecord

__all__ = [
    "AbortCause",
    "AllOf",
    "AnyOf",
    "CalendarEventQueue",
    "DetSanRecorder",
    "Divergence",
    "Event",
    "EventRecord",
    "EventStatus",
    "FailureCause",
    "HeapEventQueue",
    "Interrupt",
    "LinkDownCause",
    "NullTracer",
    "Process",
    "RandomStreams",
    "RecordingTracer",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
]
