"""Historical anchors: the public Top500 record, 1997–2010.

The keynote's trajectory claims are Top500 claims, so the reproduction
carries the public record of #1 systems as external calibration data.
``rmax`` values are the published LINPACK results (TFLOPS); ``commodity``
marks systems built from commodity processors + commercial interconnects
(the keynote's subject) as opposed to vector/custom machines.

Used by bench E16 to check that the roadmap's slope matches what actually
happened — the strongest external validation available for a vision talk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["Top500Entry", "TOP500_NUMBER_ONES", "historical_slope",
           "first_commodity_petaflops_year"]


@dataclass(frozen=True)
class Top500Entry:
    """One #1 system from the public record."""

    year: float           # list edition (mid-year convention for June)
    name: str
    rmax_tflops: float
    commodity: bool


#: #1 systems at the June list of each year (rmax in TFLOPS).
TOP500_NUMBER_ONES: List[Top500Entry] = [
    Top500Entry(1997.5, "ASCI Red", 1.068, True),
    Top500Entry(1999.5, "ASCI Red (upgraded)", 2.121, True),
    Top500Entry(2000.5, "ASCI White", 4.938, False),
    Top500Entry(2002.5, "Earth Simulator", 35.86, False),
    Top500Entry(2004.9, "BlueGene/L", 70.72, True),
    Top500Entry(2005.9, "BlueGene/L", 280.6, True),
    Top500Entry(2007.9, "BlueGene/L (upgraded)", 478.2, True),
    Top500Entry(2008.5, "Roadrunner", 1026.0, True),
    Top500Entry(2009.9, "Jaguar", 1759.0, True),
    Top500Entry(2010.9, "Tianhe-1A", 2566.0, True),
]


def historical_slope(start_year: float = 1997.0,
                     end_year: float = 2011.0) -> float:
    """Fitted yearly growth factor of #1 Rmax over a span (log-linear
    least squares).  The full-record answer is the famous ~1.8-1.9x/year."""
    points = [(e.year, e.rmax_tflops) for e in TOP500_NUMBER_ONES
              if start_year <= e.year <= end_year]
    if len(points) < 2:
        raise ValueError("need at least two record points in the span")
    years = np.array([p[0] for p in points])
    logs = np.log(np.array([p[1] for p in points]))
    slope, _intercept = np.polyfit(years, logs, 1)
    return float(np.exp(slope))


def first_commodity_petaflops_year() -> float:
    """Year the record shows the first commodity petaflops (Roadrunner)."""
    for entry in TOP500_NUMBER_ONES:
        if entry.commodity and entry.rmax_tflops >= 1000.0:
            return entry.year
    raise RuntimeError("record table is missing the petaflops entry")
