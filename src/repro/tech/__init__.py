"""Technology projection models.

Sterling's keynote promises to "examine current projections of device
technology to anticipate the performance, capacity, power, size, and cost
curves of future commodity clusters".  This package is that examination as
code: exponential/piecewise projection primitives, a 2002-anchored commodity
technology roadmap (ITRS-2001-flavoured constants), and named growth
scenarios.

Public surface
--------------
:class:`ExponentialProjection`, :class:`PiecewiseProjection`
    Projection primitives with forward evaluation and target-crossing
    inversion.
:class:`TechnologyRoadmap`
    A bundle of named projections for every quantity the models consume.
:data:`SCENARIOS` / :func:`get_scenario`
    ``conservative`` / ``nominal`` / ``aggressive`` roadmaps.
:func:`technology_curve`
    Tabulate any roadmap quantity over a span of years.
"""

from repro.tech.projection import ExponentialProjection, PiecewiseProjection, Projection
from repro.tech.roadmap import (
    BASE_YEAR,
    SCENARIOS,
    TechnologyRoadmap,
    get_scenario,
    nominal_roadmap,
)
from repro.tech.curves import CurvePoint, technology_curve, curve_table

__all__ = [
    "BASE_YEAR",
    "CurvePoint",
    "ExponentialProjection",
    "PiecewiseProjection",
    "Projection",
    "SCENARIOS",
    "TechnologyRoadmap",
    "curve_table",
    "get_scenario",
    "nominal_roadmap",
    "technology_curve",
]
