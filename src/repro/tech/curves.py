"""Curve tabulation: turn a roadmap into the rows a report prints.

The keynote's Figure-1-equivalent is "the performance, capacity, power,
size, and cost curves of future commodity clusters"; :func:`technology_curve`
produces one named curve as ``(years, values)`` arrays and
:func:`curve_table` assembles the full multi-quantity table used by
``benchmarks/bench_e01_tech_curves.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.tech.roadmap import TechnologyRoadmap

__all__ = ["CurvePoint", "technology_curve", "curve_table", "DERIVED_CURVES"]


@dataclass(frozen=True)
class CurvePoint:
    """One (year, value) sample of a named technology curve."""

    curve: str
    year: float
    value: float


#: Derived curves exposed by name alongside the roadmap primaries.
DERIVED_CURVES: Dict[str, Callable[[TechnologyRoadmap, float], float]] = {
    "dollars_per_flops": lambda r, y: r.dollars_per_flops(y),
    "watts_per_flops": lambda r, y: r.watts_per_flops(y),
    "flops_per_rack_unit": lambda r, y: r.flops_per_rack_unit(y),
    "bytes_per_flops": lambda r, y: r.bytes_per_flops(y),
}


def technology_curve(roadmap: TechnologyRoadmap, quantity: str,
                     years: Sequence[float]) -> np.ndarray:
    """Values of ``quantity`` (primary or derived) at each of ``years``.

    Returns a float array aligned with ``years``.
    """
    year_array = np.asarray(list(years), dtype=float)
    if quantity in DERIVED_CURVES:
        fn = DERIVED_CURVES[quantity]
        return np.array([fn(roadmap, float(y)) for y in year_array])
    projection = roadmap.quantity(quantity)
    return np.asarray(projection.value(year_array), dtype=float)


def curve_table(roadmap: TechnologyRoadmap, years: Sequence[float],
                quantities: Sequence[str]) -> List[List[CurvePoint]]:
    """A row per year, a :class:`CurvePoint` per quantity.

    The nested-list shape mirrors how report tables are printed: outer list
    is rows (years), inner list is columns (quantities).
    """
    rows: List[List[CurvePoint]] = []
    columns = {q: technology_curve(roadmap, q, years) for q in quantities}
    for i, year in enumerate(years):
        rows.append([
            CurvePoint(curve=q, year=float(year), value=float(columns[q][i]))
            for q in quantities
        ])
    return rows
