"""Projection primitives: how a technology quantity evolves over years.

Two shapes cover everything the roadmap needs:

* :class:`ExponentialProjection` — constant compound annual growth (or
  decline, for costs and latencies).  This is "Moore's Law" in its general
  form.
* :class:`PiecewiseProjection` — a chain of exponential segments, used for
  quantities whose growth rate changes (e.g. clock frequency flattening, or
  a conservative scenario where density gains slow late in the decade).

Both support forward evaluation (vectorised over numpy arrays of years) and
inversion: *when does the quantity cross a target value?* — the primitive
behind every "year of the first commodity petaflops" style question.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple, Union

import numpy as np

__all__ = ["Projection", "ExponentialProjection", "PiecewiseProjection"]

YearLike = Union[float, np.ndarray]


class Projection:
    """Interface for a scalar quantity as a function of calendar year."""

    def value(self, year: YearLike) -> YearLike:
        """Quantity at ``year`` (fractional years allowed)."""
        raise NotImplementedError

    def year_reaching(self, target: float) -> float:
        """First (fractional) year at which the quantity reaches ``target``.

        Raises :class:`ValueError` if the projection never reaches it.
        """
        raise NotImplementedError

    def __call__(self, year: YearLike) -> YearLike:
        return self.value(year)


class ExponentialProjection(Projection):
    """``value(year) = base_value * (1 + cagr) ** (year - base_year)``.

    Parameters
    ----------
    base_year, base_value:
        The anchor operating point (e.g. 2002, 9.6 GFLOPS).
    cagr:
        Compound annual growth rate, fractional.  Negative values model
        improving costs/latencies (e.g. ``-0.35`` for $/GFLOPS falling 35 %
        a year).  Must be > -1.
    """

    def __init__(self, base_year: float, base_value: float, cagr: float) -> None:
        if base_value <= 0:
            raise ValueError(f"base_value must be positive, got {base_value}")
        if cagr <= -1.0:
            raise ValueError(f"cagr must exceed -100%, got {cagr}")
        self.base_year = float(base_year)
        self.base_value = float(base_value)
        self.cagr = float(cagr)

    @classmethod
    def from_doubling_time(cls, base_year: float, base_value: float,
                           years_to_double: float) -> "ExponentialProjection":
        """Anchor + doubling period, e.g. the classic 18-month Moore cadence
        is ``years_to_double=1.5``."""
        if years_to_double <= 0:
            raise ValueError("doubling time must be positive")
        return cls(base_year, base_value, 2.0 ** (1.0 / years_to_double) - 1.0)

    @classmethod
    def fit(cls, points: Sequence[Tuple[float, float]]
            ) -> "ExponentialProjection":
        """Least-squares exponential through observed ``(year, value)``
        points (log-linear regression) — how the roadmap's growth rates
        would be calibrated from real data, e.g. the Top500 record."""
        if len(points) < 2:
            raise ValueError("need at least two points to fit")
        years = np.array([p[0] for p in points], dtype=float)
        values = np.array([p[1] for p in points], dtype=float)
        if np.any(values <= 0):
            raise ValueError("values must be positive to fit an exponential")
        slope, intercept = np.polyfit(years, np.log(values), 1)
        base_year = float(years[0])
        base_value = float(np.exp(intercept + slope * base_year))
        return cls(base_year, base_value, float(np.expm1(slope)))

    @classmethod
    def through_points(cls, year_a: float, value_a: float,
                       year_b: float, value_b: float) -> "ExponentialProjection":
        """Fit the unique exponential through two observed operating points."""
        if year_b == year_a:
            raise ValueError("points must be at distinct years")
        if value_a <= 0 or value_b <= 0:
            raise ValueError("values must be positive")
        cagr = (value_b / value_a) ** (1.0 / (year_b - year_a)) - 1.0
        return cls(year_a, value_a, cagr)

    def value(self, year: YearLike) -> YearLike:
        """Quantity at ``year`` (scalar or numpy array of years)."""
        years = np.asarray(year, dtype=float) - self.base_year
        result = self.base_value * np.power(1.0 + self.cagr, years)
        if np.isscalar(year) or getattr(year, "ndim", 1) == 0:
            return float(result)
        return result

    def year_reaching(self, target: float) -> float:
        """Year at which the exponential crosses ``target``."""
        if target <= 0:
            raise ValueError("target must be positive")
        if target == self.base_value:
            return self.base_year
        if self.cagr == 0:
            raise ValueError("flat projection never reaches a different target")
        exponent = math.log(target / self.base_value) / math.log1p(self.cagr)
        # A growing projection only reaches larger targets going forward and
        # a shrinking one only smaller; in both cases the formula already
        # yields the correct (possibly past) year.
        return self.base_year + exponent

    def doubling_time(self) -> float:
        """Years per doubling (or per halving, for negative growth)."""
        if self.cagr == 0:
            return math.inf
        return abs(math.log(2.0) / math.log1p(self.cagr))

    def scaled(self, factor: float) -> "ExponentialProjection":
        """Same growth law with the anchor value multiplied by ``factor``.

        Used to derive per-architecture variants from a common roadmap
        (e.g. a blade node at 0.8x the compute of a fat node).
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return ExponentialProjection(self.base_year, self.base_value * factor,
                                     self.cagr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExponentialProjection({self.base_year:g}, "
                f"{self.base_value:.4g}, cagr={self.cagr:+.3f})")


class PiecewiseProjection(Projection):
    """A chain of exponential segments over contiguous year intervals.

    ``breakpoints`` are the years where the growth rate changes; segment
    ``i`` applies from ``breakpoints[i]`` (inclusive) to ``breakpoints[i+1]``.
    The value is continuous across breakpoints by construction: each segment
    is re-anchored to the previous segment's endpoint value.
    """

    def __init__(self, base_year: float, base_value: float,
                 segments: Sequence[Tuple[float, float]]) -> None:
        """``segments`` is a list of ``(until_year, cagr)`` pairs; the last
        ``until_year`` may be ``math.inf``."""
        if not segments:
            raise ValueError("need at least one segment")
        self.base_year = float(base_year)
        self.base_value = float(base_value)
        self._pieces: List[ExponentialProjection] = []
        self._ends: List[float] = []
        anchor_year, anchor_value = self.base_year, self.base_value
        previous_end = self.base_year
        for until_year, cagr in segments:
            if until_year <= previous_end:
                raise ValueError("segment end years must strictly increase")
            piece = ExponentialProjection(anchor_year, anchor_value, cagr)
            self._pieces.append(piece)
            self._ends.append(float(until_year))
            if math.isfinite(until_year):
                anchor_value = piece.value(until_year)
                anchor_year = until_year
            previous_end = until_year

    def _piece_for(self, year: float) -> ExponentialProjection:
        for piece, end in zip(self._pieces, self._ends):
            if year <= end:
                return piece
        return self._pieces[-1]

    def value(self, year: YearLike) -> YearLike:
        """Quantity at ``year``, segment-aware (arrays supported)."""
        if np.isscalar(year) or getattr(year, "ndim", 1) == 0:
            y = float(year)
            if y < self.base_year:
                # Extrapolate backwards with the first segment's law.
                return float(self._pieces[0].value(y))
            return float(self._piece_for(y).value(y))
        years = np.asarray(year, dtype=float)
        return np.array([self.value(float(y)) for y in years])

    def year_reaching(self, target: float) -> float:
        """First year any segment crosses ``target`` (ValueError if none)."""
        if target <= 0:
            raise ValueError("target must be positive")
        start = self.base_year
        for piece, end in zip(self._pieces, self._ends):
            value_at_start = piece.value(start)
            value_at_end = piece.value(end) if math.isfinite(end) else None
            crossed = (
                (value_at_start <= target and
                 (value_at_end is None or value_at_end >= target) and piece.cagr > 0)
                or
                (value_at_start >= target and
                 (value_at_end is None or value_at_end <= target) and piece.cagr < 0)
                or value_at_start == target
            )
            if crossed:
                year = piece.year_reaching(target)
                if year >= start - 1e-9 and (not math.isfinite(end) or year <= end + 1e-9):
                    return year
            start = end
        raise ValueError(f"projection never reaches {target!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PiecewiseProjection({self.base_year:g}, {self.base_value:.4g},"
                f" {len(self._pieces)} segments)")
