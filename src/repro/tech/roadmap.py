"""The 2002-anchored commodity technology roadmap.

Anchor operating points describe a typical Beowulf-class node as purchasable
in September 2002 (when the keynote was delivered): a dual-socket Pentium 4
Xeon box at ~2.4 GHz with SSE2 (2 DP flops/clock/socket), 2 GB of DDR
SDRAM, and Fast/Gigabit Ethernet or an early high-speed interconnect.

Growth rates are the "current projections of device technology" the talk
refers to: the ITRS-2001 cadence for logic and DRAM, historical Top500
growth for system-level peak, and published trend lines for disk, network,
and cost quantities.  They parameterise three named scenarios:

``conservative``
    Moore doubling every 24 months, density/network gains slow after 2007.
``nominal``
    The classic 18-month doubling everywhere it historically applied.
``aggressive``
    12-month doubling plus faster interconnect/packaging gains — the
    "revolutionary structures" upside the talk argues for.

All quantities are **per node** unless the name says otherwise, in base
units (FLOPS, bytes, watts, dollars, seconds, rack-units).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.tech.projection import ExponentialProjection, PiecewiseProjection, Projection
from repro.units import GIB

__all__ = [
    "BASE_YEAR",
    "TechnologyRoadmap",
    "SCENARIOS",
    "get_scenario",
    "nominal_roadmap",
]

#: Anchor year for every projection: the keynote's "now".
BASE_YEAR = 2002.75  # September 2002

#: 2002 commodity-node anchor values (dual 2.4 GHz Xeon class).
ANCHORS_2002: Dict[str, float] = {
    # 2 sockets x 2.4e9 Hz x 2 DP flops/clock (SSE2).
    "node_peak_flops": 9.6e9,
    # 2 GB DDR per node was the workhorse configuration.
    "node_memory_bytes": 2.0 * GIB,
    # ~2 GB/s per-node memory bandwidth (PC2100 DDR, dual channel).
    "node_memory_bandwidth": 2.1e9,
    # Whole-node draw under load, including disk and fans.
    "node_power_watts": 250.0,
    # Street price of a dual-Xeon compute node.
    "node_cost_dollars": 3000.0,
    # 1U pizza-box form factor.
    "node_size_rack_units": 1.0,
    # 80 GB commodity IDE disk.
    "node_disk_bytes": 80e9,
    # Commodity cluster network: GigE-class data rate (bytes/s) ...
    "link_bandwidth_bytes": 125e6,
    # ... and its MPI-level short-message latency.
    "link_latency_seconds": 60e-6,
}

#: Nominal compound annual growth rates ("current projections").
NOMINAL_CAGR: Dict[str, float] = {
    "node_peak_flops": 2.0 ** (1 / 1.5) - 1.0,     # 18-month doubling
    "node_memory_bytes": 2.0 ** (1 / 2.0) - 1.0,   # DRAM: 24-month doubling
    "node_memory_bandwidth": 0.26,                  # lags logic badly (the wall)
    "node_power_watts": 0.05,                       # creeping up per node
    "node_cost_dollars": 0.0,                       # constant dollars per node
    "node_size_rack_units": -0.15,                  # densification (blades)
    "node_disk_bytes": 2.0 ** (1 / 1.0) - 1.0,     # disk areal density boom
    "link_bandwidth_bytes": 2.0 ** (1 / 1.5) - 1.0,
    "link_latency_seconds": -0.30,                  # latency improves slowly
}


@dataclass(frozen=True)
class TechnologyRoadmap:
    """A named bundle of projections, one per roadmap quantity.

    Derived quantities (``dollars_per_flops``, ``watts_per_flops``,
    ``flops_per_rack_unit``) are computed from the primaries so the bundle
    can never be internally inconsistent.
    """

    name: str
    projections: Mapping[str, Projection] = field(repr=False)

    QUANTITIES = tuple(ANCHORS_2002)

    def __post_init__(self) -> None:
        missing = set(self.QUANTITIES) - set(self.projections)
        if missing:
            raise ValueError(f"roadmap {self.name!r} missing projections: "
                             f"{sorted(missing)}")

    def quantity(self, name: str) -> Projection:
        """The projection for a primary quantity."""
        try:
            return self.projections[name]
        except KeyError:
            raise KeyError(
                f"unknown roadmap quantity {name!r}; primaries are "
                f"{sorted(self.QUANTITIES)}"
            ) from None

    def value(self, name: str, year: float) -> float:
        """Primary quantity value at ``year``."""
        return float(self.quantity(name).value(year))

    # -- derived curves ----------------------------------------------------

    def dollars_per_flops(self, year: float) -> float:
        """Node cost divided by node peak — the price/performance curve."""
        return self.value("node_cost_dollars", year) / self.value(
            "node_peak_flops", year)

    def watts_per_flops(self, year: float) -> float:
        """Power efficiency curve (W per peak FLOPS)."""
        return self.value("node_power_watts", year) / self.value(
            "node_peak_flops", year)

    def flops_per_rack_unit(self, year: float) -> float:
        """Packaging density curve (peak FLOPS per rack unit)."""
        return self.value("node_peak_flops", year) / self.value(
            "node_size_rack_units", year)

    def bytes_per_flops(self, year: float) -> float:
        """Memory balance (bytes of DRAM per peak FLOPS)."""
        return self.value("node_memory_bytes", year) / self.value(
            "node_peak_flops", year)

    def year_of_cluster_peak(self, target_flops: float,
                             node_count: int) -> float:
        """First year an ``node_count``-node cluster's peak reaches
        ``target_flops``."""
        if node_count < 1:
            raise ValueError("node_count must be >= 1")
        return self.quantity("node_peak_flops").year_reaching(
            target_flops / node_count)

    def affordable_nodes(self, budget_dollars: float, year: float,
                         node_cost_overhead: float = 1.25) -> int:
        """How many nodes ``budget_dollars`` buys at ``year``.

        ``node_cost_overhead`` accounts for the non-node share of a cluster
        purchase (network, racks, storage, integration) as a multiplier on
        node cost; 1.25 reflects the rule-of-thumb 20 % network share of a
        Beowulf budget.
        """
        if budget_dollars <= 0:
            raise ValueError("budget must be positive")
        per_node = self.value("node_cost_dollars", year) * node_cost_overhead
        return int(budget_dollars // per_node)


def _roadmap_from_rates(name: str, cagr: Mapping[str, float]) -> TechnologyRoadmap:
    projections: Dict[str, Projection] = {
        quantity: ExponentialProjection(BASE_YEAR, ANCHORS_2002[quantity],
                                        cagr[quantity])
        for quantity in ANCHORS_2002
    }
    return TechnologyRoadmap(name=name, projections=projections)


def _conservative_roadmap() -> TechnologyRoadmap:
    rates = dict(NOMINAL_CAGR)
    rates["node_peak_flops"] = 2.0 ** (1 / 2.0) - 1.0   # 24-month doubling
    rates["node_disk_bytes"] = 2.0 ** (1 / 1.5) - 1.0
    rates["link_bandwidth_bytes"] = 2.0 ** (1 / 2.0) - 1.0
    rates["link_latency_seconds"] = -0.20
    roadmap = _roadmap_from_rates("conservative", rates)
    # Density gains stall after 2007 in the conservative outlook.
    projections = dict(roadmap.projections)
    projections["node_size_rack_units"] = PiecewiseProjection(
        BASE_YEAR, ANCHORS_2002["node_size_rack_units"],
        segments=[(2007.0, -0.15), (math.inf, 0.0)],
    )
    return TechnologyRoadmap("conservative", projections)


def _aggressive_roadmap() -> TechnologyRoadmap:
    rates = dict(NOMINAL_CAGR)
    rates["node_peak_flops"] = 1.0                       # 12-month doubling
    rates["node_size_rack_units"] = -0.25                # blades + SoC win
    rates["link_bandwidth_bytes"] = 1.0                  # IB 4x -> 12x -> optical
    rates["link_latency_seconds"] = -0.40
    return _roadmap_from_rates("aggressive", rates)


def nominal_roadmap() -> TechnologyRoadmap:
    """The 18-month-doubling baseline roadmap."""
    return _roadmap_from_rates("nominal", NOMINAL_CAGR)


SCENARIOS: Dict[str, TechnologyRoadmap] = {
    "conservative": _conservative_roadmap(),
    "nominal": nominal_roadmap(),
    "aggressive": _aggressive_roadmap(),
}


def get_scenario(name: str) -> TechnologyRoadmap:
    """Look up a named scenario roadmap (KeyError lists the options)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
