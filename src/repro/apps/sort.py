"""Distributed sample sort — the irregular, alltoallv-shaped workload.

Sample sort is the classic commodity-cluster sorting algorithm: every rank
sorts locally, contributes samples, a shared splitter vector partitions
the key space, and one (irregular) all-to-all exchange routes every key to
its destination rank.  Unlike the FFT's balanced transpose, the exchange
volume here is *data-dependent* — the workload that stresses an
interconnect's handling of skew.

The sort is real: the gathered output is checked against ``np.sort`` in
tests.  Local sort cost is charged at O(n log n) key comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.compute import ComputeCharge
from repro.messaging.comm import Communicator
from repro.messaging.program import SpmdResult, run_spmd
from repro.sim.rng import RandomStreams

__all__ = ["SortResult", "rank_stream_name", "run_sample_sort"]

#: Charged cost per key comparison (flops-equivalent).
_COMPARE_FLOPS = 4.0


def rank_stream_name(rank: int) -> str:
    """Name of the stream rank ``rank`` draws its local keys from."""
    return f"apps.sort.rank{rank:04d}"


@dataclass(frozen=True)
class SortResult:
    """Outcome of a distributed sort."""

    keys: np.ndarray          # globally sorted keys (gathered at root)
    elapsed: float
    n: int
    ranks: int
    #: max/mean of per-rank final key counts — the skew the splitter
    #: sampling is supposed to bound.
    balance: float


def _sort_rank(comm: Communicator, n: int, oversample: int,
               charge: ComputeCharge, streams: RandomStreams, skew: float):
    size, rank = comm.size, comm.rank
    rng = streams.fresh(rank_stream_name(rank))
    local_n = n // size + (1 if rank < n % size else 0)
    # Optional skew: a power transform concentrates keys near 0, which
    # uniform splitters would misload without sampling.
    keys = rng.random(local_n) ** (1.0 + skew)

    # 1. Local sort: n/p log2(n/p) comparisons.
    keys.sort()
    yield comm.sim.timeout(charge.seconds(
        flops=_COMPARE_FLOPS * local_n * np.log2(max(local_n, 2))))

    if size == 1:
        gathered = yield from comm.gather(keys, root=0)
        return (keys if rank == 0 else None), local_n

    # 2. Regular sampling: p*oversample local samples -> root picks p-1
    # splitters from the sorted sample pool.
    positions = np.linspace(0, local_n - 1, oversample,
                            dtype=int) if local_n else np.array([], dtype=int)
    samples = keys[positions] if local_n else np.array([])
    pools = yield from comm.gather(samples, root=0)
    if rank == 0:
        pool = np.sort(np.concatenate(pools))
        picks = np.linspace(0, len(pool) - 1, size + 1, dtype=int)[1:-1]
        splitters = pool[picks]
    else:
        splitters = None
    splitters = yield from comm.bcast(splitters, root=0)

    # 3. Partition and exchange (irregular alltoall).
    bounds = np.searchsorted(keys, splitters)
    pieces = np.split(keys, bounds)
    incoming = yield from comm.alltoall(pieces)

    # 4. Merge what arrived (charged as a final local sort).
    mine = np.concatenate(incoming)
    mine.sort()
    yield comm.sim.timeout(charge.seconds(
        flops=_COMPARE_FLOPS * len(mine) * np.log2(max(len(mine), 2))))

    # Timing stops here; gather is verification plumbing.
    loop_end = comm.sim.now
    gathered = yield from comm.gather(mine, root=0)
    counts = yield from comm.gather(len(mine), root=0)
    if rank == 0:
        return loop_end, np.concatenate(gathered), counts
    return loop_end, None, None


def run_sample_sort(ranks: int, n: int, oversample: int = 32,
                    charge: Optional[ComputeCharge] = None,
                    seed: int = 0, skew: float = 0.0,
                    streams: Optional[RandomStreams] = None,
                    **spmd_kwargs) -> SortResult:
    """Sort ``n`` seeded random keys across ``ranks`` processes.

    ``skew > 0`` makes the key distribution non-uniform, exercising the
    splitter sampling; ``oversample`` trades sampling traffic for balance.
    Rank ``r`` draws its keys from the :func:`rank_stream_name` stream of
    ``streams`` (default: ``RandomStreams(seed)``), so every rank's keys
    are independent and the whole input is reproducible per seed.
    """
    if n < ranks:
        raise ValueError(f"need at least one key per rank ({ranks} > {n})")
    if oversample < 1:
        raise ValueError("oversample must be >= 1")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    charge = charge if charge is not None else ComputeCharge()
    streams = streams if streams is not None else RandomStreams(seed)
    result: SpmdResult = run_spmd(ranks, _sort_rank, n, oversample, charge,
                                  streams, skew, **spmd_kwargs)
    if ranks == 1:
        keys, _count = result.results[0]
        return SortResult(keys=keys, elapsed=result.elapsed, n=n,
                          ranks=1, balance=1.0)
    loop_end = max(r[0] for r in result.results)
    keys = result.results[0][1]
    counts = np.asarray(result.results[0][2], dtype=float)
    balance = float(counts.max() / counts.mean()) if counts.mean() else 1.0
    return SortResult(keys=keys, elapsed=loop_end, n=n, ranks=ranks,
                      balance=balance)
