"""Row-decomposed 2D FFT — the alltoall/bisection-bound workload.

The standard transpose algorithm: FFT the locally-owned rows, globally
transpose (one alltoall moving the entire dataset), FFT the rows again.
The transpose stresses bisection bandwidth like nothing else, which is why
this kernel separates oversubscribed fabrics from full-bisection ones in
bench E5.

The transform is computed for real (numpy FFT on local blocks) and checked
against ``np.fft.fft2`` in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.compute import ComputeCharge
from repro.messaging.comm import Communicator
from repro.messaging.program import SpmdResult, run_spmd
from repro.sim.rng import RandomStreams

__all__ = ["FftResult", "run_fft2d"]

#: Stream name every rank derives the (identical) input matrix from.
_INPUT_STREAM = "apps.fft.input"


@dataclass(frozen=True)
class FftResult:
    """Outcome of a distributed 2D FFT."""

    spectrum: np.ndarray      # full transform (gathered at root)
    elapsed: float
    bytes_moved: float
    n: int
    ranks: int


def _block_bounds(n: int, size: int) -> List[int]:
    return list(np.linspace(0, n, size + 1).astype(int))


def _fft_flops(rows: int, n: int) -> float:
    """5 n log2 n flops per length-n complex FFT, ``rows`` of them."""
    return 5.0 * rows * n * np.log2(max(n, 2))


def _transpose_distributed(comm: Communicator, local: np.ndarray,
                           bounds: List[int]):
    """Global transpose of a row-distributed matrix via alltoall.

    Rank r owns rows [bounds[r], bounds[r+1]); after the call it owns the
    same row range *of the transposed matrix*.
    """
    size, rank = comm.size, comm.rank
    pieces = [np.ascontiguousarray(local[:, bounds[p]:bounds[p + 1]])
              for p in range(size)]
    received = yield from comm.alltoall(pieces)
    # received[p] is the column block we own, from p's rows: shape
    # (rows_of_p, my_cols).  Stack along rows then transpose.
    stacked = np.vstack(received)           # (n, my_cols)
    return stacked.T.copy()                  # (my_cols, n) = my transposed rows


def _fft_rank(comm: Communicator, n: int, charge: ComputeCharge,
              streams: RandomStreams):
    size, rank = comm.size, comm.rank
    bounds = _block_bounds(n, size)
    my_rows = bounds[rank + 1] - bounds[rank]

    # Deterministic input: every rank derives its rows of the global
    # matrix from a fresh (uncached) copy of the same named stream.
    rng = streams.fresh(_INPUT_STREAM)
    full_input = rng.standard_normal((n, n))
    local = full_input[bounds[rank]:bounds[rank + 1], :].astype(complex)

    # Pass 1: FFT along rows.
    local = np.fft.fft(local, axis=1)
    yield comm.sim.timeout(charge.seconds(
        flops=_fft_flops(my_rows, n), bytes_moved=16.0 * my_rows * n))

    # Global transpose.
    local = yield from _transpose_distributed(comm, local, bounds)

    # Pass 2: FFT along (what are now) rows == original columns.
    local = np.fft.fft(local, axis=1)
    yield comm.sim.timeout(charge.seconds(
        flops=_fft_flops(local.shape[0], n), bytes_moved=16.0 * local.size))

    # Timing stops here: the distributed transform is complete (in
    # transposed layout, as parallel FFTs conventionally leave it); the
    # transpose-back + gather below are verification plumbing.
    loop_end = comm.sim.now

    local = yield from _transpose_distributed(comm, local, bounds)
    gathered = yield from comm.gather(local, root=0)
    if rank == 0:
        return loop_end, np.vstack(gathered)
    return loop_end, None


def run_fft2d(ranks: int, n: int, charge: Optional[ComputeCharge] = None,
              seed: int = 0, streams: Optional[RandomStreams] = None,
              **spmd_kwargs) -> FftResult:
    """Distributed 2D FFT of a seeded random n×n matrix.

    The input matrix is drawn from the ``apps.fft.input`` stream of
    ``streams`` (default: ``RandomStreams(seed)``), so experiments can
    share one stream registry across kernels without cross-talk.
    """
    if n < ranks:
        raise ValueError(f"need at least one row per rank ({ranks} > {n})")
    charge = charge if charge is not None else ComputeCharge()
    streams = streams if streams is not None else RandomStreams(seed)
    result: SpmdResult = run_spmd(ranks, _fft_rank, n, charge, streams,
                                  **spmd_kwargs)
    return FftResult(
        spectrum=result.results[0][1],
        elapsed=max(loop_end for loop_end, _local in result.results),
        bytes_moved=result.bytes_moved,
        n=n,
        ranks=ranks,
    )
