"""Master/worker parameter sweep — the embarrassingly-parallel workload.

The keynote's "rapidly expanding customer base including commercial and
business communities" mostly runs this shape: many independent tasks of
uneven cost.  Rank 0 is the master handing out task indices on demand
(self-scheduling); workers evaluate a deterministic function per task and
a heterogeneous virtual cost models real task-time variance.  The result
records load balance so benches can show dynamic scheduling absorbing the
variance that a static split would not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.apps.compute import ComputeCharge
from repro.messaging.comm import Communicator
from repro.messaging.message import ANY_SOURCE
from repro.messaging.program import SpmdResult, run_spmd

__all__ = ["SweepResult", "run_sweep", "sweep_task_value"]

_TAG_REQUEST = 401
_TAG_WORK = 402
_TAG_RESULT = 403
_STOP = -1


def sweep_task_value(task: int) -> float:
    """The deterministic per-task computation: a small quadrature.

    Integrates sin((task+1) x) / (task+1) over [0, 1] by trapezoid with a
    task-dependent resolution — cheap, verifiable, and uneven in cost.
    """
    frequency = task + 1
    samples = 64 * (1 + task % 7)
    xs = np.linspace(0.0, 1.0, samples)
    ys = np.sin(frequency * xs) / frequency
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 1.x fallback
    return float(trapezoid(ys, xs))


def _task_cost_flops(task: int) -> float:
    """Virtual cost: uneven by construction (x1 .. x7)."""
    return 1e7 * (1 + task % 7)


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a sweep run."""

    values: List[float]            # per-task results, indexed by task
    tasks_per_worker: Dict[int, int]
    #: Virtual seconds each worker spent computing (excludes waiting).
    busy_per_worker: Dict[int, float]
    elapsed: float
    tasks: int
    ranks: int

    @property
    def load_imbalance(self) -> float:
        """max/mean of per-worker *busy time* (1.0 == perfect).

        Busy time, not task count: tasks have a 7x cost spread by design,
        so a well-balanced dynamic schedule gives cheap-task workers more
        tasks — counts diverge while work converges.
        """
        busy = list(self.busy_per_worker.values())
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0


def _master(comm: Communicator, tasks: int):
    values: List[Optional[float]] = [None] * tasks
    counts: Dict[int, int] = {w: 0 for w in range(1, comm.size)}
    next_task = 0
    outstanding = 0
    idle_workers = list(range(1, comm.size))

    # Prime every worker with one task.
    while idle_workers and next_task < tasks:
        worker = idle_workers.pop()
        yield from comm.send(next_task, worker, _TAG_WORK)
        counts[worker] += 1
        next_task += 1
        outstanding += 1

    while outstanding > 0:
        (task, value), status = yield from comm.recv_with_status(
            ANY_SOURCE, _TAG_RESULT)
        values[task] = value
        outstanding -= 1
        if next_task < tasks:
            yield from comm.send(next_task, status.source, _TAG_WORK)
            counts[status.source] += 1
            next_task += 1
            outstanding += 1
        else:
            yield from comm.send(_STOP, status.source, _TAG_WORK)

    # Stop workers that never got work (more workers than tasks).
    for worker in idle_workers:
        yield from comm.send(_STOP, worker, _TAG_WORK)
    return values, counts


def _worker(comm: Communicator, charge: ComputeCharge):
    completed = 0
    busy = 0.0
    while True:
        task = yield from comm.recv(0, _TAG_WORK)
        if task == _STOP:
            return completed, busy
        value = sweep_task_value(task)
        cost = charge.seconds(flops=_task_cost_flops(task))
        yield comm.sim.timeout(cost)
        busy += cost
        yield from comm.send((task, value), 0, _TAG_RESULT)
        completed += 1


def _sweep_rank(comm: Communicator, tasks: int, charge: ComputeCharge):
    if comm.rank == 0:
        result = yield from _master(comm, tasks)
        return result
    result = yield from _worker(comm, charge)
    return result


def run_sweep(ranks: int, tasks: int,
              charge: Optional[ComputeCharge] = None,
              **spmd_kwargs) -> SweepResult:
    """Run ``tasks`` independent tasks over ``ranks - 1`` workers."""
    if ranks < 2:
        raise ValueError("sweep needs a master and at least one worker")
    if tasks < 1:
        raise ValueError("need at least one task")
    charge = charge if charge is not None else ComputeCharge()
    result: SpmdResult = run_spmd(ranks, _sweep_rank, tasks, charge,
                                  **spmd_kwargs)
    values, counts = result.results[0]
    busy = {worker: result.results[worker][1] for worker in range(1, ranks)}
    return SweepResult(
        values=values,
        tasks_per_worker=counts,
        busy_per_worker=busy,
        elapsed=result.elapsed,
        tasks=tasks,
        ranks=ranks,
    )
