"""HPL/LINPACK analytic performance model — the Top500 yardstick.

The keynote frames cluster progress in Top500 terms ("trans-Petaflops
regime").  Rather than factorising petabyte matrices, we use the standard
analytic HPL model (Dongarra/Luszczek/Petitet lineage): for an N×N solve
on a P×Q process grid,

    T = (2N³/3γ) / (PQ)                        -- factorisation flops
      + β N² (3P + Q) / (2PQ)                  -- panel/update traffic
      + α N (6 + log2 P)                       -- latency-bound messages

with γ the per-process sustained flop rate, and α/β the network latency
and per-byte time.  ``Rmax = (2N³/3) / T``, and the problem size is sized
to fill a fixed fraction of aggregate memory (the rule every Top500
submission follows).

The model's fidelity target is shape, not decimals: efficiency falls with
latency-heavier networks and rises with N, matching the published
Rmax/Rpeak spreads of 2002-2008 commodity systems (~50-85 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec

__all__ = ["HplModel", "HplEstimate"]


@dataclass(frozen=True)
class HplEstimate:
    """Model output for one machine."""

    rmax_flops: float
    rpeak_flops: float
    problem_size: int
    time_seconds: float
    grid_p: int
    grid_q: int

    @property
    def efficiency(self) -> float:
        """Rmax over Rpeak."""
        return self.rmax_flops / self.rpeak_flops


@dataclass(frozen=True)
class HplModel:
    """Analytic HPL estimator.

    ``sustained_fraction`` maps node peak to per-process DGEMM-sustained γ
    (0.6–0.85 was typical of the era's BLAS on commodity parts);
    ``memory_fill`` is the fraction of aggregate DRAM given to the matrix.
    """

    sustained_fraction: float = 0.75
    memory_fill: float = 0.8

    def __post_init__(self) -> None:
        if not 0 < self.sustained_fraction <= 1:
            raise ValueError("sustained_fraction must be in (0, 1]")
        if not 0 < self.memory_fill <= 1:
            raise ValueError("memory_fill must be in (0, 1]")

    def problem_size(self, spec: ClusterSpec) -> int:
        """Largest N whose 8-byte matrix fills the memory budget."""
        budget = spec.memory_bytes * self.memory_fill
        return int(math.sqrt(budget / 8.0))

    def process_grid(self, node_count: int) -> tuple:
        """Near-square P×Q grid with P <= Q (HPL's recommendation)."""
        p = int(math.sqrt(node_count))
        while p > 1 and node_count % p != 0:
            p -= 1
        return p, node_count // p

    def estimate(self, spec: ClusterSpec, problem_size: int = None  # type: ignore[assignment]
                 ) -> HplEstimate:
        """Rmax for ``spec`` (problem sized to memory unless given)."""
        n = problem_size if problem_size is not None else self.problem_size(spec)
        if n < 1:
            raise ValueError("problem size must be positive")
        grid_p, grid_q = self.process_grid(spec.node_count)
        gamma = self.sustained_fraction * spec.node.peak_flops
        alpha = spec.interconnect.loggp.latency \
            + 2 * spec.interconnect.loggp.overhead
        beta = spec.interconnect.loggp.gap_per_byte

        flops = 2.0 * n ** 3 / 3.0
        compute = flops / (gamma * spec.node_count)
        bandwidth = beta * n ** 2 * (3 * grid_p + grid_q) / (2.0 * grid_p * grid_q)
        latency = alpha * n * (6.0 + math.log2(max(grid_p, 2)))
        total = compute + bandwidth + latency
        return HplEstimate(
            rmax_flops=flops / total,
            rpeak_flops=spec.peak_flops,
            problem_size=n,
            time_seconds=total,
            grid_p=grid_p,
            grid_q=grid_q,
        )
