"""Distributed conjugate gradient — the latency/allreduce-bound workload.

Solves ``A x = b`` for the 1D Laplacian (tridiagonal [-1, 2, -1]) with
rows block-distributed.  Each iteration needs:

* one nearest-neighbour halo exchange (for the matvec),
* two allreduce dot-products (the latency-critical operations whose
  algorithm choice bench E13 ablates).

The math is real: the returned residual actually converges, and the test
suite checks the solution against ``scipy``.  Compute time is charged per
iteration from the flop/byte counts of the local operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.compute import ComputeCharge
from repro.messaging.comm import Communicator
from repro.messaging.message import SUM
from repro.messaging.program import SpmdResult, run_spmd

__all__ = ["CgResult", "run_cg"]

_HALO_UP = 201
_HALO_DOWN = 202


@dataclass(frozen=True)
class CgResult:
    """Outcome of a distributed CG solve."""

    x: np.ndarray             # assembled solution (gathered at root)
    iterations: int
    residual: float
    elapsed: float
    converged: bool
    ranks: int
    n: int


def _partition(n: int, size: int) -> List[slice]:
    bounds = np.linspace(0, n, size + 1).astype(int)
    return [slice(bounds[r], bounds[r + 1]) for r in range(size)]


def _local_matvec(comm: Communicator, x_local: np.ndarray):
    """y = A x for the 1D Laplacian, exchanging one element per side."""
    size, rank = comm.size, comm.rank
    up = rank - 1 if rank > 0 else None
    down = rank + 1 if rank < size - 1 else None
    left_ghost = 0.0
    right_ghost = 0.0
    # Post everything nonblocking first, wait after: sequential
    # up-then-down exchanges would cascade a wave down the whole chain
    # (O(p) latency), the classic halo-exchange pitfall.
    sends = []
    recv_up = comm.irecv(up, _HALO_DOWN) if up is not None else None
    recv_down = comm.irecv(down, _HALO_UP) if down is not None else None
    if up is not None:
        sends.append(comm.isend(float(x_local[0]), up, _HALO_UP))
    if down is not None:
        sends.append(comm.isend(float(x_local[-1]), down, _HALO_DOWN))
    if recv_up is not None:
        left_ghost = yield from recv_up.wait()
    if recv_down is not None:
        right_ghost = yield from recv_down.wait()
    for send in sends:
        yield from send.wait()
    padded = np.concatenate(([left_ghost], x_local, [right_ghost]))
    y = 2.0 * padded[1:-1] - padded[:-2] - padded[2:]
    return y


def _cg_rank(comm: Communicator, n: int, max_iterations: int,
             tolerance: float, charge: ComputeCharge,
             allreduce_algorithm: str):
    """One rank's CG program (textbook CG, distributed)."""
    rows = _partition(n, comm.size)[comm.rank]
    local_n = rows.stop - rows.start

    # b = A @ ones  -> the known solution is exactly ones.
    ones_local = np.ones(local_n)
    b_local = yield from _local_matvec(comm, ones_local)

    x_local = np.zeros(local_n)
    r_local = b_local.copy()
    p_local = r_local.copy()
    rs_old = yield from comm.allreduce(float(r_local @ r_local), SUM,
                                       algorithm=allreduce_algorithm)

    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        ap_local = yield from _local_matvec(comm, p_local)
        p_dot_ap = yield from comm.allreduce(float(p_local @ ap_local), SUM,
                                             algorithm=allreduce_algorithm)
        alpha = rs_old / p_dot_ap
        x_local += alpha * p_local
        r_local -= alpha * ap_local
        rs_new = yield from comm.allreduce(float(r_local @ r_local), SUM,
                                           algorithm=allreduce_algorithm)
        # Charge the local vector work: ~10 flops and ~10 loads/stores
        # of 8 bytes per row per iteration.
        yield comm.sim.timeout(charge.seconds(flops=10.0 * local_n,
                                              bytes_moved=80.0 * local_n))
        if np.sqrt(rs_new) < tolerance:
            converged = True
            break
        p_local = r_local + (rs_new / rs_old) * p_local
        rs_old = rs_new

    # Timing stops at convergence; the gather is verification plumbing.
    loop_end = comm.sim.now
    gathered = yield from comm.gather(x_local, root=0)
    residual = float(np.sqrt(rs_new))
    if comm.rank == 0:
        return (np.concatenate(gathered), iterations, residual, converged,
                loop_end)
    return None, iterations, residual, converged, loop_end


def run_cg(ranks: int, n: int, max_iterations: int = 500,
           tolerance: float = 1e-8,
           charge: Optional[ComputeCharge] = None,
           allreduce_algorithm: str = "recursive_doubling",
           **spmd_kwargs) -> CgResult:
    """Distributed CG on the 1D Laplacian; the exact solution is all-ones."""
    if n < ranks:
        raise ValueError(f"need at least one row per rank ({ranks} > {n})")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    charge = charge if charge is not None else ComputeCharge()
    result: SpmdResult = run_spmd(ranks, _cg_rank, n, max_iterations,
                                  tolerance, charge, allreduce_algorithm,
                                  **spmd_kwargs)
    x, iterations, residual, converged, _end = result.results[0]
    return CgResult(
        x=x,
        iterations=iterations,
        residual=residual,
        elapsed=max(r[4] for r in result.results),
        converged=converged,
        ranks=ranks,
        n=n,
    )
