"""All-pairs N-body via ring pipeline — the compute-bound workload.

Each rank owns a block of particles.  The blocks circulate around a ring;
at each of the p steps every rank accumulates the forces its own particles
feel from the visiting block.  Communication is O(N) per step against
O(N²/p) computation, so this kernel is compute-dominated — the workload
where interconnect choice matters least (bench E5's control case).

Forces are softened gravity, computed with numpy and verified against the
direct all-pairs reference in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.compute import ComputeCharge
from repro.messaging.comm import Communicator
from repro.messaging.program import SpmdResult, run_spmd
from repro.sim.rng import RandomStreams

__all__ = ["NbodyResult", "run_nbody", "direct_forces_reference",
           "make_particles"]

_RING_TAG = 301
_SOFTENING = 1e-3

#: Stream name the particle set is derived from.
_PARTICLE_STREAM = "apps.nbody.particles"


@dataclass(frozen=True)
class NbodyResult:
    """Outcome of one force evaluation."""

    forces: np.ndarray        # (n, 3) forces gathered at root
    elapsed: float
    n: int
    ranks: int


def _pairwise_forces(targets: np.ndarray, sources: np.ndarray,
                     source_mass: np.ndarray) -> np.ndarray:
    """Softened-gravity forces on ``targets`` from ``sources`` (unit target
    mass, G = 1); self-pairs vanish through the softening term."""
    delta = sources[None, :, :] - targets[:, None, :]        # (t, s, 3)
    distance_sq = (delta ** 2).sum(axis=2) + _SOFTENING ** 2
    inv_r3 = distance_sq ** -1.5
    return (delta * (source_mass[None, :] * inv_r3)[:, :, None]).sum(axis=1)


def _blocks(n: int, size: int) -> List[slice]:
    bounds = np.linspace(0, n, size + 1).astype(int)
    return [slice(bounds[r], bounds[r + 1]) for r in range(size)]


def make_particles(n: int, seed: int = 0,
                   streams: Optional[RandomStreams] = None):
    """The deterministic particle set every rank (and the serial
    reference) derives from the ``apps.nbody.particles`` stream of
    ``streams`` (default: ``RandomStreams(seed)``): positions (n, 3)
    and masses."""
    streams = streams if streams is not None else RandomStreams(seed)
    rng = streams.fresh(_PARTICLE_STREAM)
    positions = rng.standard_normal((n, 3))
    masses = rng.uniform(0.5, 2.0, size=n)
    return positions, masses


def _nbody_rank(comm: Communicator, n: int, charge: ComputeCharge,
                streams: RandomStreams):
    size, rank = comm.size, comm.rank
    positions, masses = make_particles(n, streams=streams)
    mine = _blocks(n, size)[rank]
    my_positions = positions[mine].copy()

    forces = np.zeros_like(my_positions)
    right = (rank + 1) % size
    left = (rank - 1) % size

    visiting_positions = positions[mine].copy()
    visiting_masses = masses[mine].copy()
    for _step in range(size):
        forces += _pairwise_forces(my_positions, visiting_positions,
                                   visiting_masses)
        interactions = my_positions.shape[0] * visiting_positions.shape[0]
        # ~20 flops per interaction, streaming ~48 bytes per source point.
        yield comm.sim.timeout(charge.seconds(
            flops=20.0 * interactions,
            bytes_moved=48.0 * interactions))
        if size > 1 and _step < size - 1:
            request = comm.isend(
                (visiting_positions, visiting_masses), right, _RING_TAG)
            visiting_positions, visiting_masses = yield from comm.recv(
                left, _RING_TAG)
            yield from request.wait()

    # Timing stops here; the gather is verification plumbing.
    loop_end = comm.sim.now
    gathered = yield from comm.gather(forces, root=0)
    if rank == 0:
        return loop_end, np.vstack(gathered)
    return loop_end, None


def run_nbody(ranks: int, n: int, charge: Optional[ComputeCharge] = None,
              seed: int = 0, streams: Optional[RandomStreams] = None,
              **spmd_kwargs) -> NbodyResult:
    """One all-pairs force evaluation over ``n`` seeded particles."""
    if n < ranks:
        raise ValueError(f"need at least one particle per rank ({ranks} > {n})")
    charge = charge if charge is not None else ComputeCharge()
    streams = streams if streams is not None else RandomStreams(seed)
    result: SpmdResult = run_spmd(ranks, _nbody_rank, n, charge, streams,
                                  **spmd_kwargs)
    return NbodyResult(
        forces=result.results[0][1],
        elapsed=max(loop_end for loop_end, _forces in result.results),
        n=n,
        ranks=ranks,
    )


def direct_forces_reference(n: int, seed: int = 0,
                            streams: Optional[RandomStreams] = None
                            ) -> np.ndarray:
    """Serial all-pairs forces — ground truth for tests."""
    positions, masses = make_particles(n, seed, streams=streams)
    return _pairwise_forces(positions, positions, masses)
