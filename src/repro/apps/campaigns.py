"""Standard app kernels registered for fault campaigns.

Importing this module registers checkpointable variants of the real
kernels with :mod:`repro.fault.campaign`:

* ``"summa"`` — the broadcast-shaped distributed matrix multiply
  (:mod:`repro.apps.summa`); checkpoints ``(step, C_local)``;
* ``"stencil2d"`` — the 2D-decomposed Jacobi stencil
  (:mod:`repro.apps.stencil2d`); checkpoints ``(iter, block)``.

Each factory closes over the campaign's :class:`~repro.sim.rng.
RandomStreams`, so inputs are re-derived identically every incarnation
(named streams are the reproducibility contract, not pickled state),
and returns a rank body ``body(comm, ckpt)`` whose answer is just the
numerical result — timing is the campaign's to measure, not part of
the bit-identity check.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.apps.compute import ComputeCharge
from repro.apps.stencil2d import _stencil2d_rank, process_grid
from repro.apps.summa import _summa_rank
from repro.fault.campaign import register_kernel
from repro.messaging.comm import Communicator
from repro.sim.rng import RandomStreams

__all__ = ["summa_kernel", "stencil2d_kernel"]


def _charge_from(app_args: Dict[str, Any]) -> ComputeCharge:
    charge: Optional[ComputeCharge] = app_args.get("charge")
    return charge if charge is not None else ComputeCharge()


def summa_kernel(ranks: int, streams: RandomStreams,
                 app_args: Dict[str, Any]):
    """Kernel factory for campaigns: SUMMA ``C = A @ B``.

    ``app_args``: ``n`` (matrix dimension, default 8) and optionally a
    ``charge`` (:class:`~repro.apps.compute.ComputeCharge`).
    """
    n = int(app_args.get("n", 8))
    grid = int(math.isqrt(ranks))
    if grid * grid != ranks:
        raise ValueError(f"SUMMA needs a square rank count, got {ranks}")
    if n < grid:
        raise ValueError(f"need at least one row per grid row ({grid} > {n})")
    charge = _charge_from(app_args)

    def body(comm: Communicator, ckpt):
        _loop_end, product = yield from _summa_rank(
            comm, n, charge, streams, ckpt)
        return product

    return body


def stencil2d_kernel(ranks: int, streams: RandomStreams,
                     app_args: Dict[str, Any]):
    """Kernel factory for campaigns: 2D-decomposed Jacobi stencil.

    ``app_args``: ``n`` (grid extent, default 12), ``iterations``
    (default 6), optionally a ``charge``.  The stencil's initial
    condition is analytic, so ``streams`` is unused — the signature is
    the registry contract.
    """
    del streams  # analytic initial condition; nothing random to derive
    n = int(app_args.get("n", 12))
    iterations = int(app_args.get("iterations", 6))
    grid_rows, grid_cols = process_grid(ranks)
    if n < 4 or grid_rows > n - 2 or grid_cols > n - 2:
        raise ValueError(f"{ranks} ranks ({grid_rows}x{grid_cols}) need a "
                         f"bigger grid than {n}x{n}")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    charge = _charge_from(app_args)

    def body(comm: Communicator, ckpt):
        _loop_end, result = yield from _stencil2d_rank(
            comm, n, iterations, charge, ckpt)
        return result

    return body


register_kernel("summa", summa_kernel)
register_kernel("stencil2d", stencil2d_kernel)
