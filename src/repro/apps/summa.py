"""SUMMA distributed matrix multiply — the broadcast-shaped workload.

SUMMA (Scalable Universal Matrix Multiplication Algorithm, van de Geijn &
Watts) computes ``C = A @ B`` on a √p × √p process grid: at step k, the
owners of A's k-th block-column broadcast along rows and the owners of
B's k-th block-row broadcast along columns, and every rank accumulates a
local outer product.  Communication is row/column broadcasts over split
sub-communicators (the canonical SUMMA structure) — the pattern between
nearest-neighbour (stencil) and global (FFT), and the kernel behind
every dense solver the era's clusters were bought for.

Multiplication is real (numpy ``@`` on local blocks, verified against the
serial product); compute time is charged at 2·m·n·k flops through the
roofline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.compute import ComputeCharge
from repro.messaging.comm import Communicator
from repro.messaging.program import SpmdResult, run_spmd
from repro.sim.rng import RandomStreams

__all__ = ["SummaResult", "run_summa"]

#: Stream name every rank derives the (identical) A and B matrices from.
_INPUT_STREAM = "apps.summa.input"


@dataclass(frozen=True)
class SummaResult:
    """Outcome of one distributed multiply."""

    product: np.ndarray       # full C (gathered at root)
    elapsed: float
    n: int
    ranks: int
    grid: int                 # sqrt(p)


def _block_bounds(n: int, q: int) -> List[int]:
    return list(np.linspace(0, n, q + 1).astype(int))


def _summa_rank(comm: Communicator, n: int, charge: ComputeCharge,
                streams: RandomStreams, ckpt=None):
    """One rank's SUMMA loop; optionally checkpointable.

    ``ckpt`` (duck-typed; see :class:`repro.fault.campaign.RankCheckpoint`)
    enables coordinated checkpoint/restart: inputs are recomputed from
    the named stream (identical every incarnation), only the accumulator
    and resume step are checkpointed, and the grid-step loop resumes
    exactly where the last committed checkpoint left it — bit-identical
    to an uninterrupted run.
    """
    size, rank = comm.size, comm.rank
    grid = int(math.isqrt(size))
    row, col = divmod(rank, grid)
    bounds = _block_bounds(n, grid)

    rng = streams.fresh(_INPUT_STREAM)
    a_full = rng.standard_normal((n, n))
    b_full = rng.standard_normal((n, n))
    rows = slice(bounds[row], bounds[row + 1])
    cols = slice(bounds[col], bounds[col + 1])
    a_local = a_full[rows, bounds[col]:bounds[col + 1]].copy()
    b_local = b_full[rows, cols].copy()
    c_local = np.zeros((rows.stop - rows.start, cols.stop - cols.start))

    start_step = 0
    if ckpt is not None and ckpt.restored is not None:
        start_step = ckpt.restored["step"]
        c_local = ckpt.restored["c"].copy()

    # The canonical SUMMA communicator structure: one communicator per
    # process row (ranked by column) and one per column (ranked by row).
    row_comm = yield from comm.split(row, key=col)
    col_comm = yield from comm.split(col, key=row)

    for step in range(start_step, grid):
        with comm.sim.obs.span("summa.step", step=step):
            # A's step-th block-column travels along my process row...
            a_panel = yield from row_comm.bcast(
                a_local if col == step else None, root=step)
            # ...and B's step-th block-row along my process column.
            b_panel = yield from col_comm.bcast(
                b_local if row == step else None, root=step)
            c_local += a_panel @ b_panel
            m, k = a_panel.shape
            _k, p_cols = b_panel.shape
            yield comm.sim.timeout(charge.seconds(
                flops=2.0 * m * k * p_cols,
                bytes_moved=8.0 * (m * k + k * p_cols + m * p_cols)))
        if (ckpt is not None and step + 1 < grid
                and ckpt.due(step + 1)):
            yield from ckpt.save(step + 1,
                                 {"step": step + 1, "c": c_local.copy()})

    # Timing stops here; gather is verification plumbing.
    loop_end = comm.sim.now
    gathered = yield from comm.gather(c_local, root=0)
    if rank == 0:
        c_full = np.zeros((n, n))
        for peer in range(size):
            peer_row, peer_col = divmod(peer, grid)
            c_full[bounds[peer_row]:bounds[peer_row + 1],
                   bounds[peer_col]:bounds[peer_col + 1]] = gathered[peer]
        return loop_end, c_full
    return loop_end, None


def run_summa(ranks: int, n: int, charge: Optional[ComputeCharge] = None,
              seed: int = 0, streams: Optional[RandomStreams] = None,
              **spmd_kwargs) -> SummaResult:
    """``C = A @ B`` for seeded random n×n matrices on a √p×√p grid.

    ``ranks`` must be a perfect square and ``n >= sqrt(ranks)``.  A and B
    are drawn (in that order) from the ``apps.summa.input`` stream of
    ``streams`` (default: ``RandomStreams(seed)``).
    """
    grid = int(math.isqrt(ranks))
    if grid * grid != ranks:
        raise ValueError(f"SUMMA needs a square rank count, got {ranks}")
    if n < grid:
        raise ValueError(f"need at least one row per grid row ({grid} > {n})")
    charge = charge if charge is not None else ComputeCharge()
    streams = streams if streams is not None else RandomStreams(seed)
    result: SpmdResult = run_spmd(ranks, _summa_rank, n, charge, streams,
                                  **spmd_kwargs)
    return SummaResult(
        product=result.results[0][1],
        elapsed=max(loop_end for loop_end, _c in result.results),
        n=n,
        ranks=ranks,
        grid=grid,
    )
