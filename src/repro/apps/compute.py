"""Charging computation to virtual time.

Kernels do their arithmetic for real (numpy) but the *simulated clock*
must advance by what the modelled node would take, not by what CPython
took.  :class:`ComputeCharge` owns that conversion: given flops and bytes
of a local phase, it returns the virtual seconds to charge, using a node's
roofline when a :class:`~repro.nodes.base.NodeSpec` is supplied or a flat
effective rate otherwise.
"""

from __future__ import annotations

from typing import Optional

from repro.nodes.base import NodeSpec
from repro.nodes.roofline import KernelCharacter, RooflineModel
from repro.units import GIGA

__all__ = ["ComputeCharge"]

#: Default effective rate when no node spec is given: a deliberately
#: round 1 GFLOPS sustained, typical of a 2002 node on real code.
_DEFAULT_EFFECTIVE_FLOPS = GIGA


class ComputeCharge:
    """Convert (flops, bytes) of local work into virtual seconds."""

    def __init__(self, node: Optional[NodeSpec] = None,
                 effective_flops: Optional[float] = None) -> None:
        if node is not None and effective_flops is not None:
            raise ValueError("give a node spec or an effective rate, not both")
        if effective_flops is not None and effective_flops <= 0:
            raise ValueError("effective rate must be positive")
        self.node = node
        self._roofline = RooflineModel(node) if node is not None else None
        self.effective_flops = effective_flops or _DEFAULT_EFFECTIVE_FLOPS

    def seconds(self, flops: float, bytes_moved: Optional[float] = None) -> float:
        """Virtual time for a phase of ``flops`` touching ``bytes_moved``.

        With a node spec the roofline decides whether the phase is compute
        or bandwidth bound; without one, ``bytes_moved`` is ignored and a
        flat rate applies.
        """
        if flops < 0:
            raise ValueError("flops must be non-negative")
        if flops == 0:
            return 0.0
        if self._roofline is None or bytes_moved is None or bytes_moved <= 0:
            return flops / self.effective_flops
        kernel = KernelCharacter(name="phase", flops=flops,
                                 bytes_moved=bytes_moved)
        return self._roofline.execution_time(kernel)

    def rate(self, intensity: Optional[float] = None) -> float:
        """Attainable FLOPS (at an arithmetic intensity, if a node is set)."""
        if self._roofline is None or intensity is None:
            return self.effective_flops
        kernel = KernelCharacter.from_intensity("probe", intensity)
        return self._roofline.attainable_flops(kernel)
