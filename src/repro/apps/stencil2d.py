"""2D-decomposed Jacobi stencil — the surface-to-volume argument.

The row-decomposed stencil (:mod:`repro.apps.stencil`) exchanges two
halo *rows* of the full grid width per iteration: per-rank communication
stays O(n) no matter how many ranks share the work.  Decomposing in both
dimensions shrinks each rank's halo perimeter to O(n/√p) per edge — four
smaller messages instead of two big ones.  Which wins depends on the
fabric's latency/bandwidth balance and the scale, which is exactly what
bench E19 maps.

The process grid is built with :meth:`Communicator.split` (row and
column communicators), the east/west halos are strided columns packed
into contiguous buffers before sending (what an MPI vector datatype
would do), and the arithmetic matches the serial reference bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.apps.compute import ComputeCharge
from repro.messaging.comm import Communicator, waitall
from repro.messaging.program import SpmdResult, run_spmd

__all__ = ["Stencil2DResult", "run_stencil2d", "process_grid"]

_TAG_N, _TAG_S, _TAG_E, _TAG_W = 111, 112, 113, 114


def process_grid(ranks: int) -> Tuple[int, int]:
    """Near-square factorisation ``(rows, cols)`` with rows <= cols."""
    rows = int(math.isqrt(ranks))
    while rows > 1 and ranks % rows != 0:
        rows -= 1
    return rows, ranks // rows


@dataclass(frozen=True)
class Stencil2DResult:
    """Outcome of a 2D-decomposed stencil run."""

    grid: np.ndarray
    iterations: int
    elapsed: float
    n: int
    ranks: int
    grid_shape: Tuple[int, int]


def _bounds(extent: int, parts: int) -> List[int]:
    """Partition of the interior [1, extent-1) into ``parts`` ranges."""
    return list(np.linspace(1, extent - 1, parts + 1).astype(int))


def _stencil2d_rank(comm: Communicator, n: int, iterations: int,
                    charge: ComputeCharge, ckpt=None):
    """One rank's stencil loop; optionally checkpointable.

    ``ckpt`` (duck-typed; see :class:`repro.fault.campaign.RankCheckpoint`)
    checkpoints the halo block and resume iteration, so a restarted run
    recomputes exactly the remaining iterations — bit-identical to an
    uninterrupted run.
    """
    size, rank = comm.size, comm.rank
    grid_rows, grid_cols = process_grid(size)
    my_row, my_col = divmod(rank, grid_cols)
    row_bounds = _bounds(n, grid_rows)
    col_bounds = _bounds(n, grid_cols)
    r0, r1 = row_bounds[my_row], row_bounds[my_row + 1]
    c0, c1 = col_bounds[my_col], col_bounds[my_col + 1]

    # Local block with a one-cell halo ring, from the analytic initial
    # condition (hot top edge, cold elsewhere).
    block = np.zeros((r1 - r0 + 2, c1 - c0 + 2))
    if r0 == 1:
        block[0, :] = 1.0  # global top edge in the north halo

    north = rank - grid_cols if my_row > 0 else None
    south = rank + grid_cols if my_row < grid_rows - 1 else None
    west = rank - 1 if my_col > 0 else None
    east = rank + 1 if my_col < grid_cols - 1 else None

    start_iter = 0
    if ckpt is not None and ckpt.restored is not None:
        start_iter = ckpt.restored["iter"]
        block = ckpt.restored["block"].copy()

    for _step in range(start_iter, iterations):
        with comm.sim.obs.span("stencil2d.step", step=_step):
            # Post all four receives, then all four sends (columns packed
            # into contiguous buffers — the vector-datatype move).
            recvs = {}
            if north is not None:
                recvs["n"] = comm.irecv(north, _TAG_S)
            if south is not None:
                recvs["s"] = comm.irecv(south, _TAG_N)
            if west is not None:
                recvs["w"] = comm.irecv(west, _TAG_E)
            if east is not None:
                recvs["e"] = comm.irecv(east, _TAG_W)
            sends = []
            if north is not None:
                sends.append(comm.isend(block[1, 1:-1].copy(),
                                        north, _TAG_N))
            if south is not None:
                sends.append(comm.isend(block[-2, 1:-1].copy(),
                                        south, _TAG_S))
            if west is not None:
                sends.append(comm.isend(block[1:-1, 1].copy(),
                                        west, _TAG_W))
            if east is not None:
                sends.append(comm.isend(block[1:-1, -2].copy(),
                                        east, _TAG_E))

            if "n" in recvs:
                block[0, 1:-1] = yield from recvs["n"].wait()
            if "s" in recvs:
                block[-1, 1:-1] = yield from recvs["s"].wait()
            if "w" in recvs:
                block[1:-1, 0] = yield from recvs["w"].wait()
            if "e" in recvs:
                block[1:-1, -1] = yield from recvs["e"].wait()
            yield from waitall(sends)

            new = block.copy()
            new[1:-1, 1:-1] = 0.25 * (
                block[:-2, 1:-1] + block[2:, 1:-1]
                + block[1:-1, :-2] + block[1:-1, 2:]
            )
            block = new

            points = (r1 - r0) * (c1 - c0)
            yield comm.sim.timeout(charge.seconds(flops=4.0 * points,
                                                  bytes_moved=40.0 * points))
        if (ckpt is not None and _step + 1 < iterations
                and ckpt.due(_step + 1)):
            yield from ckpt.save(_step + 1,
                                 {"iter": _step + 1, "block": block.copy()})

    loop_end = comm.sim.now

    # Verification gather (not timed).
    gathered = yield from comm.gather(
        (r0, r1, c0, c1, block[1:-1, 1:-1]), root=0)
    if rank == 0:
        result = np.zeros((n, n))
        result[0, :] = 1.0
        for gr0, gr1, gc0, gc1, piece in gathered:
            result[gr0:gr1, gc0:gc1] = piece
        return loop_end, result
    return loop_end, None


def run_stencil2d(ranks: int, n: int, iterations: int,
                  charge: Optional[ComputeCharge] = None,
                  **spmd_kwargs) -> Stencil2DResult:
    """Run the 2D-decomposed stencil (corner diagonals are not needed by
    the 5-point operator, so the four edge exchanges suffice)."""
    if n < 4:
        raise ValueError("grid must be at least 4x4")
    grid_rows, grid_cols = process_grid(ranks)
    if grid_rows > n - 2 or grid_cols > n - 2:
        raise ValueError(f"{ranks} ranks ({grid_rows}x{grid_cols}) need a "
                         f"bigger grid than {n}x{n}")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    charge = charge if charge is not None else ComputeCharge()
    result: SpmdResult = run_spmd(ranks, _stencil2d_rank, n, iterations,
                                  charge, **spmd_kwargs)
    return Stencil2DResult(
        grid=result.results[0][1],
        iterations=iterations,
        elapsed=max(loop_end for loop_end, _g in result.results),
        n=n,
        ranks=ranks,
        grid_shape=(grid_rows, grid_cols),
    )
