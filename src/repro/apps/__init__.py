"""Application kernels: the workloads that exercise everything below.

Each kernel is an SPMD generator program over the simulated messaging
layer.  *Communication* costs come from the fabric (LogGP + topology +
contention); *computation* is performed for real with numpy — so results
are verifiable against serial references — while its *cost in virtual
time* is charged from a node's roofline model.  This split is what lets a
Python reproduction make credible statements about petaflops machines: the
numerics are exact and the time accounting is the model's, not CPython's.

Kernels
-------
:func:`repro.apps.stencil.run_stencil` — 2D Jacobi with halo exchange
    (nearest-neighbour bound).
:func:`repro.apps.cg.run_cg` — conjugate gradient on a 1D Laplacian
    (allreduce/latency bound).
:func:`repro.apps.fft.run_fft2d` — row-decomposed 2D FFT
    (alltoall/bisection bound).
:func:`repro.apps.nbody.run_nbody` — all-pairs N-body via ring pipeline
    (compute bound).
:func:`repro.apps.sweep.run_sweep` — master/worker parameter sweep
    (embarrassingly parallel).
:mod:`repro.apps.hpl` — HPL/LINPACK analytic performance model for
    Top500-style projections.
"""

from repro.apps.campaigns import stencil2d_kernel, summa_kernel
from repro.apps.compute import ComputeCharge
from repro.apps.stencil import StencilResult, run_stencil, serial_stencil_reference
from repro.apps.stencil2d import Stencil2DResult, process_grid, run_stencil2d
from repro.apps.cg import CgResult, run_cg
from repro.apps.fft import FftResult, run_fft2d
from repro.apps.nbody import NbodyResult, run_nbody
from repro.apps.sweep import SweepResult, run_sweep
from repro.apps.sort import SortResult, run_sample_sort
from repro.apps.summa import SummaResult, run_summa
from repro.apps.hpl import HplModel, HplEstimate

__all__ = [
    "CgResult",
    "ComputeCharge",
    "FftResult",
    "HplEstimate",
    "HplModel",
    "NbodyResult",
    "Stencil2DResult",
    "StencilResult",
    "SortResult",
    "SummaResult",
    "SweepResult",
    "run_cg",
    "run_fft2d",
    "run_nbody",
    "run_sample_sort",
    "process_grid",
    "run_stencil",
    "run_stencil2d",
    "run_summa",
    "run_sweep",
    "serial_stencil_reference",
    "stencil2d_kernel",
    "summa_kernel",
]
