"""2D Jacobi stencil with halo exchange — the nearest-neighbour workload.

The classic heat-diffusion iteration on an n×n grid, row-decomposed across
ranks.  Each iteration exchanges one halo row with each neighbour and
averages the four neighbours of every interior point.  Communication is
nearest-neighbour and small, so this kernel scales well even on cheap
networks — the contrast case to FFT's alltoall in bench E5.

The arithmetic is performed with numpy and is bit-identical to the serial
reference (:func:`serial_stencil_reference`), which the integration tests
assert; virtual time per iteration is charged through
:class:`~repro.apps.compute.ComputeCharge`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.compute import ComputeCharge
from repro.messaging.comm import Communicator
from repro.messaging.program import SpmdResult, run_spmd

__all__ = ["StencilResult", "run_stencil", "serial_stencil_reference"]

_HALO_UP = 101
_HALO_DOWN = 102


def _initial_grid(n: int) -> np.ndarray:
    """Deterministic initial condition: cold interior, hot top edge."""
    grid = np.zeros((n, n))
    grid[0, :] = 1.0
    return grid


def _row_slices(n: int, size: int) -> List[slice]:
    """Row ranges per rank: interior rows [1, n-1) split contiguously."""
    bounds = np.linspace(1, n - 1, size + 1).astype(int)
    return [slice(bounds[r], bounds[r + 1]) for r in range(size)]


@dataclass(frozen=True)
class StencilResult:
    """Outcome of a distributed stencil run."""

    grid: np.ndarray          # final global grid (gathered at root)
    iterations: int
    elapsed: float            # virtual seconds (slowest rank)
    bytes_moved: float
    n: int
    ranks: int


def _stencil_rank(comm: Communicator, n: int, iterations: int,
                  charge: ComputeCharge):
    """One rank's program."""
    size, rank = comm.size, comm.rank
    rows = _row_slices(n, size)[rank]
    local_rows = rows.stop - rows.start
    # Local block with one halo row above and below, built directly from
    # the analytic initial condition (never materialise the full grid per
    # rank — memory is n^2/p, so big grids stay runnable).
    block = np.zeros((local_rows + 2, n))
    if rank == 0:
        block[0, :] = 1.0  # the hot global top edge is rank 0's upper halo

    up = rank - 1 if rank > 0 else None
    down = rank + 1 if rank < size - 1 else None

    for _step in range(iterations):
        # Halo exchange, fully nonblocking (post all receives and sends,
        # then wait): sequential per-neighbour exchanges would cascade a
        # latency wave down the rank chain.  Boundary ranks keep the
        # fixed global edge rows.
        sends = []
        recv_up = comm.irecv(up, _HALO_DOWN) if up is not None else None
        recv_down = comm.irecv(down, _HALO_UP) if down is not None else None
        if up is not None:
            sends.append(comm.isend(block[1, :], up, _HALO_UP))
        if down is not None:
            sends.append(comm.isend(block[-2, :], down, _HALO_DOWN))
        if recv_up is not None:
            block[0, :] = yield from recv_up.wait()
        if recv_down is not None:
            block[-1, :] = yield from recv_down.wait()
        for send in sends:
            yield from send.wait()

        # Jacobi update of the owned rows (columns 1..n-2 are interior).
        new = block.copy()
        new[1:-1, 1:-1] = 0.25 * (
            block[:-2, 1:-1] + block[2:, 1:-1]
            + block[1:-1, :-2] + block[1:-1, 2:]
        )
        block = new

        # Charge the update: 4 flops/point, ~5 touched values of 8 bytes.
        points = local_rows * (n - 2)
        yield comm.sim.timeout(charge.seconds(flops=4.0 * points,
                                              bytes_moved=40.0 * points))

    # Timing stops here: the gather below is verification plumbing, not
    # part of the iteration the experiment measures.
    loop_end = comm.sim.now

    gathered = yield from comm.gather(block[1:-1, :], root=0)
    if rank == 0:
        result = _initial_grid(n)
        for piece, piece_rows in zip(gathered, _row_slices(n, size)):
            result[piece_rows, :] = piece
        return loop_end, result
    return loop_end, None


def run_stencil(ranks: int, n: int, iterations: int,
                charge: Optional[ComputeCharge] = None,
                **spmd_kwargs) -> StencilResult:
    """Run the distributed stencil; see :func:`repro.messaging.run_spmd`
    for fabric-selection keyword arguments."""
    if n < 4:
        raise ValueError("grid must be at least 4x4")
    if ranks > n - 2:
        raise ValueError(f"{ranks} ranks need at least {ranks} interior rows")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    charge = charge if charge is not None else ComputeCharge()
    result: SpmdResult = run_spmd(ranks, _stencil_rank, n, iterations, charge,
                                  **spmd_kwargs)
    return StencilResult(
        grid=result.results[0][1],
        iterations=iterations,
        elapsed=max(loop_end for loop_end, _grid in result.results),
        bytes_moved=result.bytes_moved,
        n=n,
        ranks=ranks,
    )


def serial_stencil_reference(n: int, iterations: int) -> np.ndarray:
    """The same iteration, serially — the ground truth for tests."""
    grid = _initial_grid(n)
    for _step in range(iterations):
        new = grid.copy()
        new[1:-1, 1:-1] = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1]
            + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        grid = new
    return grid
