"""The job service: supervisor, workers, and the fenced message plane.

Topology: the **supervisor** (plus the durable :class:`~repro.jobs.log.
JobLog`) lives on fabric host 0; **workers** occupy hosts ``1..W`` and
**spares** the hosts after them.  Every message — grant, start report,
lease renewal, effect write, write ack — is a real
:meth:`~repro.network.fabric.Fabric.transfer` into the destination
host's mailbox, so partitions, drops, and congestion delay or lose
control traffic exactly as they would in production.  A
:class:`~repro.health.monitor.HeartbeatMonitor` (host 0 is the monitor
host) supplies death declarations; the supervisor believes them —
including the false ones — and stays safe anyway, because every
recovery action is fenced by the log.

The failure-mode cast, and who defends against each:

* **supervisor crash mid-grant** — the grant is durable before the
  grant *message* is sent (``grant_commit_gap`` opens the window); a
  crash in the window leaves an orphaned lease that simply expires and
  requeues.  The restarted supervisor rebuilds its lease table from
  the log.
* **lease expiry racing a slow worker** — a stalled worker misses its
  renewals; the lease expires and the job requeues.  If nobody has
  been re-granted, the late write's token is still current and is
  accepted (at-most-once preserved); the instant a re-grant bumps the
  token, the late write is rejected as stale.
* **duplicate submissions** — deduplicated by ``(tenant, key)`` at the
  log.
* **duplicate/lost messages** — writes retry until acked; the log's
  idempotency makes the retries harmless, and *every* write outcome is
  acked so fenced-out workers stand down instead of spinning.

Worker *crash* and *stall* injection is driven by the campaign layer
(:mod:`repro.jobs.campaign`) via :class:`WorkerStall` interrupts and
the monitor's ground-truth :meth:`~repro.health.monitor.
HeartbeatMonitor.crash` — which the supervisor never sees directly;
it only sees declarations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Tuple,
)

from repro.fault.availability import DetectorDrivenSparePool
from repro.health.gossip import build_monitor
from repro.health.monitor import (
    DeathRecord,
    DetectionSpec,
)
from repro.jobs.lease import LeaseTable
from repro.jobs.log import JobLog
from repro.jobs.state import JobRequest
from repro.network.fabric import (
    Fabric,
    NetworkUnreachable,
    TransferDropped,
)
from repro.obs import Observability
from repro.sim.engine import Interrupt, Process, Simulator
from repro.sim.event import Event
from repro.sim.resources import Store
from repro.sim.rng import RandomStreams

__all__ = [
    "JobService",
    "Message",
    "ServiceConfig",
    "WorkerStall",
    "available_job_kernels",
    "get_job_kernel",
    "register_job_kernel",
]


# -- job kernels -----------------------------------------------------------

#: A job kernel maps the request payload to the job's one canonical
#: side-effect value (a deterministic string — the log is byte-compared).
JobKernelFn = Callable[[Tuple[Tuple[str, Any], ...]], str]

_JOB_KERNELS: Dict[str, JobKernelFn] = {}


def register_job_kernel(name: str, fn: JobKernelFn) -> None:
    """Register a job kernel (idempotent per name)."""
    _JOB_KERNELS[name] = fn


def get_job_kernel(name: str) -> JobKernelFn:
    """Look up a registered job kernel by name."""
    try:
        return _JOB_KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown job kernel {name!r}; available: "
            f"{available_job_kernels()}") from None


def available_job_kernels() -> List[str]:
    """Registered job kernel names, sorted."""
    return sorted(_JOB_KERNELS)


def _digest_kernel(payload: Tuple[Tuple[str, Any], ...]) -> str:
    """Default kernel: a canonical digest of the payload."""
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


def _sum_kernel(payload: Tuple[Tuple[str, Any], ...]) -> str:
    """Sum integer payload values (human-checkable effects in tests)."""
    return str(sum(int(value) for _name, value in payload))


register_job_kernel("digest", _digest_kernel)
register_job_kernel("sum", _sum_kernel)


# -- wire format -----------------------------------------------------------


@dataclass(frozen=True)
class Message:
    """One control-plane message (grant, start, renew, write, ack)."""

    kind: str
    job_id: int
    token: int
    sender: int
    value: str = ""
    outcome: str = ""
    kernel: str = ""
    payload: Tuple[Tuple[str, Any], ...] = ()
    work: float = 0.0
    #: Grant messages carry their lease deadline so a worker can
    #: discard a grant that expired while queued behind other work
    #: instead of executing it with a doomed token.
    expires: float = 0.0


@dataclass(frozen=True)
class WorkerStall:
    """Interrupt cause: the worker freezes for ``seconds`` (GC pause,
    overloaded host) — it stops renewing but is *not* dead, which is
    exactly how lease-expiry races are born."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("stall must last a positive time")


# -- configuration ---------------------------------------------------------


@dataclass(frozen=True)
class ServiceConfig:
    """Declarative shape and timing of one job service.

    The defaults are sized for simulation-scale tests (milliseconds,
    not minutes).  The safety-critical relation is
    ``lease_seconds > renew_every`` — a worker must get at least one
    renewal in per lease term — and ``write_retry_seconds`` should
    exceed ``tick_interval`` plus a round trip, or every write pays a
    pointless retransmit.
    """

    workers: int = 4
    spare_workers: int = 0
    lease_seconds: float = 2e-3
    renew_every: float = 5e-4
    tick_interval: float = 2.5e-4
    grant_commit_gap: float = 2e-5
    write_retry_seconds: float = 1.5e-3
    write_max_retries: int = 10
    max_attempts: int = 8
    repair_seconds: float = 2e-3
    message_bytes: int = 256
    detection: Optional[DetectionSpec] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.spare_workers < 0:
            raise ValueError("spare_workers must be >= 0")
        if self.lease_seconds <= 0 or self.renew_every <= 0:
            raise ValueError("lease_seconds and renew_every must be > 0")
        if self.lease_seconds <= self.renew_every:
            raise ValueError(
                "lease_seconds must exceed renew_every (a worker must "
                "be able to renew before its lease expires)")
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.grant_commit_gap < 0:
            raise ValueError("grant_commit_gap must be >= 0")
        if self.write_retry_seconds <= 0:
            raise ValueError("write_retry_seconds must be positive")
        if self.write_max_retries < 0:
            raise ValueError("write_max_retries must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.repair_seconds < 0:
            raise ValueError("repair_seconds must be >= 0")
        if self.message_bytes < 1:
            raise ValueError("message_bytes must be >= 1")
        detection = self.detection
        if detection is not None and detection.monitor_host != 0:
            raise ValueError("the supervisor host (0) must be the "
                             "monitor host")

    @property
    def total_hosts(self) -> int:
        """Supervisor + workers + spares."""
        return 1 + self.workers + self.spare_workers

    def effective_detection(self) -> DetectionSpec:
        """The detection spec, defaulted to a fixed-timeout monitor."""
        if self.detection is not None:
            return self.detection
        return DetectionSpec(monitor_host=0)


# -- the service -----------------------------------------------------------

_WORK_EPS = 1e-12


class JobService:
    """Supervisor + workers + heartbeat monitor on one simulator.

    Lifecycle: construct, :meth:`start`, submit via :meth:`submit`
    (any time, including mid-run), drive the simulator (the monitor
    keeps the queue non-empty forever — always run with ``until=`` or
    ``stop=``), then :meth:`shutdown` twice around ``sim.run(until=
    sim.now)`` passes (same-timestamp no-op rule) and ``sim.quiesce()``.
    :mod:`repro.jobs.campaign` packages that dance.
    """

    def __init__(self, sim: Simulator, fabric: Fabric,
                 config: Optional[ServiceConfig] = None,
                 streams: Optional[RandomStreams] = None) -> None:
        self.sim = sim
        self.fabric = fabric
        self.config = config if config is not None else ServiceConfig()
        hosts = self.config.total_hosts
        if fabric.topology.hosts < hosts:
            raise ValueError(
                f"service needs {hosts} hosts but the fabric has "
                f"{fabric.topology.hosts}")
        self.monitor = build_monitor(
            sim, fabric, hosts, spec=self.config.effective_detection(),
            streams=streams)
        self.log = JobLog()
        self.leases = LeaseTable()
        self.inboxes: List[Store] = [
            Store(sim, name=f"jobs.inbox{host}") for host in range(hosts)]
        self._serving: List[int] = list(range(1, 1 + self.config.workers))
        self.spares = DetectorDrivenSparePool(
            range(1 + self.config.workers, hosts))
        self._workers: Dict[int, Process] = {}
        self._repair_procs: List[Process] = []
        self._repair_covered: Dict[int, bool] = {}
        self.supervisor: Optional[Process] = None
        self.supervisor_incarnations = 0
        #: ``(time, activated_spare, dead_node)`` per activation.
        self.spare_activation_log: List[Tuple[float, int, int]] = []
        self.messages_sent = 0
        self.messages_lost = 0
        self.messages_delivered = 0
        self.inbox_purged = 0
        self.write_giveups = 0
        self.stale_grants_dropped = 0
        self.deaths_handled = 0
        self._msg_seq = 0
        self._worker_seq = 0
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the monitor, every worker (spares included — they idle
        until granted), and the first supervisor incarnation."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self.monitor.start()
        for host in range(1, self.config.total_hosts):
            self._spawn_worker(host)
        self.start_supervisor()

    def start_supervisor(self) -> None:
        """(Re)start the supervisor process — the crash-recovery path.

        The new incarnation owns nothing but the durable log: its lease
        table and pending view are rebuilt inside the process body."""
        if self.supervisor is not None and self.supervisor.is_alive:
            raise RuntimeError("supervisor is already running")
        self.supervisor_incarnations += 1
        self.supervisor = self.sim.process(
            self._supervisor_body(),
            name=f"jobs.super.{self.supervisor_incarnations}")

    def shutdown(self) -> None:
        """Interrupt every live service process (call twice around
        ``sim.run(until=sim.now)`` for the same-timestamp no-op rule)."""
        if self.supervisor is not None and self.supervisor.is_alive:
            self.supervisor.interrupt("shutdown")
        for host in sorted(self._workers):
            process = self._workers[host]
            if process.is_alive:
                process.interrupt("shutdown")
        for process in self._repair_procs:
            if process.is_alive:
                process.interrupt("shutdown")
        self.monitor.stop()

    # -- client surface ----------------------------------------------------

    def submit(self, request: JobRequest) -> Tuple[int, bool]:
        """Submit (or re-submit) a job; returns ``(job_id, dedup)``.

        Clients write straight to the durable log — the submission API
        is the database's front door, so duplicates are caught even
        while the supervisor is down.
        """
        get_job_kernel(request.kernel)  # unknown kernels fail loudly here
        return self.log.submit(self.sim.now, request)

    # -- fault-injection surface (campaign layer) --------------------------

    def worker_process(self, host: int) -> Optional[Process]:
        """The current worker process on ``host`` (None before start)."""
        return self._workers.get(host)

    def crash_worker(self, host: int) -> Optional[Process]:
        """Ground-truth crash of a worker host: heartbeats stop, and the
        returned process must be interrupted (twice, around zero-length
        runs) by the injector.  The supervisor learns nothing until the
        detector speaks."""
        self.monitor.crash(host)
        return self._workers.get(host)

    def stall_worker(self, host: int, seconds: float) -> bool:
        """Freeze a worker for ``seconds`` (no renewals, not dead)."""
        process = self._workers.get(host)
        if process is None or not process.is_alive:
            return False
        process.interrupt(WorkerStall(seconds))
        return True

    def purge_supervisor_inbox(self) -> int:
        """Drop the supervisor's undrained mailbox (crash-instant
        in-flight loss); returns the number of messages lost."""
        dropped = self.inboxes[0].purge(lambda message: True)
        self.inbox_purged += dropped
        return dropped

    # -- workers -----------------------------------------------------------

    def _spawn_worker(self, host: int, purge: bool = False) -> None:
        if purge:
            # A rebooted host's queued traffic died with it.
            self.inboxes[host].purge(lambda message: True)
        self._worker_seq += 1
        self._workers[host] = self.sim.process(
            self._worker_body(host),
            name=f"jobs.worker{host}.{self._worker_seq}")

    def _worker_body(self, host: int) -> Generator[Event, Any, None]:
        """Process body: wait for grants, execute, repeat.

        A grant whose lease deadline already passed while it sat in
        the inbox (the worker was stalled or backlogged) is dropped,
        not executed: its token is doomed, and starting it anyway
        keeps the worker one expiry behind forever — every attempt
        burns down ``max_attempts`` without a single durable effect."""
        sim = self.sim
        inbox = self.inboxes[host]
        try:
            while True:
                got = inbox.get(
                    lambda message: message.kind == "grant")
                try:
                    grant = yield got
                except Interrupt as interrupt:
                    inbox.cancel(got)
                    if isinstance(interrupt.cause, WorkerStall):
                        yield sim.timeout(interrupt.cause.seconds)
                        continue
                    return
                if sim.now >= grant.expires:
                    self.stale_grants_dropped += 1
                    continue
                yield from self._execute(host, grant)
        except Interrupt:
            return

    def _execute(self, host: int,
                 grant: Message) -> Generator[Event, Any, None]:
        """One granted attempt: report start, work (renewing the lease
        every ``renew_every``), then write the effect with bounded
        retries until some ack arrives.

        Stalls are absorbed here: work pauses, renewals stop, and the
        attempt *finishes late* — producing exactly the stale-write or
        late-accept races the log must survive."""
        sim = self.sim
        cfg = self.config
        inbox = self.inboxes[host]
        job_id, token = grant.job_id, grant.token
        inbox.purge(lambda message: message.kind == "write-ack")
        self._post(host, 0, Message(kind="start", job_id=job_id,
                                    token=token, sender=host))
        remaining = grant.work
        while remaining > _WORK_EPS:
            chunk = min(cfg.renew_every, remaining)
            chunk_started = sim.now
            try:
                yield sim.timeout(chunk)
            except Interrupt as interrupt:
                if isinstance(interrupt.cause, WorkerStall):
                    remaining -= sim.now - chunk_started
                    yield sim.timeout(interrupt.cause.seconds)
                    continue
                raise
            remaining -= chunk
            if remaining > _WORK_EPS:
                self._post(host, 0, Message(kind="renew", job_id=job_id,
                                            token=token, sender=host))
        value = get_job_kernel(grant.kernel)(grant.payload)
        for _attempt in range(cfg.write_max_retries + 1):
            self._post(host, 0, Message(kind="write", job_id=job_id,
                                        token=token, sender=host,
                                        value=value))
            got = inbox.get(
                lambda message, job=job_id, tok=token: (
                    message.kind == "write-ack"
                    and message.job_id == job
                    and message.token == tok))
            timer = sim.timeout(cfg.write_retry_seconds)
            try:
                yield sim.any_of([got, timer])
            except Interrupt as interrupt:
                inbox.cancel(got)
                if isinstance(interrupt.cause, WorkerStall):
                    yield sim.timeout(interrupt.cause.seconds)
                    continue
                raise
            if got.triggered:
                return  # any outcome ends the attempt (fenced-out included)
            inbox.cancel(got)
        # Every retry timed out (partition, supervisor down too long):
        # stand down; the lease will expire and the job will requeue.
        self.write_giveups += 1

    # -- the supervisor ----------------------------------------------------

    def _supervisor_body(self) -> Generator[Event, Any, None]:
        """Process body: the tick loop.

        Order within a tick is fixed (and therefore deterministic):
        drain the mailbox, consume death declarations, sweep expired
        leases, fail/grant pending jobs, sleep."""
        sim = self.sim
        cfg = self.config
        log = self.log
        inbox = self.inboxes[0]
        # Recovery: the volatile lease table is rebuilt from the log.
        self.leases = LeaseTable.rebuild(log, sim.now)
        try:
            while True:
                while len(inbox):
                    got = inbox.get()
                    self._handle_message(got.value)
                for record in self.monitor.pop_deaths():
                    self._handle_death(record)
                now = sim.now
                for lease in self.leases.expired(now):
                    self.leases.drop(lease.job_id)
                    log.expire(now, lease.job_id)
                yield from self._grant_pass()
                yield sim.timeout(cfg.tick_interval)
        except Interrupt:
            return

    def _handle_message(self, message: Message) -> None:
        now = self.sim.now
        log = self.log
        cfg = self.config
        if message.kind == "start":
            log.mark_running(now, message.job_id, message.token)
        elif message.kind == "renew":
            if log.renew(now, message.job_id, message.token,
                         cfg.lease_seconds):
                self.leases.renew(message.job_id, now + cfg.lease_seconds)
        elif message.kind == "write":
            outcome = log.apply_effect(now, message.job_id, message.token,
                                       message.sender, message.value)
            if outcome == "applied":
                self.leases.drop(message.job_id)
            self._post(0, message.sender,
                       Message(kind="write-ack", job_id=message.job_id,
                               token=message.token, sender=0,
                               outcome=outcome))
        else:
            raise ValueError(
                f"supervisor received unexpected {message.kind!r}")

    def _handle_death(self, record: DeathRecord) -> None:
        """Act on a death *declaration* (which may be a partition's lie):
        requeue the victim's leases, activate a spare, dispatch repair."""
        now = self.sim.now
        node = record.node
        if node == 0:
            return  # the supervisor host cannot be partitioned from itself
        self.deaths_handled += 1
        for job_id in self.log.requeue_dead_worker(now, node):
            self.leases.drop(job_id)
        covered = False
        if node in self._serving:
            self._serving.remove(node)
            activated = self.spares.activate(record)
            if activated is not None:
                self._serving.append(activated)
                self._serving.sort()
                self.spare_activation_log.append((now, activated, node))
                covered = True
        else:
            self.spares.discard(node)
        self.monitor.repair(node)
        self._repair_covered[node] = covered
        self._repair_procs.append(self.sim.process(
            self._repair_body(node),
            name=f"jobs.repair{node}.{self.deaths_handled}"))

    def _repair_body(self, node: int) -> Generator[Event, Any, None]:
        """Process body: repair delay, then restore the node.

        A truly-crashed node comes back with a fresh worker process and
        an empty mailbox; a falsely-declared one was alive all along
        and simply rejoins.  If this death consumed a spare, the
        repaired node refills the pool; otherwise it rejoins service."""
        try:
            yield self.sim.timeout(self.config.repair_seconds)
        except Interrupt:
            return
        self.monitor.restore(node)
        process = self._workers.get(node)
        if process is None or not process.is_alive:
            self._spawn_worker(node, purge=True)
        if self._repair_covered.pop(node, False):
            self.spares.refill(node)
        else:
            self._serving.append(node)
            self._serving.sort()

    def _grant_pass(self) -> Generator[Event, Any, None]:
        """Fail exhausted jobs; lease the rest onto idle workers.

        The ``grant_commit_gap`` timeout between the durable grant and
        the grant *message* is the supervisor-crash-mid-grant window:
        an interrupt landing inside it leaves a granted-but-unsent
        lease that can only expire and requeue."""
        sim = self.sim
        cfg = self.config
        log = self.log
        idle = self._idle_workers()
        for job_id in log.pending():
            row = log.rows[job_id]
            if row.attempts >= cfg.max_attempts:
                log.fail(sim.now, job_id, "attempts-exhausted")
                continue
            if not idle:
                continue
            worker = idle.pop(0)
            lease = log.grant(sim.now, job_id, worker, cfg.lease_seconds)
            self.leases.add(lease)
            if cfg.grant_commit_gap > 0:
                yield sim.timeout(cfg.grant_commit_gap)
            self._post(0, worker,
                       Message(kind="grant", job_id=job_id,
                               token=lease.token, sender=0,
                               kernel=row.kernel, payload=row.payload,
                               work=row.work_seconds,
                               expires=lease.expires_at))

    def _idle_workers(self) -> List[int]:
        """Serving workers with no active lease, believed available —
        belief meaning the membership view, never ground truth."""
        busy = set(self.leases.busy_workers())
        membership = self.monitor.membership
        return [host for host in self._serving
                if host not in busy and membership.is_available(host)]

    # -- messaging ---------------------------------------------------------

    def _post(self, src: int, dst: int, message: Message) -> None:
        """Fire-and-forget one message transfer (loss is the retry
        loops' problem, exactly as on a real network)."""
        self._msg_seq += 1
        self.messages_sent += 1
        self.sim.process(self._post_body(src, dst, message),
                         name=f"jobs.msg{self._msg_seq}")

    def _post_body(self, src: int, dst: int,
                   message: Message) -> Generator[Event, Any, None]:
        try:
            yield from self.fabric.transfer(src, dst,
                                            self.config.message_bytes)
        except (TransferDropped, NetworkUnreachable):
            self.messages_lost += 1
            return
        self.inboxes[dst].put(message)
        self.messages_delivered += 1

    # -- metrics -----------------------------------------------------------

    def publish(self, obs: Observability) -> None:
        """Push the service's summary metrics into a registry."""
        if not obs.enabled:
            return
        log = self.log
        gauges = {
            "jobs.submitted": float(log.submissions),
            "jobs.deduped": float(log.dedup_hits),
            "jobs.grants": float(log.grants),
            "jobs.lease_renewals": float(log.renewals),
            "jobs.renew_rejections": float(log.renew_rejections),
            "jobs.lease_expiries": float(log.expiries),
            "jobs.requeues": float(log.requeues),
            "jobs.completed": float(log.completed),
            "jobs.failed": float(log.failed),
            "jobs.supervisor_restarts": float(
                self.supervisor_incarnations - 1),
            "jobs.messages_lost": float(self.messages_lost),
            "jobs.write_giveups": float(self.write_giveups),
            "jobs.stale_grants_dropped": float(self.stale_grants_dropped),
            "jobs.spare_activations": float(self.spares.activations),
            "jobs.false_spare_activations": float(
                self.spares.false_activations),
        }
        for name in sorted(gauges):
            obs.metrics.gauge(name).set(gauges[name])
        for kind, count in (("stale", log.rejections_stale),
                            ("duplicate", log.rejections_duplicate),
                            ("closed", log.rejections_closed)):
            obs.metrics.gauge("jobs.fencing_rejections",
                              kind=kind).set(float(count))
        self.monitor.publish(obs)
