"""Leases: time-bound, fenced execution rights.

A :class:`Lease` is the supervisor's promise that exactly one worker
may execute a job until ``expires_at`` — paired with a fencing token
that makes the promise safe even when the promise is broken (a worker
that holds an expired lease can still *try* to write; the token lets
the log reject it).

:class:`LeaseTable` is the supervisor's **volatile** view of active
leases.  It is a cache, never the truth: the durable
:class:`~repro.jobs.log.JobLog` records every grant, and a restarted
supervisor rebuilds its table from the log (:meth:`LeaseTable.rebuild`)
— which is precisely what makes supervisor crashes survivable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.jobs.log import JobLog

__all__ = ["Lease", "LeaseTable"]


@dataclass(frozen=True)
class Lease:
    """One granted execution right: job, owner, token, and deadline."""

    job_id: int
    worker: int
    token: int
    granted_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        """True once ``now`` has reached the deadline."""
        return now >= self.expires_at


class LeaseTable:
    """Volatile supervisor-side index of active leases."""

    def __init__(self) -> None:
        self._by_job: Dict[int, Lease] = {}

    def __len__(self) -> int:
        return len(self._by_job)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_job

    def get(self, job_id: int) -> Optional[Lease]:
        """The active lease for ``job_id``, if any."""
        return self._by_job.get(job_id)

    def add(self, lease: Lease) -> None:
        """Index a freshly granted lease (one active lease per job)."""
        if lease.job_id in self._by_job:
            raise ValueError(
                f"job {lease.job_id} already holds an active lease")
        self._by_job[lease.job_id] = lease

    def renew(self, job_id: int, expires_at: float) -> Lease:
        """Extend a lease's deadline; returns the replacement lease."""
        old = self._by_job[job_id]
        new = Lease(job_id=old.job_id, worker=old.worker, token=old.token,
                    granted_at=old.granted_at, expires_at=expires_at)
        self._by_job[job_id] = new
        return new

    def drop(self, job_id: int) -> Optional[Lease]:
        """Remove and return the lease for ``job_id`` (None if absent)."""
        return self._by_job.pop(job_id, None)

    def expired(self, now: float) -> List[Lease]:
        """Leases whose deadline has passed, ordered by
        ``(expires_at, job_id)`` so expiry processing is deterministic."""
        due = [lease for lease in self._by_job.values()
               if lease.expired(now)]
        due.sort(key=lambda lease: (lease.expires_at, lease.job_id))
        return due

    def owned_by(self, worker: int) -> List[Lease]:
        """Active leases held by ``worker``, ordered by job id."""
        owned = [lease for lease in self._by_job.values()
                 if lease.worker == worker]
        owned.sort(key=lambda lease: lease.job_id)
        return owned

    def busy_workers(self) -> List[int]:
        """Workers currently holding at least one lease, ascending."""
        return sorted({lease.worker for lease in self._by_job.values()})

    @classmethod
    def rebuild(cls, log: "JobLog", now: float) -> "LeaseTable":
        """Reconstruct the volatile table from the durable log.

        Every job the log shows as LEASED or RUNNING with an owner gets
        its lease re-indexed — including already-expired ones, which the
        supervisor's next expiry sweep will requeue.  This is the whole
        supervisor-recovery story: the table is disposable because the
        log is not.
        """
        table = cls()
        for row in log.live_rows():
            if row.owner is None:
                continue
            table.add(Lease(job_id=row.job_id, worker=row.owner,
                            token=row.fencing_token,
                            granted_at=row.granted_at,
                            expires_at=row.expires_at))
        return table
