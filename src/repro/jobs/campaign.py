"""Fault campaigns against the job control plane.

A :class:`JobsCampaignSpec` declares a workload (tenant submissions)
plus a schedule of control-plane faults — worker crashes, worker
stalls, supervisor crashes with delayed restarts, duplicate
submissions, and fabric faults (link/switch outages, probabilistic
drops) reusing the declarative specs and plan builder from
:mod:`repro.fault.campaign`.  :func:`run_jobs_campaign` executes it
deterministically and returns a :class:`JobsCampaignReport` whose
``violations`` come from the log's own replay checker
(:meth:`~repro.jobs.log.JobLog.check_invariants`) — the at-most-once
proof is *recomputed from the durable records*, never trusted from
counters.

:func:`prove_determinism` runs the same spec twice and compares the
canonical log digests byte-for-byte: same seed, same faults, same
bytes, or the campaign fails.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.fault.campaign import (
    LinkFaultSpec,
    SwitchFaultSpec,
    build_fault_plan,
)
from repro.health.monitor import DetectionOutcome
from repro.jobs.log import JobLog
from repro.jobs.service import JobService, ServiceConfig
from repro.jobs.state import JobRequest, JobState
from repro.network.fabric import Fabric
from repro.network.technologies import get_interconnect
from repro.network.topology import FatTreeTopology
from repro.obs import NULL_OBS, Observability
from repro.scheduler.job import Job
from repro.sim.detsan import DetSanRecorder
from repro.sim.engine import Process, SimulationError, Simulator
from repro.sim.rng import RandomStreams

__all__ = [
    "DeterminismProof",
    "DuplicateSubmitSpec",
    "JobsCampaignReport",
    "JobsCampaignSpec",
    "SupervisorCrashSpec",
    "WorkerCrashSpec",
    "WorkerStallSpec",
    "prove_determinism",
    "requests_from_jobs",
    "run_jobs_campaign",
]

_JOBS_MAX_EVENTS = 5_000_000
_JOBS_CHUNK_EVENTS = 100_000


# -- fault schedule specs --------------------------------------------------


@dataclass(frozen=True)
class WorkerCrashSpec:
    """At virtual ``time``, worker host ``host`` dies for real: its
    process is torn down and its heartbeats stop.  The supervisor only
    learns of it when the detector declares the death."""

    time: float
    host: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be >= 0")
        if self.host < 1:
            raise ValueError("host must be a worker (>= 1), not the "
                             "supervisor host 0")


@dataclass(frozen=True)
class WorkerStallSpec:
    """At ``time``, worker ``host`` freezes for ``duration`` — alive
    but silent, the recipe for a lease-expiry race."""

    time: float
    host: int
    duration: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("stall time must be >= 0")
        if self.host < 1:
            raise ValueError("host must be a worker (>= 1)")
        if self.duration <= 0:
            raise ValueError("stall duration must be positive")


@dataclass(frozen=True)
class SupervisorCrashSpec:
    """At ``time`` the supervisor process dies (its undrained mailbox
    is lost with it); a fresh incarnation starts ``restart_after``
    later and rebuilds its lease table from the durable log."""

    time: float
    restart_after: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be >= 0")
        if self.restart_after <= 0:
            raise ValueError("restart_after must be positive")


@dataclass(frozen=True)
class DuplicateSubmitSpec:
    """At ``time``, resubmit request ``index`` verbatim (a retrying
    client); the log must deduplicate it via ``(tenant, key)``."""

    time: float
    index: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("submit time must be >= 0")
        if self.index < 0:
            raise ValueError("index must be >= 0")


@dataclass(frozen=True)
class JobsCampaignSpec:
    """One declarative control-plane fault campaign."""

    requests: Tuple[JobRequest, ...]
    name: str = ""
    service: ServiceConfig = field(default_factory=ServiceConfig)
    worker_crashes: Tuple[WorkerCrashSpec, ...] = ()
    worker_stalls: Tuple[WorkerStallSpec, ...] = ()
    supervisor_crashes: Tuple[SupervisorCrashSpec, ...] = ()
    duplicate_submits: Tuple[DuplicateSubmitSpec, ...] = ()
    link_faults: Tuple[LinkFaultSpec, ...] = ()
    switch_faults: Tuple[SwitchFaultSpec, ...] = ()
    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    seed: int = 0
    technology: str = "gigabit_ethernet"
    #: Hard stop for the virtual clock — jobs still open here stay open.
    horizon: float = 0.5

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("campaign needs at least one request")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        hosts = self.service.total_hosts
        for crash in self.worker_crashes:
            if crash.host >= hosts:
                raise ValueError(
                    f"crash host {crash.host} >= total hosts {hosts}")
        for stall in self.worker_stalls:
            if stall.host >= hosts:
                raise ValueError(
                    f"stall host {stall.host} >= total hosts {hosts}")
        for dup in self.duplicate_submits:
            if dup.index >= len(self.requests):
                raise ValueError(
                    f"duplicate submit index {dup.index} >= "
                    f"{len(self.requests)} requests")
        outages = sorted(self.supervisor_crashes, key=lambda s: s.time)
        for earlier, later in zip(outages, outages[1:]):
            if earlier.time + earlier.restart_after > later.time:
                raise ValueError(
                    "overlapping supervisor outages: the supervisor "
                    "must restart before it can crash again")

    def topology(self) -> FatTreeTopology:
        """Full-bisection fat tree over supervisor + workers + spares."""
        hosts = self.service.total_hosts
        per_leaf = max(2, -(-hosts // 4))  # ceil(hosts / 4)
        return FatTreeTopology(hosts, hosts_per_leaf=per_leaf,
                               spines=per_leaf)

    def without_faults(self) -> "JobsCampaignSpec":
        """The clean twin: same workload and duplicates, zero faults
        (the goodput baseline E22 compares against)."""
        return dataclasses.replace(
            self, worker_crashes=(), worker_stalls=(),
            supervisor_crashes=(), link_faults=(), switch_faults=(),
            drop_probability=0.0, corrupt_probability=0.0,
            name=f"{self.name}-clean" if self.name else "clean")


# -- report ----------------------------------------------------------------


@dataclass(frozen=True)
class JobsCampaignReport:
    """Everything one campaign run measured and proved."""

    name: str
    elapsed: float
    jobs: int
    completed: int
    failed: int
    unfinished: int
    dedup_hits: int
    grants: int
    renewals: int
    renew_rejections: int
    expiries: int
    requeues: int
    rejections_stale: int
    rejections_duplicate: int
    rejections_closed: int
    supervisor_restarts: int
    deaths_declared: int
    false_deaths: int
    spare_activations: int
    false_spare_activations: int
    messages_sent: int
    messages_lost: int
    write_giveups: int
    stale_grants_dropped: int
    #: Completed work seconds / (workers * elapsed): the fraction of
    #: the fleet's capacity that became durable effects.
    goodput: float
    log_records: int
    log_digest: str
    log_text: str
    violations: Tuple[str, ...]
    detection: DetectionOutcome

    @property
    def fencing_rejections(self) -> int:
        """Total writes the log fenced out (stale + duplicate + closed)."""
        return (self.rejections_stale + self.rejections_duplicate
                + self.rejections_closed)

    @property
    def clean(self) -> bool:
        """True when every invariant held and every job closed."""
        return not self.violations and self.unfinished == 0

    def summary(self) -> str:
        """Multi-line human summary (the ``jobs`` CLI prints this)."""
        label = self.name or "jobs campaign"
        lines = [
            f"campaign {label!r}: {self.jobs} jobs -> "
            f"{self.completed} completed, {self.failed} failed, "
            f"{self.unfinished} unfinished in {self.elapsed:.6f}s",
            f"  leases: grants={self.grants} renewals={self.renewals} "
            f"expiries={self.expiries} requeues={self.requeues} "
            f"dedup={self.dedup_hits}",
            f"  fencing rejections: stale={self.rejections_stale} "
            f"duplicate={self.rejections_duplicate} "
            f"closed={self.rejections_closed} "
            f"(renewals rejected={self.renew_rejections})",
            f"  failures: supervisor restarts={self.supervisor_restarts} "
            f"deaths={self.deaths_declared} (false={self.false_deaths}) "
            f"spares activated={self.spare_activations} "
            f"(false={self.false_spare_activations})",
            f"  messages: sent={self.messages_sent} "
            f"lost={self.messages_lost} "
            f"write giveups={self.write_giveups} "
            f"stale grants dropped={self.stale_grants_dropped} "
            f"goodput={self.goodput:.4f}",
            f"  log: {self.log_records} records "
            f"digest={self.log_digest[:16]} "
            f"violations={len(self.violations)}",
        ]
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


@dataclass(frozen=True)
class DeterminismProof:
    """Same-seed reruns of one spec, compared byte-for-byte."""

    digests: Tuple[str, ...]
    reports: Tuple[JobsCampaignReport, ...]

    @property
    def identical(self) -> bool:
        """True when every rerun produced the same canonical log."""
        return len(set(self.digests)) == 1


# -- SWF-trace bridge ------------------------------------------------------


def requests_from_jobs(jobs: Tuple[Job, ...],
                       tenant: str = "swf",
                       kernel: str = "digest",
                       time_scale: float = 1.0) -> Tuple[JobRequest, ...]:
    """Turn a batch-scheduler trace into control-plane submissions.

    Each :class:`~repro.scheduler.job.Job` (typically parsed from an
    SWF trace via :func:`~repro.scheduler.swf.parse_swf`) becomes one
    :class:`JobRequest` whose idempotency key is the trace job id and
    whose payload records the trace shape.  ``time_scale`` maps trace
    seconds onto the service's clock — SWF traces live at integer
    seconds, the jobs service at milliseconds, so E22 passes ``1e-3``.
    Prefer :func:`~repro.scheduler.job.scale_jobs` + ``time_scale=1``
    only when the scaled times must round-trip through SWF text again.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    return tuple(
        JobRequest(tenant=tenant,
                   key=f"swf-{job.job_id}",
                   kernel=kernel,
                   payload=(("job", job.job_id), ("nodes", job.nodes)),
                   work_seconds=job.runtime * time_scale,
                   submit_time=job.submit_time * time_scale)
        for job in jobs)


# -- execution -------------------------------------------------------------


@dataclass(frozen=True)
class _Action:
    """One scheduled injector step, ordered by (time, priority, seq)."""

    time: float
    priority: int
    seq: int
    kind: str
    host: int = 0
    duration: float = 0.0
    request: Optional[JobRequest] = None


def _build_actions(spec: JobsCampaignSpec) -> List[_Action]:
    """The campaign's full injection schedule, deterministically
    ordered.  Same-instant ties resolve submissions first, then
    stalls, crashes, and supervisor events — fixed so reruns replay
    identically."""
    actions: List[_Action] = []
    seq = 0

    def add(time: float, priority: int, kind: str, host: int = 0,
            duration: float = 0.0,
            request: Optional[JobRequest] = None) -> None:
        nonlocal seq
        if time >= spec.horizon:
            raise ValueError(
                f"{kind} action at {time} is past the campaign "
                f"horizon {spec.horizon}")
        actions.append(_Action(time=time, priority=priority, seq=seq,
                               kind=kind, host=host, duration=duration,
                               request=request))
        seq += 1

    for request in spec.requests:
        add(request.submit_time, 0, "submit", request=request)
    for dup in spec.duplicate_submits:
        add(dup.time, 1, "submit", request=spec.requests[dup.index])
    for stall in spec.worker_stalls:
        add(stall.time, 2, "stall", host=stall.host,
            duration=stall.duration)
    for crash in spec.worker_crashes:
        add(crash.time, 3, "crash-worker", host=crash.host)
    for outage in spec.supervisor_crashes:
        add(outage.time, 4, "crash-supervisor")
        add(outage.time + outage.restart_after, 5, "restart-supervisor")
    actions.sort(key=lambda a: (a.time, a.priority, a.seq))
    return actions


def _kill_process(sim: Simulator, process: Optional[Process],
                  cause: str) -> None:
    """Tear down one process with the double-interrupt dance (the
    same-timestamp no-op rule means the first interrupt can be
    ignored by a process whose wakeup is due this very instant)."""
    if process is None or not process.is_alive:
        return
    process.interrupt(cause)
    sim.run(until=sim.now)
    if process.is_alive:
        process.interrupt(cause)
        sim.run(until=sim.now)


def _apply(sim: Simulator, service: JobService, obs: Observability,
           action: _Action) -> None:
    """Execute one injector step against the live service."""
    if action.kind == "submit":
        assert action.request is not None
        job_id, dedup = service.submit(action.request)
        obs.instant("jobs.submit", track="jobs", job=job_id, dedup=dedup)
    elif action.kind == "stall":
        service.stall_worker(action.host, action.duration)
        obs.instant("jobs.stall", track="jobs", host=action.host)
    elif action.kind == "crash-worker":
        process = service.crash_worker(action.host)
        _kill_process(sim, process, "crash")
        obs.instant("jobs.worker_crash", track="jobs", host=action.host)
    elif action.kind == "crash-supervisor":
        _kill_process(sim, service.supervisor, "crash")
        lost = service.purge_supervisor_inbox()
        obs.instant("jobs.supervisor_crash", track="jobs",
                    inbox_lost=lost)
    elif action.kind == "restart-supervisor":
        service.start_supervisor()
        obs.instant("jobs.supervisor_restart", track="jobs")
    else:  # pragma: no cover - _build_actions emits a closed set
        raise ValueError(f"unknown campaign action {action.kind!r}")


def run_jobs_campaign(
        spec: JobsCampaignSpec,
        obs: Optional[Observability] = None,
        detsan: Optional[DetSanRecorder] = None) -> JobsCampaignReport:
    """Execute one control-plane campaign deterministically.

    Drives the injection schedule against a live :class:`JobService`,
    runs until every job closes (or the horizon lands), shuts the
    service down cleanly, then *replays the durable log* to verify the
    at-most-once and fencing invariants.
    """
    if obs is None:
        obs = NULL_OBS
    streams = RandomStreams(seed=spec.seed)
    sim = Simulator(obs=obs, detsan=detsan)
    topology = spec.topology()
    plan = build_fault_plan(
        topology,
        link_faults=spec.link_faults,
        switch_faults=spec.switch_faults,
        drop_probability=spec.drop_probability,
        corrupt_probability=spec.corrupt_probability,
        streams=streams)
    fabric = Fabric(sim, topology, get_interconnect(spec.technology),
                    fault_plan=plan)
    service = JobService(sim, fabric, config=spec.service,
                         streams=streams)
    service.start()

    actions = _build_actions(spec)
    log = service.log
    index = 0

    def done() -> bool:
        """Every action applied and every job terminal."""
        return index >= len(actions) and log.all_terminal()

    while True:
        while index < len(actions) and sim.now >= actions[index].time:
            _apply(sim, service, obs, actions[index])
            index += 1
        if done() or sim.now >= spec.horizon:
            break
        target = spec.horizon
        if index < len(actions):
            target = min(target, actions[index].time)
        sim.run(until=max(target, sim.now),
                max_events=_JOBS_CHUNK_EVENTS,
                stop=done)
        if sim.events_executed > _JOBS_MAX_EVENTS:
            raise SimulationError(
                "jobs campaign exceeded its event budget: jobs can "
                "neither finish nor fail (supervisor never restarted? "
                "lease/renew intervals pathological?)")

    # Clean teardown: double pass for the same-timestamp no-op rule,
    # then quiesce so abandoned helpers close deterministically.
    service.shutdown()
    sim.run(until=sim.now)
    service.shutdown()
    sim.run(until=sim.now)
    sim.quiesce()

    elapsed = sim.now
    violations = tuple(log.check_invariants())
    completed_work = sum(
        row.work_seconds for row in log.rows.values()
        if row.state is JobState.COMPLETED)
    capacity = spec.service.workers * elapsed
    goodput = completed_work / capacity if capacity > 0 else 0.0
    unfinished = sum(
        1 for row in log.rows.values()
        if row.state not in (JobState.COMPLETED, JobState.FAILED))

    service.publish(obs)
    if obs.enabled:
        obs.metrics.gauge("jobs.goodput").set(goodput)

    return JobsCampaignReport(
        name=spec.name,
        elapsed=elapsed,
        jobs=len(log.rows),
        completed=log.completed,
        failed=log.failed,
        unfinished=unfinished,
        dedup_hits=log.dedup_hits,
        grants=log.grants,
        renewals=log.renewals,
        renew_rejections=log.renew_rejections,
        expiries=log.expiries,
        requeues=log.requeues,
        rejections_stale=log.rejections_stale,
        rejections_duplicate=log.rejections_duplicate,
        rejections_closed=log.rejections_closed,
        supervisor_restarts=service.supervisor_incarnations - 1,
        deaths_declared=len(service.monitor.deaths),
        false_deaths=service.monitor.false_deaths,
        spare_activations=service.spares.activations,
        false_spare_activations=service.spares.false_activations,
        messages_sent=service.messages_sent,
        messages_lost=service.messages_lost,
        write_giveups=service.write_giveups,
        stale_grants_dropped=service.stale_grants_dropped,
        goodput=goodput,
        log_records=len(log.records),
        log_digest=log.digest(),
        log_text=log.render(),
        violations=violations,
        detection=service.monitor.outcome(),
    )


def prove_determinism(spec: JobsCampaignSpec,
                      runs: int = 2) -> DeterminismProof:
    """Run ``spec`` ``runs`` times and compare canonical log digests.

    Every run builds a fresh simulator, fabric, and service from the
    same seed; the proof passes only when the durable logs are
    byte-identical — the whole-campaign determinism guarantee E22 and
    the ``jobs`` CLI assert.
    """
    if runs < 2:
        raise ValueError("a determinism proof needs at least two runs")
    reports = tuple(run_jobs_campaign(spec) for _ in range(runs))
    return DeterminismProof(
        digests=tuple(report.log_digest for report in reports),
        reports=reports)
