"""Lease-based job control plane: at-most-once under fault campaigns.

The cluster-software claim of the keynote, made executable: once
commodity clusters scale past the point where nodes fail routinely,
the *control plane* — not the application — must guarantee that work
happens at most once.  This package builds that control plane on the
repo's own stack and proves the guarantee under full fault campaigns:

* :mod:`~repro.jobs.state` — the job lifecycle state machine
  (SUBMITTED/LEASED/RUNNING/COMPLETED/FAILED/REQUEUED) with legal-
  transition enforcement, and :class:`JobRequest` idempotent
  submissions;
* :mod:`~repro.jobs.lease` — time-bound leases with monotonically
  increasing fencing tokens; the supervisor's volatile
  :class:`LeaseTable` is rebuilt from the durable log on restart;
* :mod:`~repro.jobs.log` — the durable, byte-canonical
  :class:`JobLog`: fenced effect application (stale tokens rejected at
  the storage boundary), ``(tenant, key)`` deduplication, and a replay
  checker that re-proves every invariant from the records alone;
* :mod:`~repro.jobs.service` — supervisor, workers, and the message
  plane riding a real :class:`~repro.network.fabric.Fabric`, with
  detector-driven (never oracle-driven) death handling and spare
  activation;
* :mod:`~repro.jobs.campaign` — declarative fault campaigns (worker
  crashes/stalls, supervisor crashes, duplicate submissions, fabric
  faults) plus the byte-identical same-seed determinism proof.

Run ``python -m repro jobs`` for an end-to-end demonstration.
"""

from repro.jobs.campaign import (
    DeterminismProof,
    DuplicateSubmitSpec,
    JobsCampaignReport,
    JobsCampaignSpec,
    SupervisorCrashSpec,
    WorkerCrashSpec,
    WorkerStallSpec,
    prove_determinism,
    requests_from_jobs,
    run_jobs_campaign,
)
from repro.jobs.lease import Lease, LeaseTable
from repro.jobs.log import EffectRecord, JobLog, JobRow, LogRecord
from repro.jobs.service import (
    JobService,
    Message,
    ServiceConfig,
    WorkerStall,
    available_job_kernels,
    get_job_kernel,
    register_job_kernel,
)
from repro.jobs.state import (
    TERMINAL_STATES,
    JobRequest,
    JobState,
    check_transition,
)

__all__ = [
    "DeterminismProof",
    "DuplicateSubmitSpec",
    "EffectRecord",
    "JobLog",
    "JobRequest",
    "JobRow",
    "JobService",
    "JobState",
    "JobsCampaignReport",
    "JobsCampaignSpec",
    "Lease",
    "LeaseTable",
    "LogRecord",
    "Message",
    "ServiceConfig",
    "SupervisorCrashSpec",
    "TERMINAL_STATES",
    "WorkerCrashSpec",
    "WorkerStall",
    "WorkerStallSpec",
    "available_job_kernels",
    "check_transition",
    "get_job_kernel",
    "prove_determinism",
    "register_job_kernel",
    "requests_from_jobs",
    "run_jobs_campaign",
]
