"""The durable job log: fencing, idempotency, and a byte-canonical record.

This is the control plane's database.  Everything the supervisor must
not forget across a crash lives here — job rows, lease grants with their
**monotonically increasing fencing tokens**, and every accepted *or
rejected* side-effect write — while everything volatile (the lease
table, mailboxes, in-flight messages) can evaporate and be rebuilt.

The write path enforces the two safety rules the whole design hangs on,
at the storage boundary where they cannot be bypassed (the Faultline
pattern: the database, not the worker, is the arbiter):

* **Fencing** — an effect write carries the token from its grant; the
  log accepts it only if that token is the *highest ever granted* for
  the job.  A worker whose lease expired and was re-granted elsewhere
  holds a smaller token, and its late write is rejected as stale.
* **Idempotency** — at most one effect per job, ever.  A duplicate
  write under the winning token (a retransmitted message, a retried
  worker) is acknowledged but not re-applied; duplicate *submissions*
  with the same ``(tenant, key)`` map to the existing job.

Every mutation appends a :class:`LogRecord` whose :meth:`LogRecord.
line` rendering is byte-stable, so two same-seed campaign runs must
produce byte-identical logs (:meth:`JobLog.render` / :meth:`JobLog.
digest`) and :meth:`JobLog.check_invariants` can re-verify the whole
history after the fact by replaying it against the state machine.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.jobs.lease import Lease
from repro.jobs.state import (
    TERMINAL_STATES,
    JobRequest,
    JobState,
    check_transition,
)

__all__ = ["EffectRecord", "JobLog", "JobRow", "LogRecord"]


def _t(value: float) -> str:
    """Canonical fixed-point rendering for times (byte-stable)."""
    return f"{value:.9f}"


@dataclass(frozen=True)
class LogRecord:
    """One appended log entry, renderable deterministically."""

    time: float
    seq: int
    kind: str
    job_id: int
    fields: Tuple[Tuple[str, str], ...] = ()

    def line(self) -> str:
        """Canonical one-line rendering (byte-stable across runs)."""
        text = f"{_t(self.time)} seq={self.seq} {self.kind} job={self.job_id}"
        for key, value in self.fields:
            text += f" {key}={value}"
        return text


@dataclass(frozen=True)
class EffectRecord:
    """The one side effect a job is allowed to produce."""

    job_id: int
    token: int
    worker: int
    value: str
    applied_at: float


@dataclass
class JobRow:
    """Durable per-job state (the log's materialized view)."""

    job_id: int
    tenant: str
    key: str
    kernel: str
    payload: Tuple[Tuple[str, Any], ...]
    work_seconds: float
    submitted_at: float
    state: JobState = JobState.SUBMITTED
    #: Highest token ever granted; 0 means never leased.
    fencing_token: int = 0
    owner: Optional[int] = None
    granted_at: float = 0.0
    expires_at: float = 0.0
    attempts: int = 0
    effect: Optional[EffectRecord] = None
    completed_at: Optional[float] = None
    failed_cause: str = ""


class JobLog:
    """Append-only durable log plus the materialized job rows.

    Single-writer by convention (the supervisor host owns it); workers
    reach it only through supervisor messages.  All mutators take an
    explicit ``now`` — the log has no clock of its own.
    """

    def __init__(self) -> None:
        self.rows: Dict[int, JobRow] = {}
        self.records: List[LogRecord] = []
        self._by_identity: Dict[Tuple[str, str], int] = {}
        #: FIFO arrival order of (re)queued jobs; filtered by state in
        #: :meth:`pending`, so it may hold stale entries.
        self._queue: List[int] = []
        self._seq = 0
        self._next_job_id = 1
        # Counters (all derivable from the records; kept for cheap reads).
        self.submissions = 0
        self.dedup_hits = 0
        self.grants = 0
        self.renewals = 0
        self.renew_rejections = 0
        self.expiries = 0
        self.requeues = 0
        self.completed = 0
        self.failed = 0
        self.rejections_stale = 0
        self.rejections_duplicate = 0
        self.rejections_closed = 0

    # -- append machinery --------------------------------------------------

    def _append(self, now: float, kind: str, job_id: int,
                *fields: Tuple[str, str]) -> LogRecord:
        self._seq += 1
        record = LogRecord(time=now, seq=self._seq, kind=kind,
                           job_id=job_id, fields=tuple(fields))
        self.records.append(record)
        return record

    def _transition(self, row: JobRow, new: JobState) -> None:
        check_transition(row.state, new)
        row.state = new

    # -- submission --------------------------------------------------------

    def submit(self, now: float, request: JobRequest) -> Tuple[int, bool]:
        """Record a submission; returns ``(job_id, deduplicated)``.

        A resubmission of an existing ``(tenant, key)`` — whatever state
        that job is in — returns the existing id with ``True`` and
        appends a ``dedup`` record instead of creating a row.
        """
        self.submissions += 1
        existing = self._by_identity.get(request.identity)
        if existing is not None:
            self.dedup_hits += 1
            self._append(now, "dedup", existing,
                         ("tenant", request.tenant), ("key", request.key))
            return existing, True
        job_id = self._next_job_id
        self._next_job_id += 1
        row = JobRow(job_id=job_id, tenant=request.tenant, key=request.key,
                     kernel=request.kernel, payload=request.payload,
                     work_seconds=request.work_seconds, submitted_at=now)
        self.rows[job_id] = row
        self._by_identity[request.identity] = job_id
        self._queue.append(job_id)
        fingerprint = hashlib.sha256(
            repr(request.payload).encode()).hexdigest()[:12]
        self._append(now, "submit", job_id,
                     ("tenant", request.tenant), ("key", request.key),
                     ("kernel", request.kernel),
                     ("work", _t(request.work_seconds)),
                     ("payload", fingerprint))
        return job_id, False

    # -- lease lifecycle ---------------------------------------------------

    def grant(self, now: float, job_id: int, worker: int,
              lease_seconds: float) -> Lease:
        """Grant a lease: bump the fencing token, start the clock.

        Legal only from SUBMITTED or REQUEUED (the transition check
        enforces it).  The token bump is what fences out every earlier
        leaseholder of this job.
        """
        row = self.rows[job_id]
        self._transition(row, JobState.LEASED)
        row.fencing_token += 1
        row.owner = worker
        row.granted_at = now
        row.expires_at = now + lease_seconds
        row.attempts += 1
        self.grants += 1
        self._append(now, "grant", job_id,
                     ("worker", str(worker)),
                     ("token", str(row.fencing_token)),
                     ("attempt", str(row.attempts)),
                     ("expires", _t(row.expires_at)))
        return Lease(job_id=job_id, worker=worker, token=row.fencing_token,
                     granted_at=now, expires_at=row.expires_at)

    def renew(self, now: float, job_id: int, token: int,
              lease_seconds: float) -> bool:
        """Extend a live lease; False (and a reject record) otherwise.

        A renewal is honored only when the token is current *and* the
        job is still LEASED/RUNNING — a worker whose job was requeued
        under it (death declaration, expiry sweep) renews into a
        rejection and learns to stand down.
        """
        row = self.rows[job_id]
        live = row.state in (JobState.LEASED, JobState.RUNNING)
        if token != row.fencing_token or not live:
            self.renew_rejections += 1
            self._append(now, "reject-renew", job_id,
                         ("token", str(token)),
                         ("current", str(row.fencing_token)),
                         ("state", row.state.value))
            return False
        row.expires_at = now + lease_seconds
        self.renewals += 1
        self._append(now, "renew", job_id, ("token", str(token)),
                     ("expires", _t(row.expires_at)))
        return True

    def mark_running(self, now: float, job_id: int, token: int) -> bool:
        """Record the worker's start report (LEASED -> RUNNING)."""
        row = self.rows[job_id]
        if token != row.fencing_token or row.state is not JobState.LEASED:
            self._append(now, "reject-start", job_id,
                         ("token", str(token)),
                         ("current", str(row.fencing_token)),
                         ("state", row.state.value))
            return False
        self._transition(row, JobState.RUNNING)
        self._append(now, "start", job_id, ("token", str(token)))
        return True

    def expire(self, now: float, job_id: int) -> bool:
        """Requeue a job whose lease deadline passed; False if the job
        already left LEASED/RUNNING (e.g. its write just landed)."""
        row = self.rows[job_id]
        if row.state not in (JobState.LEASED, JobState.RUNNING):
            return False
        if now < row.expires_at:
            raise ValueError(
                f"job {job_id} lease expires at {row.expires_at}, "
                f"not yet at {now}")
        owner = row.owner
        self._transition(row, JobState.REQUEUED)
        row.owner = None
        self.expiries += 1
        self._queue.append(job_id)
        self._append(now, "expire", job_id,
                     ("token", str(row.fencing_token)),
                     ("worker", str(owner)))
        return True

    def requeue_dead_worker(self, now: float, worker: int) -> List[int]:
        """Requeue every LEASED/RUNNING job owned by a declared-dead
        worker; returns the requeued job ids in order."""
        requeued = []
        for job_id in sorted(self.rows):
            row = self.rows[job_id]
            if row.owner != worker:
                continue
            if row.state not in (JobState.LEASED, JobState.RUNNING):
                continue
            self._transition(row, JobState.REQUEUED)
            row.owner = None
            self.requeues += 1
            self._queue.append(job_id)
            self._append(now, "requeue", job_id,
                         ("token", str(row.fencing_token)),
                         ("worker", str(worker)),
                         ("cause", "death-declared"))
            requeued.append(job_id)
        return requeued

    def fail(self, now: float, job_id: int, cause: str) -> None:
        """Close a REQUEUED job as FAILED (attempt budget exhausted)."""
        row = self.rows[job_id]
        self._transition(row, JobState.FAILED)
        row.owner = None
        row.failed_cause = cause
        row.completed_at = now
        self.failed += 1
        self._append(now, "fail", job_id,
                     ("attempts", str(row.attempts)), ("cause", cause))

    # -- the fenced write path ---------------------------------------------

    def apply_effect(self, now: float, job_id: int, token: int,
                     worker: int, value: str) -> str:
        """Attempt a fenced, idempotent side-effect write.

        Returns one of:

        ``"applied"``
            First write under the highest-ever-granted token: the
            effect is recorded and the job completes.
        ``"duplicate"``
            The effect already exists and this is a retransmit under
            the winning token — acknowledged, not re-applied.
        ``"stale"``
            The token is smaller than the current grant: a fenced-out
            leaseholder.  Rejected, recorded, counted.
        ``"closed"``
            The token is current but the job already closed (FAILED
            after exhausting attempts).  Rejected.

        Raises ``ValueError`` for a token larger than any grant — that
        is not a race, it is corruption.
        """
        row = self.rows[job_id]
        if token > row.fencing_token:
            raise ValueError(
                f"job {job_id}: write carries token {token} but only "
                f"{row.fencing_token} were ever granted")
        if row.effect is not None:
            if token == row.effect.token:
                self.rejections_duplicate += 1
                self._append(now, "reject-dup", job_id,
                             ("token", str(token)),
                             ("worker", str(worker)))
                return "duplicate"
            self.rejections_stale += 1
            self._append(now, "reject-stale", job_id,
                         ("token", str(token)),
                         ("current", str(row.fencing_token)),
                         ("worker", str(worker)))
            return "stale"
        if token < row.fencing_token:
            self.rejections_stale += 1
            self._append(now, "reject-stale", job_id,
                         ("token", str(token)),
                         ("current", str(row.fencing_token)),
                         ("worker", str(worker)))
            return "stale"
        if row.state in TERMINAL_STATES:
            self.rejections_closed += 1
            self._append(now, "reject-closed", job_id,
                         ("token", str(token)),
                         ("worker", str(worker)),
                         ("state", row.state.value))
            return "closed"
        self._transition(row, JobState.COMPLETED)
        row.effect = EffectRecord(job_id=job_id, token=token, worker=worker,
                                  value=value, applied_at=now)
        row.owner = None
        row.completed_at = now
        self.completed += 1
        self._append(now, "effect", job_id,
                     ("token", str(token)), ("worker", str(worker)),
                     ("value", value))
        return "applied"

    # -- queries -----------------------------------------------------------

    def pending(self) -> List[int]:
        """Grantable jobs in FIFO (re)queue order."""
        seen = set()
        out = []
        for job_id in self._queue:
            if job_id in seen:
                continue
            seen.add(job_id)
            if self.rows[job_id].state in (JobState.SUBMITTED,
                                           JobState.REQUEUED):
                out.append(job_id)
        return out

    def live_rows(self) -> List[JobRow]:
        """Rows currently LEASED or RUNNING, by job id (lease rebuild)."""
        return [self.rows[job_id] for job_id in sorted(self.rows)
                if self.rows[job_id].state in (JobState.LEASED,
                                               JobState.RUNNING)]

    def all_terminal(self) -> bool:
        """True when every known job has closed (and any exist)."""
        if not self.rows:
            return False
        return all(row.state in TERMINAL_STATES
                   for row in self.rows.values())

    @property
    def fencing_rejections(self) -> int:
        """Stale + duplicate + closed write rejections."""
        return (self.rejections_stale + self.rejections_duplicate
                + self.rejections_closed)

    # -- durability --------------------------------------------------------

    def snapshot(self) -> "JobLog":
        """Deep-copied checkpoint of the whole log (tests and vaults)."""
        return copy.deepcopy(self)

    def render(self) -> str:
        """The full log in canonical text form (one record per line,
        trailing newline when non-empty)."""
        if not self.records:
            return ""
        return "\n".join(record.line() for record in self.records) + "\n"

    def digest(self) -> str:
        """SHA-256 of the canonical rendering."""
        return hashlib.sha256(self.render().encode()).hexdigest()

    # -- invariant verification --------------------------------------------

    def check_invariants(self) -> List[str]:
        """Replay the record stream against the state machine and the
        fencing/idempotency rules; returns human-readable violations
        (empty means the history is provably at-most-once).

        The checker is deliberately independent of the materialized
        rows: it trusts only the append-only records, then cross-checks
        the rows at the end.
        """
        violations: List[str] = []

        def bad(record: LogRecord, why: str) -> None:
            violations.append(f"seq {record.seq} ({record.kind} "
                              f"job {record.job_id}): {why}")

        states: Dict[int, JobState] = {}
        granted: Dict[int, int] = {}
        effects: Dict[int, int] = {}
        effect_tokens: Dict[int, int] = {}
        identities: Dict[Tuple[str, str], int] = {}
        last_seq = 0
        last_time = 0.0

        for record in self.records:
            fields = dict(record.fields)
            job_id = record.job_id
            if record.seq <= last_seq:
                bad(record, f"seq not increasing (after {last_seq})")
            last_seq = record.seq
            if record.time < last_time:
                bad(record, f"time ran backwards (after {_t(last_time)})")
            last_time = record.time

            def move(new: JobState, rec: LogRecord = record,
                     job: int = job_id) -> None:
                old = states.get(job)
                if old is None:
                    bad(rec, "transition for unknown job")
                    return
                try:
                    check_transition(old, new)
                except ValueError as error:
                    bad(rec, str(error))
                states[job] = new

            if record.kind == "submit":
                identity = (fields["tenant"], fields["key"])
                if identity in identities:
                    bad(record, "duplicate submit not deduplicated")
                identities[identity] = job_id
                if job_id in states:
                    bad(record, "job id reused")
                states[job_id] = JobState.SUBMITTED
                granted[job_id] = 0
                effects[job_id] = 0
            elif record.kind == "dedup":
                identity = (fields["tenant"], fields["key"])
                if identities.get(identity) != job_id:
                    bad(record, "dedup does not point at the original job")
            elif record.kind == "grant":
                token = int(fields["token"])
                if token != granted.get(job_id, 0) + 1:
                    bad(record, f"token {token} is not monotonic "
                        f"(previous {granted.get(job_id, 0)})")
                granted[job_id] = token
                move(JobState.LEASED)
            elif record.kind == "start":
                if int(fields["token"]) != granted.get(job_id):
                    bad(record, "start under a non-current token")
                move(JobState.RUNNING)
            elif record.kind in ("expire", "requeue"):
                move(JobState.REQUEUED)
            elif record.kind == "fail":
                move(JobState.FAILED)
            elif record.kind == "effect":
                token = int(fields["token"])
                if token != granted.get(job_id):
                    bad(record, f"EFFECT ACCEPTED UNDER STALE TOKEN "
                        f"{token} (current {granted.get(job_id)})")
                if effects.get(job_id, 0) != 0:
                    bad(record, "SECOND EFFECT APPLIED (at-most-once "
                        "violated)")
                effects[job_id] = effects.get(job_id, 0) + 1
                effect_tokens[job_id] = token
                move(JobState.COMPLETED)
            elif record.kind == "reject-stale":
                # Every stale rejection must be justified: the rejected
                # token is strictly below the highest grant (the effect,
                # if any, was applied under that highest grant).
                token = int(fields["token"])
                if token >= granted.get(job_id, 0):
                    bad(record, f"token {token} rejected as stale but "
                        f"was current")
            elif record.kind == "reject-dup":
                if effects.get(job_id, 0) != 1:
                    bad(record, "duplicate rejection without an applied "
                        "effect")
                if int(fields["token"]) != effect_tokens.get(job_id):
                    bad(record, "duplicate rejection under a different "
                        "token than the effect")
            elif record.kind == "reject-closed":
                if states.get(job_id) not in TERMINAL_STATES:
                    bad(record, "closed rejection on a live job")
            elif record.kind in ("renew", "reject-renew", "reject-start"):
                pass  # informational; no state change
            else:
                bad(record, "unknown record kind")

        # Cross-check the materialized rows against the replay.
        for job_id in sorted(self.rows):
            row = self.rows[job_id]
            replayed = states.get(job_id)
            if replayed is not row.state:
                violations.append(
                    f"job {job_id}: row state {row.state.value} != "
                    f"replayed {replayed.value if replayed else '?'}")
            applied = effects.get(job_id, 0)
            if row.state is JobState.COMPLETED and applied != 1:
                violations.append(
                    f"job {job_id}: COMPLETED with {applied} effects")
            if row.state is not JobState.COMPLETED and applied != 0:
                violations.append(
                    f"job {job_id}: {applied} effects but state "
                    f"{row.state.value}")
            if (row.effect is not None
                    and row.effect.token != row.fencing_token):
                violations.append(
                    f"job {job_id}: effect token {row.effect.token} != "
                    f"final fencing token {row.fencing_token}")
        return violations
