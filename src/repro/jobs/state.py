"""Job lifecycle state machine and submission records.

The control plane's durable truth about each job is a tiny legal-
transition machine, mirrored on :mod:`repro.health.state`::

    SUBMITTED -> LEASED       supervisor granted a lease
    LEASED    -> RUNNING      worker's start report reached the log
    LEASED    -> COMPLETED    effect write beat the start report
    LEASED    -> REQUEUED     lease expired / owner declared dead
    RUNNING   -> COMPLETED    fenced effect write applied
    RUNNING   -> REQUEUED     lease expired / owner declared dead
    REQUEUED  -> LEASED       re-granted (fencing token bumps)
    REQUEUED  -> COMPLETED    late write under a *still-current* token
    REQUEUED  -> FAILED       attempt budget exhausted

``REQUEUED -> COMPLETED`` is deliberate: when a lease expires but no
re-grant has happened yet, the expired worker's token is still the
highest ever granted, so its late write is *not* stale — accepting it
preserves at-most-once semantics (nobody else was fenced in).  The
moment a re-grant bumps the token, that same write becomes stale and
is rejected.  ``COMPLETED`` and ``FAILED`` are terminal.

Illegal transitions raise: a supervisor that tries one has a bug, and
the campaign layer would rather crash deterministically than corrupt
the log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Tuple

__all__ = [
    "JobRequest",
    "JobState",
    "TERMINAL_STATES",
    "check_transition",
]


class JobState(enum.Enum):
    """Where a job sits in its lease-and-execute lifecycle."""

    SUBMITTED = "submitted"
    LEASED = "leased"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    REQUEUED = "requeued"


#: Legal transitions (see module docstring for the narrative).
_ALLOWED: Dict[JobState, FrozenSet[JobState]] = {
    JobState.SUBMITTED: frozenset({JobState.LEASED}),
    JobState.LEASED: frozenset(
        {JobState.RUNNING, JobState.COMPLETED, JobState.REQUEUED}),
    JobState.RUNNING: frozenset(
        {JobState.COMPLETED, JobState.REQUEUED}),
    JobState.REQUEUED: frozenset(
        {JobState.LEASED, JobState.COMPLETED, JobState.FAILED}),
    JobState.COMPLETED: frozenset(),
    JobState.FAILED: frozenset(),
}

#: States a job can never leave.
TERMINAL_STATES: FrozenSet[JobState] = frozenset(
    {JobState.COMPLETED, JobState.FAILED})


def check_transition(old: JobState, new: JobState) -> None:
    """Raise ``ValueError`` unless ``old -> new`` is a legal transition."""
    if new not in _ALLOWED[old]:
        raise ValueError(
            f"illegal job transition {old.value} -> {new.value}")


@dataclass(frozen=True)
class JobRequest:
    """One tenant's submission.

    ``key`` is the idempotency key: two submissions with the same
    ``(tenant, key)`` are the *same* job, and the log deduplicates the
    second no matter when it arrives.  ``payload`` is a tuple of
    ``(name, value)`` pairs (hashable stand-in for a dict) handed to the
    registered kernel; ``work_seconds`` is the virtual compute time the
    worker spends before producing the effect.
    """

    tenant: str
    key: str
    kernel: str = "digest"
    payload: Tuple[Tuple[str, Any], ...] = ()
    work_seconds: float = 1e-3
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if not self.key:
            raise ValueError("idempotency key must be non-empty")
        if self.work_seconds <= 0:
            raise ValueError("work_seconds must be positive")
        if self.submit_time < 0:
            raise ValueError("submit_time must be >= 0")

    @property
    def identity(self) -> Tuple[str, str]:
        """The dedup identity ``(tenant, key)``."""
        return (self.tenant, self.key)
