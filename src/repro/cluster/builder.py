"""Cluster designers: size a machine for a year, a budget, or a peak goal.

These are the functions behind the "trans-Petaflops" experiments: given a
roadmap scenario and a year, what does $X buy, and when does a fixed budget
first buy a petaflops?
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cluster.cost import CostModel
from repro.cluster.packaging import RackConfig, pack_cluster
from repro.cluster.spec import ClusterSpec
from repro.network.technologies import (
    InterconnectTechnology,
    available_interconnects,
    get_interconnect,
)
from repro.nodes.catalog import make_node
from repro.tech.roadmap import TechnologyRoadmap

__all__ = ["design_cluster", "design_to_budget", "design_to_peak"]


def _resolve_interconnect(
        interconnect: Union[str, InterconnectTechnology, None],
        year: float) -> InterconnectTechnology:
    if isinstance(interconnect, InterconnectTechnology):
        return interconnect
    if isinstance(interconnect, str):
        return get_interconnect(interconnect)
    # Default: the best (highest bandwidth) technology purchasable that year.
    candidates = available_interconnects(year)
    if not candidates:
        raise ValueError(f"no interconnect available in {year:g}")
    return max(candidates, key=lambda t: t.loggp.bandwidth)


def design_cluster(name: str, roadmap: TechnologyRoadmap, year: float,
                   node_count: int, architecture: str = "conventional",
                   interconnect: Union[str, InterconnectTechnology, None] = None,
                   ) -> ClusterSpec:
    """A cluster of ``node_count`` nodes of ``architecture`` at ``year``."""
    node = make_node(architecture, roadmap, year)
    return ClusterSpec(
        name=name,
        node=node,
        node_count=node_count,
        interconnect=_resolve_interconnect(interconnect, year),
        year=year,
    )


def design_to_budget(budget_dollars: float, roadmap: TechnologyRoadmap,
                     year: float, architecture: str = "conventional",
                     interconnect: Union[str, InterconnectTechnology, None] = None,
                     cost_model: CostModel = CostModel(),
                     rack: RackConfig = RackConfig(),
                     name: Optional[str] = None) -> ClusterSpec:
    """The largest cluster ``budget_dollars`` buys at ``year``.

    Solved by bisection on node count against the full cost model (which
    is monotone in node count), so network/rack/integration overheads are
    respected exactly rather than by a rule of thumb.
    """
    if budget_dollars <= 0:
        raise ValueError("budget must be positive")
    technology = _resolve_interconnect(interconnect, year)

    def total_cost(count: int) -> float:
        spec = design_cluster("probe", roadmap, year, count, architecture,
                              technology)
        return cost_model.purchase(spec, pack_cluster(spec, rack)).total_dollars

    if total_cost(1) > budget_dollars:
        raise ValueError(
            f"budget ${budget_dollars:,.0f} does not cover even one "
            f"{architecture} node plus infrastructure in {year:g}"
        )
    low, high = 1, 2
    while total_cost(high) <= budget_dollars:
        low, high = high, high * 2
    while high - low > 1:
        mid = (low + high) // 2
        if total_cost(mid) <= budget_dollars:
            low = mid
        else:
            high = mid
    return design_cluster(
        name or f"{architecture}-{year:g}-${budget_dollars:,.0f}",
        roadmap, year, low, architecture, technology,
    )


def design_to_peak(target_flops: float, roadmap: TechnologyRoadmap,
                   year: float, architecture: str = "conventional",
                   interconnect: Union[str, InterconnectTechnology, None] = None,
                   name: Optional[str] = None) -> ClusterSpec:
    """The smallest cluster reaching ``target_flops`` peak at ``year``."""
    if target_flops <= 0:
        raise ValueError("target peak must be positive")
    node = make_node(architecture, roadmap, year)
    count = max(1, -(-int(target_flops) // int(node.peak_flops))
                if node.peak_flops >= 1 else 1)
    # Ceil division above truncates both operands; correct any off-by-one.
    while node.peak_flops * count < target_flops:
        count += 1
    while count > 1 and node.peak_flops * (count - 1) >= target_flops:
        count -= 1
    return ClusterSpec(
        name=name or f"{architecture}-{year:g}-peak",
        node=node,
        node_count=count,
        interconnect=_resolve_interconnect(interconnect, year),
        year=year,
    )
