"""Cluster economics: purchase cost, TCO, and the integrated-MPP premium.

The founding premise of Beowulf-class computing — and the keynote's
baseline assumption — is that commodity clusters win on price/performance
against integrated (MPP/vector) systems.  :data:`MPP_PREMIUM_FACTOR`
expresses the premium a contemporaneous integrated system carried per
delivered FLOPS (conventional wisdom put it between 3x and 10x; we use 5x
as the central value and benches sweep it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.packaging import Packaging
from repro.cluster.power import PowerModel
from repro.cluster.spec import ClusterSpec

__all__ = ["CostModel", "CostBreakdown", "MPP_PREMIUM_FACTOR"]

#: $/FLOPS multiplier of an integrated MPP over the commodity cluster.
MPP_PREMIUM_FACTOR = 5.0


@dataclass(frozen=True)
class CostBreakdown:
    """Where the dollars go at purchase time."""

    nodes_dollars: float
    network_dollars: float
    racks_dollars: float
    integration_dollars: float

    @property
    def total_dollars(self) -> float:
        """Sum of every purchase line item."""
        return (self.nodes_dollars + self.network_dollars
                + self.racks_dollars + self.integration_dollars)


@dataclass(frozen=True)
class CostModel:
    """Pricing parameters."""

    #: Assembly/burn-in/installation as a fraction of hardware cost.
    integration_fraction: float = 0.10
    #: Electricity price, dollars per kWh (2002 US industrial average).
    dollars_per_kwh: float = 0.05

    def __post_init__(self) -> None:
        if self.integration_fraction < 0:
            raise ValueError("integration fraction must be non-negative")
        if self.dollars_per_kwh <= 0:
            raise ValueError("electricity price must be positive")

    def purchase(self, spec: ClusterSpec, packaging: Packaging) -> CostBreakdown:
        """Capital cost accounting."""
        nodes = spec.node.cost_dollars * spec.node_count
        network = spec.interconnect.cost_per_port * spec.node_count
        racks = packaging.rack_cost
        hardware = nodes + network + racks
        return CostBreakdown(
            nodes_dollars=nodes,
            network_dollars=network,
            racks_dollars=racks,
            integration_dollars=hardware * self.integration_fraction,
        )

    def annual_power_cost(self, spec: ClusterSpec, packaging: Packaging,
                          power_model: PowerModel = PowerModel()) -> float:
        """Dollars per year to feed and cool the machine."""
        joules = power_model.annual_energy_joules(spec, packaging)
        kwh = joules / 3.6e6
        return kwh * self.dollars_per_kwh

    def tco(self, spec: ClusterSpec, packaging: Packaging, years: float,
            power_model: PowerModel = PowerModel()) -> float:
        """Total cost of ownership: purchase + ``years`` of power.

        Staffing and floor-space rent are excluded (they dominate neither
        side of the commodity-vs-MPP comparison the model serves).
        """
        if years < 0:
            raise ValueError("years must be non-negative")
        return (self.purchase(spec, packaging).total_dollars
                + years * self.annual_power_cost(spec, packaging, power_model))

    def dollars_per_flops(self, spec: ClusterSpec,
                          packaging: Packaging) -> float:
        """Purchase price per peak FLOPS — the headline cost curve."""
        return self.purchase(spec, packaging).total_dollars / spec.peak_flops

    def mpp_dollars_per_flops(self, spec: ClusterSpec, packaging: Packaging,
                              premium: float = MPP_PREMIUM_FACTOR) -> float:
        """What an integrated MPP of the same peak would cost per FLOPS."""
        if premium <= 0:
            raise ValueError("premium must be positive")
        return self.dollars_per_flops(spec, packaging) * premium
