"""Fleet evolution: rolling upgrades vs forklift replacement.

The keynote closes with "more bizarre possibilities driven by other
market and product trends"; the one that defined real machine rooms is
*continuous* procurement: commodity nodes are cheap enough to buy every
year, so a cluster becomes a rolling fleet of cohorts rather than a
monolith replaced wholesale.  This module models an operating budget
spent either way:

* **rolling** — every year, retire the cohort older than ``lifetime``
  years and spend the annual budget on current-year nodes;
* **forklift** — bank the budget, replace the entire machine every
  ``interval`` years with current-year nodes.

Outputs a year-by-year fleet timeline (peak, power, cohort count), from
which bench E17 extracts the trade: rolling buys a higher time-averaged
peak and never goes dark, at the price of a permanently heterogeneous
fleet — the scheduling/software complication the keynote's productivity
thread predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.cluster.cost import CostModel
from repro.cluster.packaging import RackConfig, pack_cluster
from repro.cluster.spec import ClusterSpec
from repro.nodes.base import NodeSpec
from repro.nodes.catalog import make_node
from repro.network.technologies import available_interconnects
from repro.tech.roadmap import TechnologyRoadmap

__all__ = ["Cohort", "FleetYear", "simulate_fleet", "time_averaged_peak"]


@dataclass(frozen=True)
class Cohort:
    """Nodes bought together in one year."""

    purchase_year: float
    node_count: int
    node: NodeSpec

    @property
    def peak_flops(self) -> float:
        """Aggregate peak FLOPS of the cohort's nodes."""
        return self.node_count * self.node.peak_flops

    @property
    def power_watts(self) -> float:
        """Aggregate power draw of the cohort's nodes."""
        return self.node_count * self.node.power_watts


@dataclass
class FleetYear:
    """The fleet's state at one year's end."""

    year: float
    cohorts: List[Cohort] = field(default_factory=list)
    spent_dollars: float = 0.0

    @property
    def peak_flops(self) -> float:
        """Fleet-wide peak FLOPS, summed over cohorts."""
        return sum(c.peak_flops for c in self.cohorts)

    @property
    def power_watts(self) -> float:
        """Fleet-wide power draw, summed over cohorts."""
        return sum(c.power_watts for c in self.cohorts)

    @property
    def node_count(self) -> int:
        """Fleet-wide node count, summed over cohorts."""
        return sum(c.node_count for c in self.cohorts)

    @property
    def cohort_count(self) -> int:
        """Hardware generations in service — the heterogeneity the
        system software must now manage."""
        return len(self.cohorts)


def _nodes_for_budget(budget: float, roadmap: TechnologyRoadmap,
                      year: float, architecture: str,
                      cost_model: CostModel) -> int:
    """Largest cohort the budget buys (node + network port + overheads),
    using the year's cheapest adequate interconnect for the port price."""
    technologies = available_interconnects(year)
    port = min(t.cost_per_port for t in technologies)
    node = make_node(architecture, roadmap, year)
    per_node = (node.cost_dollars + port) \
        * (1.0 + cost_model.integration_fraction)
    return max(0, int(budget // per_node))


def simulate_fleet(roadmap: TechnologyRoadmap,
                   start_year: float, end_year: float,
                   annual_budget: float,
                   strategy: str = "rolling",
                   architecture: str = "conventional",
                   lifetime_years: float = 4.0,
                   forklift_interval_years: float = 3.0,
                   cost_model: CostModel = CostModel()) -> List[FleetYear]:
    """Year-by-year fleet evolution under a procurement strategy.

    Returns one :class:`FleetYear` per calendar year in
    ``[start_year, end_year]``.  Retirement happens before purchase in a
    given year; the forklift strategy's banked budget earns no interest
    (constant-dollar accounting, consistent with the roadmap).
    """
    if annual_budget <= 0:
        raise ValueError("annual budget must be positive")
    if end_year <= start_year:
        raise ValueError("end year must follow start year")
    if strategy not in ("rolling", "forklift"):
        raise ValueError(
            f"unknown strategy {strategy!r}; choose 'rolling' or 'forklift'"
        )
    if lifetime_years <= 0 or forklift_interval_years <= 0:
        raise ValueError("lifetime and interval must be positive")

    timeline: List[FleetYear] = []
    cohorts: List[Cohort] = []
    banked = 0.0
    years_since_forklift = forklift_interval_years  # buy immediately

    year = start_year
    while year <= end_year + 1e-9:
        spent = 0.0
        if strategy == "rolling":
            cohorts = [c for c in cohorts
                       if year - c.purchase_year < lifetime_years - 1e-9]
            count = _nodes_for_budget(annual_budget, roadmap, year,
                                      architecture, cost_model)
            if count > 0:
                cohorts.append(Cohort(year, count,
                                      make_node(architecture, roadmap,
                                                year)))
                spent = annual_budget
        else:  # forklift
            banked += annual_budget
            years_since_forklift += 1.0
            if years_since_forklift >= forklift_interval_years:
                count = _nodes_for_budget(banked, roadmap, year,
                                          architecture, cost_model)
                if count > 0:
                    cohorts = [Cohort(year, count,
                                      make_node(architecture, roadmap,
                                                year))]
                    spent = banked
                    banked = 0.0
                    years_since_forklift = 0.0
        timeline.append(FleetYear(year=year, cohorts=list(cohorts),
                                  spent_dollars=spent))
        year += 1.0
    return timeline


def time_averaged_peak(timeline: List[FleetYear]) -> float:
    """Mean fleet peak over the span (the capability the users lived)."""
    if not timeline:
        raise ValueError("empty timeline")
    return float(np.mean([fy.peak_flops for fy in timeline]))
