"""Physical packaging: racks and floor space.

Blade density is one of the keynote's named "changes anticipated in
hardware architecture"; this model is where density claims become numbers.
A rack offers 42U minus a fixed overhead for switches, PDUs and cable
management; nodes consume their (possibly fractional) ``rack_units``; floor
space charges the rack footprint plus service clearance — the standard
datacenter-planning accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec

__all__ = ["RackConfig", "Packaging", "pack_cluster"]


@dataclass(frozen=True)
class RackConfig:
    """Rack geometry and per-rack overheads."""

    #: Usable height of a standard rack.
    total_units: float = 42.0
    #: Units lost per rack to switches, PDU, patch panels.
    overhead_units: float = 4.0
    #: Footprint including service clearance front+rear (m^2).
    floor_area_m2: float = 1.4
    #: Purchase cost of rack + PDU + cabling (dollars).
    cost_dollars: float = 2500.0
    #: Maximum power one rack's distribution can feed (watts); 2002-era
    #: datacenters provisioned roughly 8-12 kW per rack.
    power_limit_watts: float = 10_000.0

    def __post_init__(self) -> None:
        if self.overhead_units >= self.total_units:
            raise ValueError("rack overhead exceeds rack height")
        if min(self.total_units, self.floor_area_m2, self.power_limit_watts) <= 0:
            raise ValueError("rack dimensions must be positive")

    @property
    def usable_units(self) -> float:
        """Rack units left for nodes after infrastructure overhead."""
        return self.total_units - self.overhead_units


@dataclass(frozen=True)
class Packaging:
    """Result of packing a cluster into racks."""

    racks: int
    nodes_per_rack: int
    floor_area_m2: float
    rack_config: RackConfig
    #: True when the binding constraint was power, not space — the
    #: situation blade density creates and the talk's power curve predicts.
    power_limited: bool

    @property
    def rack_cost(self) -> float:
        """Dollars spent on the racks themselves."""
        return self.racks * self.rack_config.cost_dollars


def pack_cluster(spec: ClusterSpec,
                 rack: RackConfig = RackConfig()) -> Packaging:
    """Pack ``spec`` into racks under both space and power constraints.

    Nodes per rack is the minimum of what fits in the usable units and what
    the rack's power feed supports; the report records which constraint
    bound, because "you run out of power before you run out of U" is
    exactly the blade-era phenomenon bench E6 demonstrates.
    """
    by_space = int(rack.usable_units // spec.node.rack_units)
    by_power = int(rack.power_limit_watts // spec.node.power_watts)
    nodes_per_rack = max(1, min(by_space, by_power))
    racks = math.ceil(spec.node_count / nodes_per_rack)
    return Packaging(
        racks=racks,
        nodes_per_rack=nodes_per_rack,
        floor_area_m2=racks * rack.floor_area_m2,
        rack_config=rack,
        power_limited=by_power < by_space,
    )
