"""The cluster description record."""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.technologies import InterconnectTechnology
from repro.nodes.base import NodeSpec

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """A whole machine: ``node_count`` copies of ``node`` joined by
    ``interconnect``.

    This record is intentionally *logical* — physical packaging (racks),
    power, and cost are computed by the corresponding models so their
    assumptions stay in one place each.
    """

    name: str
    node: NodeSpec
    node_count: int
    interconnect: InterconnectTechnology
    year: float

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {self.node_count}")
        if self.interconnect.available_year > self.year + 1e-9:
            raise ValueError(
                f"{self.interconnect.name} is not available in {self.year:g} "
                f"(ships {self.interconnect.available_year:g})"
            )

    # -- aggregate capability ---------------------------------------------

    @property
    def peak_flops(self) -> float:
        """System peak (FLOPS)."""
        return self.node.peak_flops * self.node_count

    @property
    def memory_bytes(self) -> float:
        """Aggregate DRAM (bytes)."""
        return self.node.memory_bytes * self.node_count

    @property
    def disk_bytes(self) -> float:
        """Aggregate local disk (bytes)."""
        return self.node.disk_bytes * self.node_count

    @property
    def total_cores(self) -> int:
        """Cores across the whole cluster."""
        return self.node.total_cores * self.node_count

    def __str__(self) -> str:
        return (f"{self.name}: {self.node_count} x {self.node.architecture} "
                f"({self.year:g}) over {self.interconnect.name}")
