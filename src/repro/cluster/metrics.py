"""One-call summary of a cluster's figures of merit."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cost import CostModel
from repro.cluster.packaging import Packaging, RackConfig, pack_cluster
from repro.cluster.power import PowerModel
from repro.cluster.spec import ClusterSpec
from repro.obs import MetricsRegistry
from repro.units import GIGA, KILO

__all__ = ["ClusterMetrics", "cluster_metrics"]


@dataclass(frozen=True)
class ClusterMetrics:
    """Everything a design-space table prints about one machine."""

    spec: ClusterSpec
    packaging: Packaging
    peak_flops: float
    memory_bytes: float
    total_watts: float
    purchase_dollars: float
    dollars_per_flops: float
    watts_per_flops: float
    flops_per_m2: float
    bisection_bytes_per_second: float

    @property
    def gflops_per_kw(self) -> float:
        """Popular efficiency figure: GFLOPS per kilowatt of facility load."""
        return (self.peak_flops / GIGA) / (self.total_watts / KILO)

    def publish(self, registry: MetricsRegistry) -> None:
        """Copy every figure into an observability registry as gauges
        under ``cluster.*``, labelled by cluster name."""
        name = self.spec.name
        gauges = {
            "peak_flops": self.peak_flops,
            "memory_bytes": self.memory_bytes,
            "total_watts": self.total_watts,
            "purchase_dollars": self.purchase_dollars,
            "dollars_per_flops": self.dollars_per_flops,
            "watts_per_flops": self.watts_per_flops,
            "flops_per_m2": self.flops_per_m2,
            "bisection_bytes_per_second": self.bisection_bytes_per_second,
            "gflops_per_kw": self.gflops_per_kw,
        }
        for key, value in gauges.items():
            registry.gauge(f"cluster.{key}", cluster=name).set(value)


def cluster_metrics(spec: ClusterSpec,
                    rack: RackConfig = RackConfig(),
                    power_model: PowerModel = PowerModel(),
                    cost_model: CostModel = CostModel()) -> ClusterMetrics:
    """Pack, power, and price ``spec``; return the combined summary.

    Bisection bandwidth assumes a full-bisection fabric (``hosts/2`` link
    pairs at the technology's asymptotic rate) — the upper bound an actual
    topology's ``bisection_links()`` refines when one is chosen.
    """
    packaging = pack_cluster(spec, rack)
    power = power_model.breakdown(spec, packaging)
    cost = cost_model.purchase(spec, packaging)
    link_rate = spec.interconnect.loggp.bandwidth
    return ClusterMetrics(
        spec=spec,
        packaging=packaging,
        peak_flops=spec.peak_flops,
        memory_bytes=spec.memory_bytes,
        total_watts=power.total_watts,
        purchase_dollars=cost.total_dollars,
        dollars_per_flops=cost.total_dollars / spec.peak_flops,
        watts_per_flops=power.total_watts / spec.peak_flops,
        flops_per_m2=spec.peak_flops / packaging.floor_area_m2,
        bisection_bytes_per_second=(spec.node_count // 2) * link_rate,
    )
