"""System power: IT load plus cooling/distribution overhead.

``watts = nodes + network ports + per-rack overhead``, then multiplied by
the facility's PUE (power usage effectiveness) — the datacenter industry's
standard way to charge cooling.  2002 machine rooms ran PUE ≈ 2.0; the
model keeps it a parameter because the power curve's slope is one of the
keynote's five headline curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.packaging import Packaging
from repro.cluster.spec import ClusterSpec

__all__ = ["PowerModel", "PowerBreakdown"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Where the watts go."""

    nodes_watts: float
    network_watts: float
    rack_overhead_watts: float
    cooling_watts: float

    @property
    def it_watts(self) -> float:
        """IT load (everything except cooling/distribution)."""
        return self.nodes_watts + self.network_watts + self.rack_overhead_watts

    @property
    def total_watts(self) -> float:
        """IT plus cooling load."""
        return self.it_watts + self.cooling_watts


@dataclass(frozen=True)
class PowerModel:
    """Facility parameters."""

    #: Power usage effectiveness: total facility / IT load.
    pue: float = 2.0
    #: Fixed draw per rack (fans, PDU losses, management).
    rack_overhead_watts: float = 200.0

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise ValueError("PUE cannot be below 1.0")
        if self.rack_overhead_watts < 0:
            raise ValueError("rack overhead must be non-negative")

    def breakdown(self, spec: ClusterSpec,
                  packaging: Packaging) -> PowerBreakdown:
        """Full power accounting for a packed cluster."""
        nodes = spec.node.power_watts * spec.node_count
        network = spec.interconnect.power_per_port * spec.node_count
        racks = self.rack_overhead_watts * packaging.racks
        it_load = nodes + network + racks
        return PowerBreakdown(
            nodes_watts=nodes,
            network_watts=network,
            rack_overhead_watts=racks,
            cooling_watts=it_load * (self.pue - 1.0),
        )

    def annual_energy_joules(self, spec: ClusterSpec, packaging: Packaging,
                             utilization: float = 1.0) -> float:
        """Energy per year at a duty cycle (idle power assumed equal to
        load power, the honest assumption for 2002 hardware)."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        del utilization  # 2002 nodes idle hot; duty cycle does not help
        return self.breakdown(spec, packaging).total_watts * 365.25 * 86400.0
