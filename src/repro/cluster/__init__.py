"""Cluster assembly: from node + interconnect specs to a whole machine.

Turns the per-node and per-port models into system-level answers — peak
FLOPS, racks and floor space, kilowatts and cooling, dollars and TCO —
the units in which the keynote's "performance, capacity, power, size, and
cost curves" are actually denominated.

Public surface
--------------
:class:`ClusterSpec`
    The machine description (nodes × node spec × network × packaging).
:func:`design_cluster` / :func:`design_to_budget` / :func:`design_to_peak`
    Designers that size a machine for a year, budget, or performance goal.
:class:`RackConfig`, :func:`pack_cluster`
    Physical packaging (racks, floor space).
:class:`PowerModel`, :class:`CostModel`
    Operating draw (with PUE) and purchase + TCO economics.
:func:`cluster_metrics`
    One-call summary of every figure of merit.
"""

from repro.cluster.spec import ClusterSpec
from repro.cluster.packaging import RackConfig, Packaging, pack_cluster
from repro.cluster.power import PowerBreakdown, PowerModel
from repro.cluster.cost import CostBreakdown, CostModel, MPP_PREMIUM_FACTOR
from repro.cluster.metrics import ClusterMetrics, cluster_metrics
from repro.cluster.builder import design_cluster, design_to_budget, design_to_peak
from repro.cluster.upgrade import Cohort, FleetYear, simulate_fleet, time_averaged_peak

__all__ = [
    "ClusterMetrics",
    "Cohort",
    "FleetYear",
    "ClusterSpec",
    "CostBreakdown",
    "CostModel",
    "MPP_PREMIUM_FACTOR",
    "Packaging",
    "PowerBreakdown",
    "PowerModel",
    "RackConfig",
    "cluster_metrics",
    "design_cluster",
    "design_to_budget",
    "design_to_peak",
    "pack_cluster",
    "simulate_fleet",
    "time_averaged_peak",
]
