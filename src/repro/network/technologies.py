"""Catalog of interconnect technologies, 1995–2007.

Parameter values are MPI-level numbers from contemporaneous measurements
and vendor specifications (data rate after 8b/10b coding where applicable;
short-message latencies as reported for the usual MPI stacks of the day):

===================  ==========  =========  ==============================
technology           bandwidth   latency    source flavour
===================  ==========  =========  ==============================
fast_ethernet        12.5 MB/s   ~70 µs     100BASE-T + TCP/IP
gigabit_ethernet     125 MB/s    ~30 µs     1000BASE-T + TCP/IP
myrinet_2000         250 MB/s    ~6.5 µs    GM user-level messaging
quadrics_elan3       340 MB/s    ~4.5 µs    QsNet
infiniband_1x        250 MB/s    ~6 µs      2.5 Gb/s signal, 2 Gb/s data
infiniband_4x        1 GB/s      ~5.5 µs    10 Gb/s signal, 8 Gb/s data
infiniband_12x       3 GB/s      ~5 µs      30 Gb/s signal, 24 Gb/s data
optical_circuit      5 GB/s      ~1.5 µs    circuit-switched optics; pays
                                            a per-circuit setup time
===================  ==========  =========  ==============================

Each entry also carries per-port cost and power and a switch hop latency,
so the cluster assembler can price networks and the fabric can charge
multi-hop routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.network.loggp import LogGPParams
from repro.units import GIGA

__all__ = [
    "InterconnectTechnology",
    "INTERCONNECTS",
    "get_interconnect",
    "available_interconnects",
]


@dataclass(frozen=True)
class InterconnectTechnology:
    """One row of the interconnect catalog."""

    name: str
    loggp: LogGPParams
    #: First calendar year the part is purchasable as a commodity.
    available_year: float
    #: Cost of one host port (NIC + switch-port share + cable), dollars.
    cost_per_port: float
    #: Power of one host port (NIC + switch-port share), watts.
    power_per_port: float
    #: Extra latency per switch traversal beyond the first (seconds).
    hop_latency: float
    #: Circuit-switched optics pay this once per (src, dst) circuit.
    circuit_setup_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.cost_per_port < 0 or self.power_per_port < 0:
            raise ValueError("port cost/power must be non-negative")
        if self.hop_latency < 0 or self.circuit_setup_seconds < 0:
            raise ValueError("latencies must be non-negative")

    @property
    def is_circuit_switched(self) -> bool:
        """True when connections pay a circuit setup cost."""
        return self.circuit_setup_seconds > 0


def _tech(name: str, bandwidth: float, latency: float, overhead: float,
          year: float, cost: float, power: float, hop: float,
          setup: float = 0.0) -> InterconnectTechnology:
    return InterconnectTechnology(
        name=name,
        loggp=LogGPParams(latency=latency, overhead=overhead,
                          gap=overhead * 2.0, gap_per_byte=1.0 / bandwidth),
        available_year=year,
        cost_per_port=cost,
        power_per_port=power,
        hop_latency=hop,
        circuit_setup_seconds=setup,
    )


INTERCONNECTS: Dict[str, InterconnectTechnology] = {
    tech.name: tech
    for tech in [
        _tech("fast_ethernet",    12.5e6, 55e-6, 8e-6, 1995.0,   50.0, 4.0, 5e-6),
        _tech("gigabit_ethernet", 125e6,  22e-6, 5e-6, 1999.0,  150.0, 6.0, 3e-6),
        _tech("myrinet_2000",     250e6,  4.0e-6, 1.2e-6, 2000.0, 1200.0, 8.0, 0.4e-6),
        _tech("quadrics_elan3",   340e6,  2.7e-6, 0.9e-6, 2001.0, 2500.0, 10.0, 0.3e-6),
        _tech("infiniband_1x",    250e6,  4.0e-6, 1.0e-6, 2002.0,  800.0, 8.0, 0.3e-6),
        _tech("infiniband_4x",    GIGA,  3.5e-6, 1.0e-6, 2003.0, 1000.0, 10.0, 0.25e-6),
        _tech("infiniband_12x",   3.0e9,  3.0e-6, 1.0e-6, 2005.0, 1800.0, 14.0, 0.2e-6),
        _tech("optical_circuit",  5.0e9,  1.0e-6, 0.25e-6, 2007.0, 3000.0, 12.0,
              0.05e-6, setup=30e-6),
    ]
}


def get_interconnect(name: str) -> InterconnectTechnology:
    """Catalog lookup; ``KeyError`` lists valid names."""
    try:
        return INTERCONNECTS[name]
    except KeyError:
        raise KeyError(
            f"unknown interconnect {name!r}; choose from {sorted(INTERCONNECTS)}"
        ) from None


def available_interconnects(year: float) -> List[InterconnectTechnology]:
    """All technologies purchasable at ``year``, cheapest port first."""
    hits = [t for t in INTERCONNECTS.values() if t.available_year <= year]
    return sorted(hits, key=lambda t: t.cost_per_port)
