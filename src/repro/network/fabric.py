"""The simulated transport: moves bytes between hosts in virtual time.

A :class:`Fabric` binds a topology to an interconnect technology inside a
simulator.  :meth:`Fabric.transfer` is a *process body* (generator): the
messaging layer delegates to it with ``yield from``.

Cost model for one ``n``-byte transfer along a ``h``-hop route::

    [circuit setup, first use of (src,dst) if circuit-switched]
    o_send                                  (sender CPU)
    serialization: max(g, n * G)            (holding the route's links)
    L + (h - 1) * hop_latency               (wire + switch traversal)
    o_recv                                  (receiver CPU)

Contention: while serializing, the transfer holds a capacity-1
:class:`~repro.sim.resources.Resource` per link on its route plus the
sender's NIC injection port.  Resources are acquired in canonical global
order, which makes concurrent transfers deadlock-free at the price of a
slightly pessimistic (circuit-like) contention estimate — an explicit,
ablatable modelling choice (bench E13 runs it both ways via
``contention=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Generator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.network.technologies import InterconnectTechnology
from repro.network.topology import (
    Edge,
    Node,
    RouteCache,
    Topology,
    canonical_link,
)
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = [
    "Fabric",
    "TransferRecord",
    "TransferOutcome",
    "FabricFaultPlan",
    "DownWindow",
    "NetworkUnreachable",
    "TransferDropped",
]

#: Local (intra-node) copy bandwidth used for rank-to-self transfers.
_LOCAL_COPY_BANDWIDTH = 10e9


class NetworkUnreachable(RuntimeError):
    """No route between two hosts survives the currently-down elements."""


class TransferDropped(RuntimeError):
    """A transfer was lost in flight (down window hit it, or random drop)."""


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer, for traffic analysis in tests/benchmarks."""

    src: int
    dst: int
    nbytes: int
    start: float
    end: float
    hops: int

    @property
    def duration(self) -> float:
        """Transfer length in virtual seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class TransferOutcome:
    """Result of a fault-aware transfer that reached the destination."""

    end: float
    hops: int
    corrupted: bool
    rerouted: bool


@dataclass(frozen=True)
class DownWindow:
    """Half-open outage interval ``[start, end)`` in virtual seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start or self.start < 0:
            raise ValueError(
                f"down window must satisfy 0 <= start < end, got "
                f"[{self.start}, {self.end})"
            )

    def active_at(self, t: float) -> bool:
        """True while the element is out of service at instant ``t``."""
        return self.start <= t < self.end

    def overlaps(self, t0: float, t1: float) -> bool:
        """True if the outage intersects the half-open span ``[t0, t1)``."""
        return self.start < t1 and t0 < self.end


class FabricFaultPlan:
    """Declarative schedule of fabric faults, injected into a Fabric.

    Four fault classes, all reproducible:

    * **link down windows** — both directions of a physical link are out
      of service for an interval;
    * **one-way link windows** — a single *direction* of a link silently
      blackholes traffic (asymmetric / grey failure: the healthy reverse
      direction keeps flowing, routing never notices, messages just
      vanish — the classic bad-transceiver failure that makes A suspect
      B while B still hears A);
    * **switch/node down windows** — a graph node (usually a switch) is
      out, taking all its links with it;
    * **random loss** — each delivered transfer is independently dropped
      with ``drop_probability`` or bit-corrupted with
      ``corrupt_probability``, using draws from ``rng`` (pass a generator
      from a named :class:`~repro.sim.rng.RandomStreams` stream so
      campaigns stay bit-reproducible).

    Counters (``drops``, ``corruptions``, ``reroutes``, ``unreachable``)
    accumulate across the plan's lifetime for campaign reports.
    """

    def __init__(self, *, drop_probability: float = 0.0,
                 corrupt_probability: float = 0.0,
                 rng: Optional[Any] = None) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(f"drop_probability {drop_probability} not in "
                             "[0, 1]")
        if not 0.0 <= corrupt_probability <= 1.0:
            raise ValueError(f"corrupt_probability {corrupt_probability} "
                             "not in [0, 1]")
        if drop_probability + corrupt_probability > 1.0:
            raise ValueError("drop + corrupt probabilities exceed 1")
        if (drop_probability > 0 or corrupt_probability > 0) and rng is None:
            raise ValueError(
                "random drop/corrupt faults need an rng (use a named "
                "RandomStreams stream for reproducibility)"
            )
        self.drop_probability = drop_probability
        self.corrupt_probability = corrupt_probability
        self.rng = rng
        self._link_windows: List[Tuple[Edge, DownWindow]] = []
        self._node_windows: List[Tuple[Node, DownWindow]] = []
        self._directed_windows: List[Tuple[Edge, DownWindow]] = []
        self.drops = 0
        self.corruptions = 0
        self.reroutes = 0
        self.unreachable = 0
        self.blackholes = 0

    # -- schedule construction -------------------------------------------

    def link_down(self, a: Node, b: Node, start: float,
                  end: float) -> "FabricFaultPlan":
        """Schedule the link between graph nodes ``a`` and ``b`` down for
        ``[start, end)``; returns self for chaining."""
        self._link_windows.append(
            (canonical_link(a, b), DownWindow(start, end)))
        return self

    def link_down_oneway(self, src: Node, dst: Node, start: float,
                         end: float) -> "FabricFaultPlan":
        """Schedule the ``src -> dst`` *direction* of a link to silently
        blackhole traffic for ``[start, end)``; the reverse direction
        keeps working.  The edge is oriented — no canonicalization —
        and routing never re-routes around it (grey failure: nothing
        reports the loss, transfers crossing it are simply dropped).
        Returns self for chaining."""
        self._directed_windows.append(
            ((src, dst), DownWindow(start, end)))
        return self

    def node_down(self, node: Node, start: float,
                  end: float) -> "FabricFaultPlan":
        """Schedule a switch (or host NIC) node down for ``[start, end)``."""
        self._node_windows.append((node, DownWindow(start, end)))
        return self

    @property
    def has_random_faults(self) -> bool:
        """True when drop or corruption probabilities are active."""
        return self.drop_probability > 0 or self.corrupt_probability > 0

    @property
    def has_directed_faults(self) -> bool:
        """True when any one-way blackhole window is scheduled."""
        return bool(self._directed_windows)

    @property
    def link_outages(self) -> int:
        """Scheduled link down windows (for campaign accounting)."""
        return len(self._link_windows)

    # -- queries -----------------------------------------------------------

    def down_links_at(self, t: float) -> FrozenSet[Edge]:
        """Canonical links out of service at instant ``t``."""
        return frozenset(link for link, w in self._link_windows
                         if w.active_at(t))

    def down_nodes_at(self, t: float) -> FrozenSet[Node]:
        """Graph nodes out of service at instant ``t``."""
        return frozenset(node for node, w in self._node_windows
                         if w.active_at(t))

    def route_hit_during(self, links: Set[Edge], nodes: Set[Node],
                         t0: float, t1: float) -> bool:
        """Did any of the given elements go down within ``[t0, t1)``?

        Used for mid-flight loss: a message serializing onto a link when
        the link dies is gone.
        """
        for link, window in self._link_windows:
            if link in links and window.overlaps(t0, t1):
                return True
        for node, window in self._node_windows:
            if node in nodes and window.overlaps(t0, t1):
                return True
        return False

    def directed_hit_during(self, hops: List[Edge], t0: float,
                            t1: float) -> bool:
        """Did a one-way blackhole cover any oriented route hop while
        the message crossed it (``[t0, t1)``)?

        ``hops`` are the route's directed ``(from, to)`` steps as
        routed — orientation matters, that is the whole point.
        """
        for edge, window in self._directed_windows:
            if window.overlaps(t0, t1) and edge in hops:
                return True
        return False


class Fabric:
    """Contention-aware byte transport over a topology + technology."""

    def __init__(self, sim: Simulator, topology: Topology,
                 technology: InterconnectTechnology, *,
                 contention: bool = True,
                 record_transfers: bool = False,
                 fault_plan: Optional[FabricFaultPlan] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.technology = technology
        self.contention = contention
        self.record_transfers = record_transfers
        self.fault_plan = fault_plan
        self.records: List[TransferRecord] = []
        self._routes = RouteCache(topology)
        self._degraded: Dict[Tuple[int, int, FrozenSet[Node],
                                   FrozenSet[Edge]],
                             Optional[List[Edge]]] = {}
        self._links: Dict[Edge, Resource] = {}
        self._nics: Dict[int, Resource] = {}
        self._circuits: Set[Tuple[int, int]] = set()
        self.bytes_moved = 0.0
        self.transfer_count = 0

    # -- resource lookup (lazy so huge topologies stay cheap) -------------

    def _link(self, edge: Edge) -> Resource:
        resource = self._links.get(edge)
        if resource is None:
            resource = Resource(self.sim, capacity=1, name=f"link{edge}")
            self._links[edge] = resource
        return resource

    def _nic(self, host: int) -> Resource:
        resource = self._nics.get(host)
        if resource is None:
            resource = Resource(self.sim, capacity=1, name=f"nic{host}")
            self._nics[host] = resource
        return resource

    # -- the transfer process ---------------------------------------------

    def transfer(self, src: int, dst: int,
                 nbytes: int) -> Generator[Any, Any, float]:
        """Process body: completes when the last byte reaches ``dst``.

        Use as ``yield from fabric.transfer(...)`` inside a process, or
        wrap with ``sim.process`` for a standalone transfer.  Returns the
        completion time.
        """
        if self.fault_plan is not None:
            outcome = yield from self.transfer_ex(src, dst, nbytes)
            return outcome.end
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not 0 <= src < self.topology.hosts:
            raise IndexError(f"src {src} out of range")
        if not 0 <= dst < self.topology.hosts:
            raise IndexError(f"dst {dst} out of range")
        start = self.sim.now
        params = self.technology.loggp

        with self.sim.obs.span("fabric.transfer", src=src, dst=dst,
                               nbytes=nbytes):
            if src == dst:
                # Intra-host handoff: CPU overhead plus a memcpy.
                yield self.sim.timeout(params.overhead
                                       + nbytes / _LOCAL_COPY_BANDWIDTH)
                self._finish(src, dst, nbytes, start, hops=0)
                return self.sim.now

            if (self.technology.is_circuit_switched
                    and (src, dst) not in self._circuits):
                # First use of this pair: optics must set up the circuit.
                yield self.sim.timeout(self.technology.circuit_setup_seconds)
                self._circuits.add((src, dst))

            route = self._routes.route(src, dst)
            hops = len(route)
            serialization = max(params.gap, nbytes * params.gap_per_byte)
            propagation = (params.latency
                           + max(0, hops - 1) * self.technology.hop_latency)

            # Sender-side CPU overhead.
            yield self.sim.timeout(params.overhead)

            if self.contention:
                held = self._acquire_order(src, route)
                for resource in held:
                    yield resource.request()
                yield self.sim.timeout(serialization)
                for resource in held:
                    resource.release()
            else:
                yield self.sim.timeout(serialization)

            # Pipeline latency plus receiver overhead.
            yield self.sim.timeout(propagation + params.overhead)
            self._finish(src, dst, nbytes, start, hops)
            return self.sim.now

    def transfer_ex(self, src: int, dst: int,
                    nbytes: int) -> Generator[Any, Any, "TransferOutcome"]:
        """Fault-aware transfer process body.

        Same cost model as :meth:`transfer` but consults the fault plan:
        re-routes around down elements (paying the degraded route's hop
        cost), raises :class:`NetworkUnreachable` when no path survives,
        raises :class:`TransferDropped` when the message is lost (an
        element on the route went down mid-serialization, or the random
        drop draw fired), and flags corruption in the returned
        :class:`TransferOutcome` — the end-to-end check is the caller's
        job, as on a real wire.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not 0 <= src < self.topology.hosts:
            raise IndexError(f"src {src} out of range")
        if not 0 <= dst < self.topology.hosts:
            raise IndexError(f"dst {dst} out of range")
        start = self.sim.now
        params = self.technology.loggp
        plan = self.fault_plan
        obs = self.sim.obs

        with obs.span("fabric.transfer", src=src, dst=dst, nbytes=nbytes):
            if src == dst:
                yield self.sim.timeout(params.overhead
                                       + nbytes / _LOCAL_COPY_BANDWIDTH)
                self._finish(src, dst, nbytes, start, hops=0)
                return TransferOutcome(end=self.sim.now, hops=0,
                                       corrupted=False, rerouted=False)

            if (self.technology.is_circuit_switched
                    and (src, dst) not in self._circuits):
                yield self.sim.timeout(self.technology.circuit_setup_seconds)
                self._circuits.add((src, dst))

            # Sender-side CPU overhead, then pick the route against the
            # fault state at injection time.
            yield self.sim.timeout(params.overhead)
            route = self._routes.route(src, dst)
            rerouted = False
            if plan is not None:
                down_nodes = plan.down_nodes_at(self.sim.now)
                down_links = plan.down_links_at(self.sim.now)
                if down_nodes or down_links:
                    if self._blocked(route, down_nodes, down_links):
                        route = self._degraded_route(src, dst, down_nodes,
                                                     down_links)
                        if route is None:
                            plan.unreachable += 1
                            obs.instant("fabric.unreachable", src=src,
                                        dst=dst)
                            obs.metrics.counter("fabric.unreachable").inc()
                            raise NetworkUnreachable(
                                f"no route {src}->{dst} avoids "
                                f"{len(down_nodes)} down node(s) and "
                                f"{len(down_links)} down link(s)"
                            )
                        rerouted = True
                        plan.reroutes += 1
                        obs.instant("fabric.reroute", src=src, dst=dst)
                        obs.metrics.counter("fabric.reroutes").inc()

            hops = len(route)
            serialization = max(params.gap, nbytes * params.gap_per_byte)
            propagation = (params.latency
                           + max(0, hops - 1) * self.technology.hop_latency)

            depart = self.sim.now
            if self.contention:
                held = self._acquire_order(src, route)
                for resource in held:
                    yield resource.request()
                yield self.sim.timeout(serialization)
                for resource in held:
                    resource.release()
            else:
                yield self.sim.timeout(serialization)

            corrupted = False
            if plan is not None:
                links = set()
                nodes = set()
                for a, b in route:
                    links.add(canonical_link(a, b))
                    nodes.add(a)
                    nodes.add(b)
                if plan.route_hit_during(links, nodes, depart, self.sim.now):
                    plan.drops += 1
                    obs.instant("fabric.drop", src=src, dst=dst,
                                cause="down_window")
                    obs.metrics.counter("fabric.drops").inc()
                    raise TransferDropped(
                        f"transfer {src}->{dst} lost: route element went "
                        f"down in flight at t<={self.sim.now:g}"
                    )
                if (plan.has_directed_faults
                        and plan.directed_hit_during(route, depart,
                                                     self.sim.now)):
                    # Grey failure: the oriented hop eats the message.
                    # Deliberately no reroute — nothing reported the
                    # loss, so the routing layer has nothing to avoid.
                    plan.drops += 1
                    plan.blackholes += 1
                    obs.instant("fabric.drop", src=src, dst=dst,
                                cause="blackhole")
                    obs.metrics.counter("fabric.drops").inc()
                    raise TransferDropped(
                        f"transfer {src}->{dst} lost: one-way blackhole "
                        f"on the route at t<={self.sim.now:g}"
                    )
                if plan.has_random_faults:
                    draw = plan.rng.random()
                    if draw < plan.drop_probability:
                        plan.drops += 1
                        obs.instant("fabric.drop", src=src, dst=dst,
                                    cause="random")
                        obs.metrics.counter("fabric.drops").inc()
                        raise TransferDropped(
                            f"transfer {src}->{dst} randomly dropped"
                        )
                    if draw < (plan.drop_probability
                               + plan.corrupt_probability):
                        plan.corruptions += 1
                        obs.instant("fabric.corrupt", src=src, dst=dst)
                        obs.metrics.counter("fabric.corruptions").inc()
                        corrupted = True

            yield self.sim.timeout(propagation + params.overhead)
            self._finish(src, dst, nbytes, start, hops)
            return TransferOutcome(end=self.sim.now, hops=hops,
                                   corrupted=corrupted, rerouted=rerouted)

    @staticmethod
    def _blocked(route: List[Edge], down_nodes: FrozenSet[Node],
                 down_links: FrozenSet[Edge]) -> bool:
        for a, b in route:
            if a in down_nodes or b in down_nodes:
                return True
            if canonical_link(a, b) in down_links:
                return True
        return False

    def _degraded_route(self, src: int, dst: int,
                        down_nodes: FrozenSet[Node],
                        down_links: FrozenSet[Edge]
                        ) -> Optional[List[Edge]]:
        key = (src, dst, down_nodes, down_links)
        if key not in self._degraded:
            self._degraded[key] = self.topology.route_avoiding(
                src, dst, down_nodes, down_links)
        return self._degraded[key]

    def _acquire_order(self, src: int, route: List[Edge]) -> List[Resource]:
        """NIC + link resources in a globally consistent order.

        Ordering key: NICs sort before links, links sort by canonical edge.
        Every transfer acquires in this order, so no cycle of waits can
        form (classic total-order deadlock avoidance).
        """
        resources: List[Tuple[Tuple, Resource]] = [
            ((0, ("h", src)), self._nic(src))
        ]
        for edge in route:
            resources.append(((1, edge), self._link(edge)))
        resources.sort(key=lambda pair: pair[0])
        return [resource for _key, resource in resources]

    def _finish(self, src: int, dst: int, nbytes: int, start: float,
                hops: int) -> None:
        self.bytes_moved += nbytes
        self.transfer_count += 1
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.counter("fabric.transfers").inc()
            obs.metrics.counter("fabric.bytes_moved").inc(float(nbytes))
            obs.metrics.histogram("fabric.transfer_seconds").observe(
                self.sim.now - start)
        if self.record_transfers:
            self.records.append(TransferRecord(
                src=src, dst=dst, nbytes=nbytes,
                start=start, end=self.sim.now, hops=hops,
            ))

    # -- analytic helpers (no simulation needed) ---------------------------

    def uncontended_time(self, src: int, dst: int, nbytes: int) -> float:
        """Closed-form transfer time on an idle fabric (no circuit setup)."""
        params = self.technology.loggp
        if src == dst:
            return params.overhead + nbytes / _LOCAL_COPY_BANDWIDTH
        hops = len(self._routes.route(src, dst))
        return (2 * params.overhead
                + max(params.gap, nbytes * params.gap_per_byte)
                + params.latency
                + max(0, hops - 1) * self.technology.hop_latency)
