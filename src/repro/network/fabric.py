"""The simulated transport: moves bytes between hosts in virtual time.

A :class:`Fabric` binds a topology to an interconnect technology inside a
simulator.  :meth:`Fabric.transfer` is a *process body* (generator): the
messaging layer delegates to it with ``yield from``.

Cost model for one ``n``-byte transfer along a ``h``-hop route::

    [circuit setup, first use of (src,dst) if circuit-switched]
    o_send                                  (sender CPU)
    serialization: max(g, n * G)            (holding the route's links)
    L + (h - 1) * hop_latency               (wire + switch traversal)
    o_recv                                  (receiver CPU)

Contention: while serializing, the transfer holds a capacity-1
:class:`~repro.sim.resources.Resource` per link on its route plus the
sender's NIC injection port.  Resources are acquired in canonical global
order, which makes concurrent transfers deadlock-free at the price of a
slightly pessimistic (circuit-like) contention estimate — an explicit,
ablatable modelling choice (bench E13 runs it both ways via
``contention=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.network.technologies import InterconnectTechnology
from repro.network.topology import Edge, RouteCache, Topology
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["Fabric", "TransferRecord"]

#: Local (intra-node) copy bandwidth used for rank-to-self transfers.
_LOCAL_COPY_BANDWIDTH = 10e9


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer, for traffic analysis in tests/benchmarks."""

    src: int
    dst: int
    nbytes: int
    start: float
    end: float
    hops: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class Fabric:
    """Contention-aware byte transport over a topology + technology."""

    def __init__(self, sim: Simulator, topology: Topology,
                 technology: InterconnectTechnology, *,
                 contention: bool = True,
                 record_transfers: bool = False) -> None:
        self.sim = sim
        self.topology = topology
        self.technology = technology
        self.contention = contention
        self.record_transfers = record_transfers
        self.records: List[TransferRecord] = []
        self._routes = RouteCache(topology)
        self._links: Dict[Edge, Resource] = {}
        self._nics: Dict[int, Resource] = {}
        self._circuits: Set[Tuple[int, int]] = set()
        self.bytes_moved = 0.0
        self.transfer_count = 0

    # -- resource lookup (lazy so huge topologies stay cheap) -------------

    def _link(self, edge: Edge) -> Resource:
        resource = self._links.get(edge)
        if resource is None:
            resource = Resource(self.sim, capacity=1, name=f"link{edge}")
            self._links[edge] = resource
        return resource

    def _nic(self, host: int) -> Resource:
        resource = self._nics.get(host)
        if resource is None:
            resource = Resource(self.sim, capacity=1, name=f"nic{host}")
            self._nics[host] = resource
        return resource

    # -- the transfer process ---------------------------------------------

    def transfer(self, src: int, dst: int, nbytes: int):
        """Process body: completes when the last byte reaches ``dst``.

        Use as ``yield from fabric.transfer(...)`` inside a process, or
        wrap with ``sim.process`` for a standalone transfer.  Returns the
        completion time.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not 0 <= src < self.topology.hosts:
            raise IndexError(f"src {src} out of range")
        if not 0 <= dst < self.topology.hosts:
            raise IndexError(f"dst {dst} out of range")
        start = self.sim.now
        params = self.technology.loggp

        if src == dst:
            # Intra-host handoff: CPU overhead plus a memcpy.
            yield self.sim.timeout(params.overhead
                                   + nbytes / _LOCAL_COPY_BANDWIDTH)
            self._finish(src, dst, nbytes, start, hops=0)
            return self.sim.now

        if (self.technology.is_circuit_switched
                and (src, dst) not in self._circuits):
            # First use of this pair: optics must set up the circuit.
            yield self.sim.timeout(self.technology.circuit_setup_seconds)
            self._circuits.add((src, dst))

        route = self._routes.route(src, dst)
        hops = len(route)
        serialization = max(params.gap, nbytes * params.gap_per_byte)
        propagation = (params.latency
                       + max(0, hops - 1) * self.technology.hop_latency)

        # Sender-side CPU overhead.
        yield self.sim.timeout(params.overhead)

        if self.contention:
            held = self._acquire_order(src, route)
            for resource in held:
                yield resource.request()
            yield self.sim.timeout(serialization)
            for resource in held:
                resource.release()
        else:
            yield self.sim.timeout(serialization)

        # Pipeline latency plus receiver overhead.
        yield self.sim.timeout(propagation + params.overhead)
        self._finish(src, dst, nbytes, start, hops)
        return self.sim.now

    def _acquire_order(self, src: int, route: List[Edge]) -> List[Resource]:
        """NIC + link resources in a globally consistent order.

        Ordering key: NICs sort before links, links sort by canonical edge.
        Every transfer acquires in this order, so no cycle of waits can
        form (classic total-order deadlock avoidance).
        """
        resources: List[Tuple[Tuple, Resource]] = [
            ((0, ("h", src)), self._nic(src))
        ]
        for edge in route:
            resources.append(((1, edge), self._link(edge)))
        resources.sort(key=lambda pair: pair[0])
        return [resource for _key, resource in resources]

    def _finish(self, src: int, dst: int, nbytes: int, start: float,
                hops: int) -> None:
        self.bytes_moved += nbytes
        self.transfer_count += 1
        if self.record_transfers:
            self.records.append(TransferRecord(
                src=src, dst=dst, nbytes=nbytes,
                start=start, end=self.sim.now, hops=hops,
            ))

    # -- analytic helpers (no simulation needed) ---------------------------

    def uncontended_time(self, src: int, dst: int, nbytes: int) -> float:
        """Closed-form transfer time on an idle fabric (no circuit setup)."""
        params = self.technology.loggp
        if src == dst:
            return params.overhead + nbytes / _LOCAL_COPY_BANDWIDTH
        hops = len(self._routes.route(src, dst))
        return (2 * params.overhead
                + max(params.gap, nbytes * params.gap_per_byte)
                + params.latency
                + max(0, hops - 1) * self.technology.hop_latency)
