"""Recover LogGP parameters from ping-pong measurements.

The inverse of the catalog: given half-round-trip times at a range of
message sizes — from our simulator or from a real machine's
ping-pong output — recover the startup cost and per-byte gap by linear
least squares, and report the derived bandwidth and ``n_1/2``.

This is how the catalog's constants would be calibrated against hardware
(the LogP papers' "parameter benchmarks").  The driver that runs the
ping-pong on the simulated stack lives one layer up, in
:mod:`repro.messaging.calibrate`; this module is pure numerics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.network.loggp import LogGPParams

__all__ = ["LogGPFit", "fit_loggp"]


@dataclass(frozen=True)
class LogGPFit:
    """Result of a LogGP calibration."""

    #: Total startup cost (L + 2o); individual L and o are not separable
    #: from ping-pong alone, exactly as on real hardware.
    startup_seconds: float
    gap_per_byte: float
    rms_residual: float

    @property
    def bandwidth(self) -> float:
        """Asymptotic bandwidth implied by the fitted per-byte gap."""
        return 1.0 / self.gap_per_byte

    @property
    def n_half(self) -> float:
        """Message size reaching half the asymptotic bandwidth."""
        return self.startup_seconds / self.gap_per_byte

    def as_params(self, overhead_fraction: float = 0.25) -> LogGPParams:
        """A usable parameter set, splitting startup into L and o by an
        assumed CPU share (ping-pong cannot separate them)."""
        if not 0 <= overhead_fraction < 1:
            raise ValueError("overhead fraction must be in [0, 1)")
        overhead = self.startup_seconds * overhead_fraction / 2.0
        latency = self.startup_seconds - 2.0 * overhead
        return LogGPParams(latency=latency, overhead=overhead,
                           gap=2.0 * overhead,
                           gap_per_byte=self.gap_per_byte)


def fit_loggp(sizes: Sequence[int],
              half_round_trips: Sequence[float]) -> LogGPFit:
    """Least-squares fit of ``T(n) = startup + n * G`` to measurements.

    Needs at least two distinct sizes; both the startup and the per-byte
    gap must come out positive or the data is not LogGP-shaped (raises).
    """
    n = np.asarray(list(sizes), dtype=float)
    t = np.asarray(list(half_round_trips), dtype=float)
    if n.shape != t.shape or n.size < 2:
        raise ValueError("need matching size/time arrays of length >= 2")
    if len(set(n.tolist())) < 2:
        raise ValueError("need at least two distinct message sizes")
    if np.any(t <= 0):
        raise ValueError("times must be positive")
    gap, startup = np.polyfit(n, t, 1)
    if gap <= 0 or startup <= 0:
        raise ValueError(
            "fit produced non-positive startup or gap; measurements are "
            "not LogGP-shaped (check for contention or warm-up effects)"
        )
    predicted = startup + gap * n
    rms = float(np.sqrt(np.mean((predicted - t) ** 2)))
    return LogGPFit(startup_seconds=float(startup),
                    gap_per_byte=float(gap), rms_residual=rms)
