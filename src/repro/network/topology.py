"""Network topologies on ``networkx`` graphs.

Four families cover the era's design space:

* :class:`SingleSwitchTopology` — one non-blocking crossbar (small systems);
* :class:`FatTreeTopology` — two-level leaf/spine with configurable
  oversubscription (the commodity scale-out answer, and how InfiniBand
  fabrics were actually deployed);
* :class:`TorusTopology` — k-ary n-dimensional direct network with
  dimension-ordered routing (the BlueGene direction for SoC nodes);
* :class:`HypercubeTopology` — binary hypercube with e-cube routing
  (included as the classic baseline).

Hosts are graph nodes ``("h", i)``; switches are ``("s", j)``.  A *route*
is the ordered list of **directed** ``(from, to)`` node pairs between two
hosts; the fabric maps each direction of a physical link onto its own
contention resource (links are full duplex, as real switched fabrics
are).  Routing is deterministic — same (src, dst) always takes the same
path — so simulated runs are reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

__all__ = [
    "Topology",
    "SingleSwitchTopology",
    "FatTreeTopology",
    "TorusTopology",
    "HypercubeTopology",
    "RouteCache",
    "canonical_link",
]

Node = Tuple[str, int]
Edge = Tuple[Node, Node]


def _directed(a: Node, b: Node) -> Edge:
    """Directed traversal step: one full-duplex direction of a link."""
    return (a, b)


def canonical_link(a: Node, b: Node) -> Edge:
    """Undirected identity of a physical link: endpoints in sorted order.

    Fault plans name links canonically so a down window takes out both
    full-duplex directions at once.
    """
    return (a, b) if a <= b else (b, a)


class Topology:
    """Base: a graph, a host count, and a routing function."""

    def __init__(self, hosts: int) -> None:
        if hosts < 1:
            raise ValueError(f"need at least one host, got {hosts}")
        self.hosts = hosts
        self.graph = nx.Graph()

    def host_node(self, rank: int) -> Node:
        """Graph node for a host rank (IndexError when out of range)."""
        if not 0 <= rank < self.hosts:
            raise IndexError(f"host {rank} out of range [0, {self.hosts})")
        return ("h", rank)

    def route(self, src: int, dst: int) -> List[Edge]:
        """Ordered directed ``(from, to)`` steps from host ``src`` to ``dst``.

        The trivial route from a host to itself is the empty list.
        """
        raise NotImplementedError

    def hop_count(self, src: int, dst: int) -> int:
        """Number of links on the route (0 for self)."""
        return len(self.route(src, dst))

    def route_avoiding(
        self, src: int, dst: int,
        down_nodes: "frozenset" = frozenset(),
        down_links: "frozenset" = frozenset(),
    ) -> "Optional[List[Edge]]":
        """Deterministic shortest route avoiding failed elements.

        ``down_nodes`` holds graph nodes (switches, hosts) that are out of
        service; ``down_links`` holds :func:`canonical_link` keys.  Returns
        ``None`` when no path survives.  The base implementation is a BFS
        with sorted neighbour expansion, so the degraded route is a pure
        function of (src, dst, down sets) — reproducible across runs.
        Subclasses with structured routing override this with a cheaper
        scheme (e.g. the fat tree retries alternate spines).
        """
        if src == dst:
            return []
        a, b = self.host_node(src), self.host_node(dst)
        if a in down_nodes or b in down_nodes:
            return None
        parents: Dict[Node, Optional[Node]] = {a: None}
        frontier: List[Node] = [a]
        while frontier:
            next_frontier: List[Node] = []
            for node in frontier:
                for neighbour in sorted(self.graph.neighbors(node)):
                    if neighbour in parents or neighbour in down_nodes:
                        continue
                    if canonical_link(node, neighbour) in down_links:
                        continue
                    parents[neighbour] = node
                    if neighbour == b:
                        path = [neighbour]
                        while parents[path[-1]] is not None:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return [_directed(u, v)
                                for u, v in zip(path, path[1:])]
                    next_frontier.append(neighbour)
            frontier = next_frontier
        return None

    @property
    def num_links(self) -> int:
        """Edges in the fabric graph."""
        return self.graph.number_of_edges()

    @property
    def num_switches(self) -> int:
        """Switch nodes in the fabric graph."""
        return sum(1 for node in self.graph.nodes if node[0] == "s")

    def diameter_hops(self) -> int:
        """Maximum route length over all host pairs (computed exactly for
        small systems, by formula in subclasses that know better)."""
        return max(
            self.hop_count(0, d) for d in range(self.hosts)
        ) if self.hosts > 1 else 0

    def bisection_links(self) -> int:
        """Links crossing the worst-case even bipartition (by formula)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} hosts={self.hosts} "
                f"switches={self.num_switches} links={self.num_links}>")


class SingleSwitchTopology(Topology):
    """Every host one hop from a single non-blocking crossbar."""

    def __init__(self, hosts: int) -> None:
        super().__init__(hosts)
        switch = ("s", 0)
        self.graph.add_node(switch)
        for rank in range(hosts):
            self.graph.add_edge(self.host_node(rank), switch)

    def route(self, src: int, dst: int) -> List[Edge]:
        """Two directed hops through the crossbar (empty for self)."""
        a, b = self.host_node(src), self.host_node(dst)
        if src == dst:
            return []
        switch = ("s", 0)
        return [_directed(a, switch), _directed(switch, b)]

    def diameter_hops(self) -> int:
        """Every pair is exactly two hops apart."""
        return 2 if self.hosts > 1 else 0

    def bisection_links(self) -> int:
        """Non-blocking crossbar: the cut goes through host links."""
        return self.hosts // 2


class FatTreeTopology(Topology):
    """Two-level leaf/spine Clos.

    Parameters
    ----------
    hosts:
        Endpoint count; leaves are filled in rank order.
    hosts_per_leaf:
        Downlinks per leaf switch.
    spines:
        Uplink count per leaf == number of spine switches.  ``spines ==
        hosts_per_leaf`` gives full bisection; fewer gives an
        oversubscribed (cheaper) fabric.
    """

    def __init__(self, hosts: int, hosts_per_leaf: int = 16,
                 spines: int = None) -> None:  # type: ignore[assignment]
        super().__init__(hosts)
        if hosts_per_leaf < 1:
            raise ValueError("hosts_per_leaf must be >= 1")
        self.hosts_per_leaf = hosts_per_leaf
        self.num_leaves = -(-hosts // hosts_per_leaf)  # ceil division
        self.num_spines = hosts_per_leaf if spines is None else spines
        if self.num_spines < 1:
            raise ValueError("need at least one spine")
        for leaf in range(self.num_leaves):
            leaf_node = ("s", leaf)
            for spine in range(self.num_spines):
                self.graph.add_edge(leaf_node,
                                    ("s", self.num_leaves + spine))
        for rank in range(hosts):
            self.graph.add_edge(self.host_node(rank),
                                ("s", rank // hosts_per_leaf))

    @property
    def oversubscription(self) -> float:
        """Downlinks per uplink (1.0 == full bisection)."""
        return self.hosts_per_leaf / self.num_spines

    def _leaf_of(self, rank: int) -> Node:
        return ("s", rank // self.hosts_per_leaf)

    def _spine_for(self, src: int, dst: int) -> Node:
        # Deterministic spreading: same pair always picks the same spine.
        index = (src * 1_000_003 + dst) % self.num_spines
        return ("s", self.num_leaves + index)

    def route(self, src: int, dst: int) -> List[Edge]:
        """2 hops intra-leaf, 4 hops through a (deterministic) spine."""
        if src == dst:
            return []
        a, b = self.host_node(src), self.host_node(dst)
        leaf_a, leaf_b = self._leaf_of(src), self._leaf_of(dst)
        if leaf_a == leaf_b:
            return [_directed(a, leaf_a), _directed(leaf_a, b)]
        spine = self._spine_for(src, dst)
        return [
            _directed(a, leaf_a),
            _directed(leaf_a, spine),
            _directed(spine, leaf_b),
            _directed(leaf_b, b),
        ]

    def route_avoiding(
        self, src: int, dst: int,
        down_nodes: "frozenset" = frozenset(),
        down_links: "frozenset" = frozenset(),
    ) -> Optional[List[Edge]]:
        """Degraded fat-tree routing: try alternate spines cyclically.

        Starting from the deterministically-hashed preferred spine, scan
        spines in cyclic order and take the first whose switch and both
        leaf uplinks are alive.  Host links and leaf switches have no
        redundancy in a two-level Clos, so their failure partitions the
        affected hosts (returns ``None``).
        """
        if src == dst:
            return []
        a, b = self.host_node(src), self.host_node(dst)
        if a in down_nodes or b in down_nodes:
            return None
        leaf_a, leaf_b = self._leaf_of(src), self._leaf_of(dst)
        if leaf_a in down_nodes or leaf_b in down_nodes:
            return None
        if (canonical_link(a, leaf_a) in down_links
                or canonical_link(leaf_b, b) in down_links):
            return None
        if leaf_a == leaf_b:
            return [_directed(a, leaf_a), _directed(leaf_a, b)]
        preferred = (src * 1_000_003 + dst) % self.num_spines
        for offset in range(self.num_spines):
            index = (preferred + offset) % self.num_spines
            spine = ("s", self.num_leaves + index)
            if spine in down_nodes:
                continue
            if (canonical_link(leaf_a, spine) in down_links
                    or canonical_link(spine, leaf_b) in down_links):
                continue
            return [
                _directed(a, leaf_a),
                _directed(leaf_a, spine),
                _directed(spine, leaf_b),
                _directed(leaf_b, b),
            ]
        return None

    def diameter_hops(self) -> int:
        """4 hops once more than one leaf exists (2 within one leaf)."""
        if self.hosts <= 1:
            return 0
        return 2 if self.num_leaves == 1 else 4

    def bisection_links(self) -> int:
        """Half the leaves' uplinks (host links if only one leaf)."""
        # The cut separates half the leaves from the other half; each leaf
        # contributes its uplinks.  With one leaf the cut is through hosts.
        if self.num_leaves == 1:
            return self.hosts // 2
        return (self.num_leaves // 2) * self.num_spines


class TorusTopology(Topology):
    """k-ary n-dimensional torus; hosts double as routers.

    ``shape`` like ``(8, 8)`` or ``(4, 4, 4)``.  Dimension-ordered routing
    with shortest wraparound direction; ties (exactly half way around an
    even ring) break toward increasing coordinates, deterministically.
    """

    def __init__(self, shape: Tuple[int, ...]) -> None:
        if not shape or any(k < 2 for k in shape):
            raise ValueError(f"every torus dimension must be >= 2, got {shape}")
        hosts = 1
        for k in shape:
            hosts *= k
        super().__init__(hosts)
        self.shape = tuple(shape)
        self._strides = []
        stride = 1
        for k in reversed(self.shape):
            self._strides.append(stride)
            stride *= k
        self._strides.reverse()
        for rank in range(hosts):
            coords = self.coords_of(rank)
            for dim, k in enumerate(self.shape):
                neighbour = list(coords)
                neighbour[dim] = (coords[dim] + 1) % k
                self.graph.add_edge(self.host_node(rank),
                                    self.host_node(self.rank_of(tuple(neighbour))))

    def coords_of(self, rank: int) -> Tuple[int, ...]:
        """Grid coordinates of a host rank."""
        coords = []
        for stride, k in zip(self._strides, self.shape):
            coords.append((rank // stride) % k)
        return tuple(coords)

    def rank_of(self, coords: Tuple[int, ...]) -> int:
        """Host rank at grid coordinates."""
        if len(coords) != len(self.shape):
            raise ValueError("coordinate arity mismatch")
        rank = 0
        for c, stride, k in zip(coords, self._strides, self.shape):
            if not 0 <= c < k:
                raise ValueError(f"coordinate {c} out of ring size {k}")
            rank += c * stride
        return rank

    def route(self, src: int, dst: int) -> List[Edge]:
        """Dimension-ordered route with shortest wraparound direction."""
        if src == dst:
            return []
        edges: List[Edge] = []
        position = list(self.coords_of(src))
        target = self.coords_of(dst)
        for dim, k in enumerate(self.shape):
            while position[dim] != target[dim]:
                forward = (target[dim] - position[dim]) % k
                backward = (position[dim] - target[dim]) % k
                step = 1 if forward <= backward else -1
                here = self.rank_of(tuple(position))
                position[dim] = (position[dim] + step) % k
                there = self.rank_of(tuple(position))
                edges.append(_directed(self.host_node(here),
                                        self.host_node(there)))
        return edges

    def diameter_hops(self) -> int:
        """Sum of half-ring distances over the dimensions."""
        return sum(k // 2 for k in self.shape)

    def bisection_links(self) -> int:
        """Cut the largest ring in half: 2 links per ring instance."""
        k = max(self.shape)
        return 2 * (self.hosts // k)


class HypercubeTopology(Topology):
    """Binary d-cube with e-cube (ascending-dimension) routing."""

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValueError("dimension must be >= 1")
        super().__init__(2 ** dimension)
        self.dimension = dimension
        for rank in range(self.hosts):
            for bit in range(dimension):
                neighbour = rank ^ (1 << bit)
                if neighbour > rank:
                    self.graph.add_edge(self.host_node(rank),
                                        self.host_node(neighbour))

    def route(self, src: int, dst: int) -> List[Edge]:
        """E-cube route: correct differing bits in ascending order."""
        if src == dst:
            return []
        edges: List[Edge] = []
        position = src
        difference = src ^ dst
        for bit in range(self.dimension):
            if difference & (1 << bit):
                nxt = position ^ (1 << bit)
                edges.append(_directed(self.host_node(position),
                                        self.host_node(nxt)))
                position = nxt
        return edges

    def diameter_hops(self) -> int:
        """The cube dimension (maximum Hamming distance)."""
        return self.dimension

    def bisection_links(self) -> int:
        """Half the hosts: one dimension's worth of links crosses."""
        return self.hosts // 2


#: Routing cache shared by fabrics: topologies are immutable after build.
class RouteCache:
    """Memoises ``topology.route`` — route computation dominates large
    simulated collectives otherwise."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._cache: Dict[Tuple[int, int], List[Edge]] = {}

    def route(self, src: int, dst: int) -> List[Edge]:
        """The topology's route for (src, dst), memoised."""
        key = (src, dst)
        hit = self._cache.get(key)
        if hit is None:
            hit = self.topology.route(src, dst)
            self._cache[key] = hit
        return hit
