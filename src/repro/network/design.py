"""Fabric design economics: pricing and comparing whole networks.

The cluster cost model charges a flat per-endpoint port price; this
module prices the *fabric itself* — every switch port and NIC in a
concrete topology — so that oversubscription and topology choices can be
costed, not just timed.  A port's price is the catalog's
``cost_per_port`` (NIC and switch port assumed comparable, as they were
for the era's interconnects); a link consumes one port on each side
unless an endpoint is a host (whose NIC is counted once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.network.fattree3 import ThreeLevelFatTreeTopology
from repro.network.technologies import InterconnectTechnology
from repro.network.topology import FatTreeTopology, Topology

__all__ = ["FabricBill", "price_fabric", "compare_fabrics"]


@dataclass(frozen=True)
class FabricBill:
    """Itemised cost of one concrete fabric."""

    topology_name: str
    technology_name: str
    hosts: int
    nics: int
    switch_ports: int
    links: int
    total_dollars: float
    bisection_links: int

    @property
    def dollars_per_host(self) -> float:
        """Fabric cost amortised over the hosts it connects."""
        return self.total_dollars / self.hosts

    @property
    def dollars_per_bisection_link(self) -> float:
        """Cost of deliverable all-to-all capacity — the figure that
        exposes oversubscription as a bandwidth discount, not a saving."""
        return self.total_dollars / max(1, self.bisection_links)


def price_fabric(topology: Topology,
                 technology: InterconnectTechnology,
                 name: str = "") -> FabricBill:
    """Count every NIC and switch port in ``topology`` and price them."""
    nics = topology.hosts
    switch_ports = 0
    for a, b in topology.graph.edges:
        switch_ports += (a[0] == "s") + (b[0] == "s")
    total_ports = nics + switch_ports
    return FabricBill(
        topology_name=name or type(topology).__name__,
        technology_name=technology.name,
        hosts=topology.hosts,
        nics=nics,
        switch_ports=switch_ports,
        links=topology.num_links,
        total_dollars=total_ports * technology.cost_per_port,
        bisection_links=topology.bisection_links(),
    )


def compare_fabrics(hosts: int,
                    technology: InterconnectTechnology) -> List[FabricBill]:
    """Price the standard design alternatives for ``hosts`` endpoints:
    full-bisection and 2:1/4:1-oversubscribed leaf-spine, plus the
    three-level fat tree when the scale warrants one."""
    if hosts < 2:
        raise ValueError("need at least two hosts to network")
    leaf = min(16, hosts)
    bills = [
        price_fabric(FatTreeTopology(hosts, hosts_per_leaf=leaf),
                     technology, name="leaf-spine 1:1"),
        price_fabric(FatTreeTopology(hosts, hosts_per_leaf=leaf,
                                     spines=max(1, leaf // 2)),
                     technology, name="leaf-spine 2:1"),
        price_fabric(FatTreeTopology(hosts, hosts_per_leaf=leaf,
                                     spines=max(1, leaf // 4)),
                     technology, name="leaf-spine 4:1"),
    ]
    radix = ThreeLevelFatTreeTopology.radix_for_hosts(hosts)
    if radix ** 3 // 4 <= hosts * 4:  # only when not absurdly oversized
        bills.append(price_fabric(ThreeLevelFatTreeTopology(radix),
                                  technology,
                                  name=f"3-level fat tree (k={radix})"))
    return bills
