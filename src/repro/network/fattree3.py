"""Three-level k-ary fat tree — the petaflops-scale fabric.

The two-level leaf/spine fabric tops out at ``hosts_per_leaf × spines``
endpoints; machines in the tens of thousands of nodes need the classic
three-tier Clos built from uniform radix-``k`` switches:

* ``k`` pods, each with ``k/2`` edge and ``k/2`` aggregation switches;
* ``(k/2)²`` core switches;
* ``k³/4`` hosts (``k/2`` per edge switch).

Full bisection by construction.  Routing is the standard deterministic
two-step hash: the (src, dst) pair picks an aggregation switch within
the pod and a core switch above it, spreading flows while keeping every
simulated run reproducible.
"""

from __future__ import annotations

from typing import List

from repro.network.topology import Edge, Node, Topology, _directed

__all__ = ["ThreeLevelFatTreeTopology"]


class ThreeLevelFatTreeTopology(Topology):
    """k-ary three-tier fat tree (k even, >= 2); hosts = k^3 / 4."""

    def __init__(self, radix: int) -> None:
        if radix < 2 or radix % 2 != 0:
            raise ValueError(f"radix must be even and >= 2, got {radix}")
        self.radix = radix
        half = radix // 2
        hosts = radix ** 3 // 4
        super().__init__(hosts)
        self._half = half
        self._hosts_per_pod = half * half
        # Switch id layout: edges, then aggregations, then cores.
        self._edge_base = 0
        self._agg_base = radix * half          # k pods x k/2 edges
        self._core_base = self._agg_base + radix * half

        # Host <-> edge links.
        for host in range(hosts):
            self.graph.add_edge(self.host_node(host),
                                ("s", self._edge_of(host)))
        # Edge <-> aggregation links (within each pod, full mesh).
        for pod in range(radix):
            for edge_index in range(half):
                edge_switch = ("s", self._edge_base + pod * half + edge_index)
                for agg_index in range(half):
                    agg_switch = ("s", self._agg_base + pod * half + agg_index)
                    self.graph.add_edge(edge_switch, agg_switch)
        # Aggregation <-> core links: agg a of every pod connects to core
        # group a (cores a*half .. a*half + half - 1).
        for pod in range(radix):
            for agg_index in range(half):
                agg_switch = ("s", self._agg_base + pod * half + agg_index)
                for core_index in range(half):
                    core_switch = ("s", self._core_base
                                   + agg_index * half + core_index)
                    self.graph.add_edge(agg_switch, core_switch)

    # -- address arithmetic -------------------------------------------------

    def pod_of(self, host: int) -> int:
        """Index of the pod a host lives in."""
        return host // self._hosts_per_pod

    def _edge_of(self, host: int) -> int:
        pod = self.pod_of(host)
        within = (host % self._hosts_per_pod) // self._half
        return self._edge_base + pod * self._half + within

    def _agg_for(self, src: int, dst: int, pod: int) -> int:
        index = (src * 31 + dst * 7) % self._half
        return self._agg_base + pod * self._half + index

    def _core_for(self, src: int, dst: int, agg_index: int) -> int:
        index = (src * 13 + dst * 3) % self._half
        return self._core_base + agg_index * self._half + index

    # -- routing --------------------------------------------------------------

    def route(self, src: int, dst: int) -> List[Edge]:
        """2/4/6 hops for same-edge, same-pod, and cross-pod pairs."""
        if src == dst:
            return []
        a, b = self.host_node(src), self.host_node(dst)
        src_edge: Node = ("s", self._edge_of(src))
        dst_edge: Node = ("s", self._edge_of(dst))
        if src_edge == dst_edge:
            return [_directed(a, src_edge), _directed(src_edge, b)]

        src_pod, dst_pod = self.pod_of(src), self.pod_of(dst)
        if src_pod == dst_pod:
            agg: Node = ("s", self._agg_for(src, dst, src_pod))
            return [
                _directed(a, src_edge),
                _directed(src_edge, agg),
                _directed(agg, dst_edge),
                _directed(dst_edge, b),
            ]

        agg_index = (src * 31 + dst * 7) % self._half
        up_agg: Node = ("s", self._agg_base + src_pod * self._half + agg_index)
        core: Node = ("s", self._core_for(src, dst, agg_index))
        down_agg: Node = ("s", self._agg_base + dst_pod * self._half
                          + agg_index)
        return [
            _directed(a, src_edge),
            _directed(src_edge, up_agg),
            _directed(up_agg, core),
            _directed(core, down_agg),
            _directed(down_agg, dst_edge),
            _directed(dst_edge, b),
        ]

    def diameter_hops(self) -> int:
        """6 hops through the core (2 for the degenerate k=2 tree)."""
        return 6 if self.radix > 2 else 2

    def bisection_links(self) -> int:
        """Full bisection: half the hosts' worth of core-level links."""
        return self.hosts // 2

    @property
    def num_pods(self) -> int:
        """Pods in the fabric (equal to the switch radix)."""
        return self.radix

    @classmethod
    def radix_for_hosts(cls, hosts: int) -> int:
        """Smallest even radix whose fat tree holds ``hosts`` endpoints."""
        if hosts < 1:
            raise ValueError("hosts must be >= 1")
        radix = 2
        while radix ** 3 // 4 < hosts:
            radix += 2
        return radix
