"""The LogGP point-to-point cost model.

LogGP (Alexandrov et al., extending Culler's LogP) describes a network by
four parameters:

* ``L`` — end-to-end wire+switch latency for a minimal message (seconds);
* ``o`` — CPU overhead to send or receive a message (seconds, charged on
  both ends);
* ``g`` — minimum gap between consecutive message injections (seconds),
  the reciprocal of message rate;
* ``G`` — gap per byte (seconds/byte), the reciprocal of bandwidth.

The time for one ``n``-byte message between idle endpoints is::

    T(n) = o_send + L + (n - 1) * G + o_recv

which the messaging layer uses directly; ``g`` matters only for message
streams and is enforced by the fabric's per-NIC injection resource.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LogGPParams"]


@dataclass(frozen=True)
class LogGPParams:
    """LogGP parameter set; all times in seconds, G in seconds/byte."""

    latency: float          # L
    overhead: float         # o (per side)
    gap: float              # g (per message)
    gap_per_byte: float     # G

    def __post_init__(self) -> None:
        for name in ("latency", "overhead", "gap", "gap_per_byte"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.gap_per_byte == 0:
            raise ValueError("gap_per_byte must be positive (finite bandwidth)")

    @property
    def bandwidth(self) -> float:
        """Asymptotic bandwidth in bytes/second (1/G)."""
        return 1.0 / self.gap_per_byte

    def message_time(self, nbytes: int) -> float:
        """End-to-end time for one message between idle endpoints.

        Zero-byte messages still pay latency and both overheads (that is
        what a ping measures).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        payload = max(0, nbytes - 1) * self.gap_per_byte
        return 2.0 * self.overhead + self.latency + payload

    def half_round_trip(self, nbytes: int) -> float:
        """Ping-pong half round trip — the canonical latency benchmark."""
        return self.message_time(nbytes)

    def effective_bandwidth(self, nbytes: int) -> float:
        """Delivered bytes/second for an ``nbytes`` message including
        startup costs — approaches :attr:`bandwidth` for large messages."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        return nbytes / self.message_time(nbytes)

    def n_half(self) -> float:
        """Message size achieving half the asymptotic bandwidth
        (Hockney's ``n_1/2``) — the classic startup-cost summary."""
        startup = 2.0 * self.overhead + self.latency
        return startup / self.gap_per_byte

    def scaled(self, *, latency_factor: float = 1.0,
               bandwidth_factor: float = 1.0,
               overhead_factor: float = 1.0) -> "LogGPParams":
        """A derived parameter set (used by roadmap-projected networks)."""
        if min(latency_factor, bandwidth_factor, overhead_factor) <= 0:
            raise ValueError("factors must be positive")
        return LogGPParams(
            latency=self.latency * latency_factor,
            overhead=self.overhead * overhead_factor,
            gap=self.gap * overhead_factor,
            gap_per_byte=self.gap_per_byte / bandwidth_factor,
        )
