"""Interconnect models.

The keynote names "anticipated advances in networking including Infiniband
and optical switching" as a defining force.  This package provides:

* :class:`LogGPParams` — the latency/overhead/gap/Gap cost model that
  captures what applications see of a network;
* a catalog of :class:`InterconnectTechnology` entries spanning the era,
  Fast Ethernet through InfiniBand 12X and optical circuit switching;
* topologies (single switch, two-level fat tree, torus, hypercube) built on
  ``networkx``, with deterministic routing;
* :class:`Fabric` — a contention-aware transport running inside the
  discrete-event simulator, used by the messaging layer.
"""

from repro.network.loggp import LogGPParams
from repro.network.technologies import (
    INTERCONNECTS,
    InterconnectTechnology,
    available_interconnects,
    get_interconnect,
)
from repro.network.topology import (
    FatTreeTopology,
    HypercubeTopology,
    SingleSwitchTopology,
    Topology,
    TorusTopology,
)
from repro.network.fabric import Fabric, TransferRecord
from repro.network.fattree3 import ThreeLevelFatTreeTopology
from repro.network.design import FabricBill, compare_fabrics, price_fabric
from repro.network.loggp_fit import LogGPFit, fit_loggp

__all__ = [
    "Fabric",
    "FabricBill",
    "FatTreeTopology",
    "HypercubeTopology",
    "INTERCONNECTS",
    "InterconnectTechnology",
    "LogGPFit",
    "LogGPParams",
    "SingleSwitchTopology",
    "ThreeLevelFatTreeTopology",
    "Topology",
    "TorusTopology",
    "TransferRecord",
    "available_interconnects",
    "compare_fabrics",
    "price_fabric",
    "fit_loggp",
    "get_interconnect",
]
