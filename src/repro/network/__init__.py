"""Interconnect models.

The keynote names "anticipated advances in networking including Infiniband
and optical switching" as a defining force.  This package provides:

* :class:`LogGPParams` — the latency/overhead/gap/Gap cost model that
  captures what applications see of a network;
* a catalog of :class:`InterconnectTechnology` entries spanning the era,
  Fast Ethernet through InfiniBand 12X and optical circuit switching;
* topologies (single switch, two-level fat tree, torus, hypercube) built on
  ``networkx``, with deterministic routing;
* :class:`Fabric` — a contention-aware transport running inside the
  discrete-event simulator, used by the messaging layer.
"""

from repro.network.loggp import LogGPParams
from repro.network.technologies import (
    INTERCONNECTS,
    InterconnectTechnology,
    available_interconnects,
    get_interconnect,
)
from repro.network.topology import (
    FatTreeTopology,
    HypercubeTopology,
    SingleSwitchTopology,
    Topology,
    TorusTopology,
    canonical_link,
)
from repro.network.fabric import (
    DownWindow,
    Fabric,
    FabricFaultPlan,
    NetworkUnreachable,
    TransferDropped,
    TransferOutcome,
    TransferRecord,
)
from repro.network.fattree3 import ThreeLevelFatTreeTopology
from repro.network.design import FabricBill, compare_fabrics, price_fabric
from repro.network.loggp_fit import LogGPFit, fit_loggp

__all__ = [
    "DownWindow",
    "Fabric",
    "FabricBill",
    "FabricFaultPlan",
    "FatTreeTopology",
    "HypercubeTopology",
    "INTERCONNECTS",
    "InterconnectTechnology",
    "LogGPFit",
    "LogGPParams",
    "NetworkUnreachable",
    "SingleSwitchTopology",
    "ThreeLevelFatTreeTopology",
    "Topology",
    "TorusTopology",
    "TransferDropped",
    "TransferOutcome",
    "TransferRecord",
    "available_interconnects",
    "canonical_link",
    "compare_fabrics",
    "price_fabric",
    "fit_loggp",
    "get_interconnect",
]
