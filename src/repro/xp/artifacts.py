"""Atomic ``BENCH_*.json`` trajectory artifacts.

Every bench module and the fleet runner leave a JSON artifact at the
repo root so CI runs can be archived and compared across commits.  Two
failure modes used to corrupt that trajectory:

* a plain ``write_text`` interrupted mid-write leaves a truncated file
  that CI's artifact-validation step then fails to parse — so writes go
  through a temp file in the same directory followed by an atomic
  :func:`os.replace`;
* a partially failed bench run (one test errored, or ``-k`` selected a
  subset) emits an artifact *missing the sections* downstream tooling
  keys on — so callers declare their ``required`` sections and the
  writer refuses (:class:`ValueError`) rather than emit a partial
  artifact over a complete one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["write_bench_artifact"]


def write_bench_artifact(path: Path, payload: Mapping[str, Any],
                         required: Sequence[str] = ()) -> None:
    """Write ``payload`` as deterministic JSON, atomically, or refuse.

    ``required`` names top-level sections that must be present and
    non-empty; a missing or empty one raises :class:`ValueError` and the
    file on disk — possibly a previous complete run's artifact — is left
    untouched.  The write itself goes to ``<name>.tmp`` in the target
    directory and is renamed into place, so a reader never observes a
    torn file even if this process dies mid-write.
    """
    path = Path(path)
    missing = [name for name in required if not payload.get(name)]
    if missing:
        raise ValueError(
            f"refusing to write {path.name}: missing or empty "
            f"section(s): {', '.join(missing)}")
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)
