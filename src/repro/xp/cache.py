"""Content-hash result cache for experiment points.

The :class:`~repro.lint.cache.LintCache` design, generalised from lint
findings to experiment summaries: each sweep point's result is keyed by
the three things that together determine it exactly —

* a **code fingerprint** — :func:`repro.lint.engine.tree_fingerprint`
  over the per-file SHA-256 set of the experiment's transitive local
  import closure (:mod:`repro.xp.fingerprint`), so editing any file the
  experiment's code actually reaches invalidates its points and nothing
  else;
* the point's **canonical-JSON config** — sorted keys, no whitespace,
  so semantically identical configs always key identically;
* the derived per-point **seed**.

Unlike the lint cache's single document, entries live one-per-file as
``.repro-xp-cache/<experiment>/<key>.json`` with the key material
echoed inside, and each entry is written via temp-file + atomic rename:
experiment summaries are orders of magnitude more expensive to recompute
than lint findings, so a torn write must never take out a whole
experiment's warm set.  Any mismatch — edited code, different config,
different seed, corrupt or truncated entry — simply misses, and the
point is recomputed and re-stored.  The cache can therefore never change
*what* a fleet run reports, only how much of it is recomputed
(``tests/test_xp_cache.py`` proves byte-identical warm-vs-cold
summaries).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

__all__ = ["CACHE_DIR_NAME", "CACHE_VERSION", "ResultCache",
           "canonical_json"]

#: Directory created under the repo root to hold per-point entries.
CACHE_DIR_NAME = ".repro-xp-cache"

#: Version of the entry format and key derivation; bumping it forces a
#: cold fleet everywhere.
CACHE_VERSION = 1


def canonical_json(payload: Any) -> str:
    """The canonical byte form: sorted keys, compact separators.

    Both cache keys and summary-identity comparisons are defined over
    this encoding, so "byte-identical summaries" is a well-defined claim
    independent of dict insertion order.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _atomic_write_text(path: Path, text: str) -> None:
    """Write via a same-directory temp file + rename: never torn."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class ResultCache:
    """Per-point experiment summaries keyed by (code, config, seed).

    One instance corresponds to one cache directory.  ``get``/``put``
    operate on a single point's summary dict; there is no ``save`` step
    because entries are independent files, each written atomically at
    :meth:`put` time.  A missing, corrupt, or mismatched entry simply
    reads as a miss — the caller never needs to handle cache errors.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def key(self, experiment: str, point: str, code: str,
            config: Mapping[str, Any], seed: int) -> str:
        """SHA-256 entry key over the canonical identity tuple."""
        identity = canonical_json({
            "version": CACHE_VERSION,
            "experiment": experiment,
            "point": point,
            "code": code,
            "config": config,
            "seed": seed,
        })
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()

    def entry_path(self, experiment: str, key: str) -> Path:
        """Where one entry lives: ``<dir>/<experiment>/<key>.json``."""
        return self.directory / experiment / f"{key}.json"

    def get(self, experiment: str, point: str, code: str,
            config: Mapping[str, Any],
            seed: int) -> Optional[Dict[str, Any]]:
        """Cached summary for this exact identity, or ``None``.

        Misses when no entry file exists for the key, the file is
        unreadable or malformed, or the echoed identity fields disagree
        with the request (a hash collision or a hand-edited entry).
        """
        key = self.key(experiment, point, code, config, seed)
        path = self.entry_path(experiment, key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None  # missing, unreadable, or truncated: a miss
        if not isinstance(data, dict):
            return None
        if (data.get("version") != CACHE_VERSION
                or data.get("experiment") != experiment
                or data.get("point") != point
                or data.get("code") != code
                or data.get("seed") != seed):
            return None
        summary = data.get("summary")
        if not isinstance(summary, dict):
            return None
        return summary

    def put(self, experiment: str, point: str, code: str,
            config: Mapping[str, Any], seed: int,
            summary: Mapping[str, Any]) -> None:
        """Store one point's summary, atomically.

        The config and key material are echoed into the entry so a human
        inspecting the cache directory can tell the points apart, and so
        :meth:`get` can reject anything that does not match exactly.
        """
        key = self.key(experiment, point, code, config, seed)
        path = self.entry_path(experiment, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "tool": "repro.xp",
            "experiment": experiment,
            "point": point,
            "code": code,
            "config": dict(config),
            "seed": seed,
            "summary": dict(summary),
        }
        _atomic_write_text(
            path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
