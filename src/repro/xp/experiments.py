"""Registered experiments: the E20/E21/E22 sweeps and the perf probe.

These mirror the shapes in ``benchmarks/bench_e20_fault_campaigns.py``,
``bench_e21_detection_tradeoff.py`` and ``bench_e22_jobs_service.py``,
repackaged as pure ``run(config, seed) -> summary`` functions the fleet
runner can cache and shard.  The bench modules keep their pytest gates
(shape assertions, pytest-benchmark timings); the fleet versions exist
to make *routine* re-measurement cheap — a warm ``python -m repro
fleet`` touches only experiments whose code or config changed.

Two deliberate differences from the benches:

* seeds come from the orchestrator (:func:`repro.xp.spec.point_seed`),
  not hard-coded constants, so every point has an independent
  reproducible stream;
* summaries carry only JSON-able scalars (NaNs mapped to ``None``), so
  canonical-JSON byte identity is a meaningful cache contract.

``code_roots`` name the modules each experiment *drives*; the cache
invalidates a sweep exactly when a file in that closure changes.  An
edit to the definitions in this module itself is signalled by bumping
the ``version`` field carried in every point config.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.units import KILO, MEGA
from repro.xp.analytic import ANALYTIC_EXPERIMENTS
from repro.xp.spec import ExperimentSpec, PointSpec

__all__ = [
    "EXPERIMENTS",
    "e20_run",
    "e21_run",
    "e22_run",
    "e23_run",
    "get_experiments",
    "perf_engine_run",
]

#: E20/E21 share the stencil kernel size and fault plumbing constants.
_STENCIL_ARGS = (("n", 12), ("iterations", 6))
_HEARTBEAT = 1e-4


def _nan_safe(value: float) -> Any:
    """JSON has no NaN: map it to ``None`` for canonical summaries."""
    return None if math.isnan(value) else value


def e20_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E20 point: goodput of one fault campaign under one recovery mode.

    ``config`` carries the scheduled fault count and the checkpoint
    cadence (``1`` = coordinated checkpoints, huge = scratch restart).
    """
    import repro.apps.campaigns  # noqa: F401  (registers the kernels)
    from repro.fault import CampaignSpec, NodeFaultSpec, run_campaign

    faults = int(config["faults"])
    checkpoint_every = int(config["checkpoint_every"])
    times = (6e-4, 1.2e-3, 1.8e-3)
    ranks = (1, 3, 0)
    spec = CampaignSpec(
        kernel="stencil2d", ranks=4,
        name=f"xp-e20-{faults}f-ck{checkpoint_every}",
        app_args=_STENCIL_ARGS,
        node_faults=tuple(NodeFaultSpec(time=times[i], rank=ranks[i])
                          for i in range(faults)),
        checkpoint_every=checkpoint_every,
        checkpoint_write_seconds=1e-4,
        restart_seconds=2e-4,
        seed=seed,
    )
    outcome = run_campaign(spec)
    return {
        "goodput": outcome.goodput,
        "restarts": outcome.faulty.incarnations - 1,
        "commits": outcome.faulty.commits,
        "retransmits": outcome.retries,
        "lost_work_ms": outcome.faulty.lost_work_seconds * KILO,
        "bit_identical": bool(outcome.answers_match),
    }


def e21_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E21 point: one detector configuration against partition + crash."""
    import repro.apps.campaigns  # noqa: F401  (registers the kernels)
    from repro.fault import (
        CampaignSpec,
        LinkFaultSpec,
        NodeFaultSpec,
        run_campaign,
    )
    from repro.health import DetectionSpec

    if config["detector"] == "fixed":
        multiplier = int(config["multiplier"])
        detection = DetectionSpec(
            detector="fixed", heartbeat_interval=_HEARTBEAT,
            suspect_after=multiplier * _HEARTBEAT / 2.0,
            dead_after=multiplier * _HEARTBEAT)
        label = f"fixed-x{multiplier}"
    else:
        detection = DetectionSpec(detector="phi",
                                  heartbeat_interval=_HEARTBEAT)
        label = "phi"
    spec = CampaignSpec(
        kernel="stencil2d", ranks=4, name=f"xp-e21-{label}",
        app_args=_STENCIL_ARGS,
        node_faults=(NodeFaultSpec(time=2.5e-3, rank=2),),
        link_faults=(LinkFaultSpec(start=6e-4, duration=1e-3,
                                   a=("h", 1), b=("s", 0)),),
        checkpoint_write_seconds=1e-4,
        restart_seconds=2e-4,
        seed=seed,
        detection=detection,
    )
    outcome = run_campaign(spec)
    detected = outcome.faulty.detection
    return {
        "deaths": len(detected.detections),
        "false_deaths": detected.false_deaths,
        "mttd_ms": _nan_safe(detected.mttd_seconds * KILO),
        "lost_work_ms": outcome.faulty.lost_work_seconds * KILO,
        "availability": detected.availability,
        "goodput": outcome.goodput,
        "bit_identical": bool(outcome.answers_match),
    }


def e22_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E22 point: the jobs control plane under an SWF trace + faults.

    The trace is generated from the derived seed, round-tripped through
    Standard Workload Format, and scaled to the service's millisecond
    clock — the same pipeline as the bench, minus its fixed seed.
    """
    import numpy as np

    from repro.health import DetectionSpec
    from repro.jobs import (
        DuplicateSubmitSpec,
        JobsCampaignSpec,
        ServiceConfig,
        SupervisorCrashSpec,
        WorkerCrashSpec,
        WorkerStallSpec,
        requests_from_jobs,
        run_jobs_campaign,
    )
    from repro.scheduler import (
        WorkloadGenerator,
        WorkloadParams,
        format_swf,
        parse_swf,
        scale_jobs,
    )
    from repro.sim.rng import RandomStreams

    trace_jobs = int(config["trace_jobs"])
    crash_count = int(config["crashes"])
    params = WorkloadParams(max_nodes=16, offered_load=2.0,
                            runtime_log_mean=float(np.log(2.0)),
                            runtime_log_sigma=0.6,
                            overestimate_max=2.0)
    generator = WorkloadGenerator(params, RandomStreams(seed=seed))
    trace = scale_jobs(
        parse_swf(format_swf(generator.generate(trace_jobs),
                             max_nodes=16)), 1e-3)
    crashes = (WorkerCrashSpec(time=2e-3, host=2),
               WorkerCrashSpec(time=6e-3, host=4))[:crash_count]
    spec = JobsCampaignSpec(
        requests=requests_from_jobs(tuple(trace)),
        name=f"xp-e22-{crash_count}crash",
        service=ServiceConfig(
            workers=4, spare_workers=2,
            detection=DetectionSpec(detector="fixed",
                                    heartbeat_interval=_HEARTBEAT,
                                    suspect_after=3e-4, dead_after=6e-4,
                                    monitor_host=0)),
        worker_crashes=crashes,
        worker_stalls=(WorkerStallSpec(time=3e-3, host=1,
                                       duration=4e-3),),
        supervisor_crashes=(SupervisorCrashSpec(time=4.5e-3,
                                                restart_after=1.5e-3),),
        duplicate_submits=(DuplicateSubmitSpec(time=2.5e-3, index=2),
                           DuplicateSubmitSpec(time=5e-3, index=7)),
        drop_probability=0.02,
        seed=seed,
    )
    outcome = run_jobs_campaign(spec)
    return {
        "completed": outcome.completed,
        "goodput": outcome.goodput,
        "violations": len(outcome.violations),
        "dedup_hits": outcome.dedup_hits,
        "expiries": outcome.expiries,
        "requeues": outcome.requeues,
        "fencing_rejections": outcome.fencing_rejections,
        "supervisor_restarts": outcome.supervisor_restarts,
        "deaths_declared": outcome.deaths_declared,
        "spare_activations": outcome.spare_activations,
    }


def e23_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E23 point: one detector against a crash on a small fat tree.

    The fleet version runs the head-to-head at a few hundred nodes so a
    cold point costs seconds, not minutes; the 10^4-node scorecard stays
    in ``benchmarks/bench_e23_gossip.py``.  Gossip needs a protocol
    period that dwarfs the fabric RTT, so both detectors run at the
    same 10 ms period for a fair MTTD comparison.
    """
    from repro.health import DetectionSpec, GossipMonitor, build_monitor
    from repro.network import Fabric, FatTreeTopology, get_interconnect
    from repro.sim import RandomStreams, Simulator

    detector = str(config["detector"])
    nodes = int(config["nodes"])
    interval = 1e-2
    sim = Simulator()
    fabric = Fabric(sim, FatTreeTopology(nodes),
                    get_interconnect("infiniband_4x"))
    monitor = build_monitor(
        sim, fabric, nodes,
        spec=DetectionSpec(detector=detector,
                           heartbeat_interval=interval,
                           suspect_after=3 * interval,
                           dead_after=6 * interval),
        streams=RandomStreams(seed=seed))
    monitor.start()
    sim.run(until=5 * interval)
    crashed = nodes // 2
    monitor.crash(crashed)
    sim.run(until=20 * interval)
    intervals = sim.now / interval
    summary = {
        "detected": sorted(d.node for d in monitor.deaths
                           if not d.false_positive),
        "false_deaths": sum(1 for d in monitor.deaths
                            if d.false_positive),
        "false_suspicions": monitor.false_suspicions,
        "mttd_ms": _nan_safe(monitor.mttd_seconds() * KILO),
        "messages_sent": monitor.heartbeats_sent,
        "messages_lost": monitor.heartbeats_lost,
    }
    if isinstance(monitor, GossipMonitor):
        stats = monitor.gossip_stats()
        summary["suspicions"] = stats.suspicions
        summary["refutations"] = stats.refutations
        summary["max_node_bytes_per_interval"] = (
            stats.max_node_bytes_sent / intervals)
    return summary


def perf_engine_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Engine throughput probe: drain a same-instant timeout batch.

    A coarse fleet-level tracking number, not a replacement for the
    paired pytest-benchmark gates in ``bench_perf_engine.py``.  Timing
    varies run to run, so the experiment registers as
    ``deterministic=False``: cached like everything else, but excluded
    from divergence verdicts.
    """
    from repro.sim import Simulator

    events = int(config["events"])
    sim = Simulator(queue=str(config["queue"]))
    for _ in range(events):
        sim.timeout(0.0)
    started = time.perf_counter()  # repro: noqa[REP002] host-side throughput measurement, not model time
    sim.run()
    elapsed = time.perf_counter() - started  # repro: noqa[REP002] see above
    return {
        "events": events,
        "seconds": elapsed,
        "events_per_second": events / elapsed if elapsed > 0 else 0.0,
    }


def _e20_points() -> Tuple[PointSpec, ...]:
    points: List[PointSpec] = []
    for faults in (0, 1, 2, 3):
        for mode, every in (("ckpt", 1), ("scratch", int(MEGA))):
            points.append(PointSpec(
                name=f"f{faults}-{mode}",
                config={"version": 1, "faults": faults,
                        "checkpoint_every": every}))
    return tuple(points)


def _e21_points() -> Tuple[PointSpec, ...]:
    points = [PointSpec(name=f"fixed-x{m}",
                        config={"version": 1, "detector": "fixed",
                                "multiplier": m})
              for m in (2, 4, 8, 16)]
    points.append(PointSpec(name="phi",
                            config={"version": 1, "detector": "phi"}))
    return tuple(points)


def _e22_points() -> Tuple[PointSpec, ...]:
    return tuple(PointSpec(name=f"crash{n}",
                           config={"version": 1, "crashes": n,
                                   "trace_jobs": 24})
                 for n in (0, 1, 2))


def _e23_points() -> Tuple[PointSpec, ...]:
    return tuple(PointSpec(name=f"{detector}-n{nodes}",
                           config={"version": 1, "detector": detector,
                                   "nodes": nodes})
                 for detector in ("fixed", "gossip")
                 for nodes in (64, 256))


def _perf_points() -> Tuple[PointSpec, ...]:
    return tuple(PointSpec(name=f"storm-{queue}",
                           config={"version": 1, "queue": queue,
                                   "events": 20_000})
                 for queue in ("heap", "wheel"))


#: The registered fleet, in index order.
EXPERIMENTS: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        name="e20_fault_campaigns",
        run=e20_run,
        points=_e20_points(),
        code_roots=("repro/fault/campaign.py", "repro/apps/campaigns.py"),
        description="goodput vs fault count per recovery mode "
                    "(2D stencil, 4 ranks)",
    ),
    ExperimentSpec(
        name="e21_detection_tradeoff",
        run=e21_run,
        points=_e21_points(),
        code_roots=("repro/fault/campaign.py", "repro/health/__init__.py",
                    "repro/apps/campaigns.py"),
        description="failure-detector timeout vs MTTD and false "
                    "positives",
    ),
    ExperimentSpec(
        name="e22_jobs_service",
        run=e22_run,
        points=_e22_points(),
        code_roots=("repro/jobs/__init__.py",
                    "repro/scheduler/__init__.py"),
        description="lease-based control plane goodput vs crash count "
                    "on an SWF trace",
    ),
    ExperimentSpec(
        name="e23_gossip_membership",
        run=e23_run,
        points=_e23_points(),
        code_roots=("repro/health/gossip.py", "repro/health/monitor.py"),
        description="SWIM gossip vs central heartbeat detection on a "
                    "crash (small-scale; 10^4 scorecard in the bench)",
    ),
    *ANALYTIC_EXPERIMENTS,
    ExperimentSpec(
        name="perf_engine",
        run=perf_engine_run,
        points=_perf_points(),
        code_roots=("repro/sim/engine.py", "repro/sim/equeue.py"),
        deterministic=False,
        description="engine drain throughput probe (timing; excluded "
                    "from divergence checks)",
    ),
)


def get_experiments(
        names: Sequence[str] = ()) -> Tuple[ExperimentSpec, ...]:
    """Resolve experiment names to specs; empty selection means all.

    Unknown names raise :class:`ValueError` listing the registry, so the
    CLI can exit 2 with a useful message.
    """
    if not names:
        return EXPERIMENTS
    by_name = {spec.name: spec for spec in EXPERIMENTS}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        known = ", ".join(spec.name for spec in EXPERIMENTS)
        raise ValueError(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(registered: {known})")
    return tuple(by_name[name] for name in names)
