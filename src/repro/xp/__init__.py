"""Experiment fleet runner with a content-hash result cache.

``repro.xp`` makes re-measuring the experiment suite routine: each
sweep point's summary is cached under ``.repro-xp-cache/`` keyed by
(code fingerprint, canonical config, derived seed), and cache misses
are sharded across a worker-process pool with deterministic per-point
RNG seeds and an order-independent merge.  A warm ``python -m repro
fleet`` on an unchanged tree recomputes nothing; an edit to, say,
``repro/fault/campaign.py`` re-runs exactly the experiments whose
import closure reaches it.

Layering: rank 70, above :mod:`repro.lint` (rank 60) — the fingerprint
reuses the lint engine's import-closure walk — and therefore above
every library package the registered experiments drive.

Modules:

* :mod:`repro.xp.spec` — :class:`ExperimentSpec`/:class:`PointSpec` and
  the per-point seed derivation;
* :mod:`repro.xp.fingerprint` — code fingerprints from the lint
  engine's import closure;
* :mod:`repro.xp.cache` — the per-point result cache;
* :mod:`repro.xp.runner` — the sweep orchestrator;
* :mod:`repro.xp.experiments` — the registered E20/E21/E22 sweeps and
  the engine perf probe;
* :mod:`repro.xp.artifacts` — atomic ``BENCH_*.json`` writing (also
  used by the bench modules);
* :mod:`repro.xp.cli` — ``python -m repro fleet``.
"""

from repro.xp.artifacts import write_bench_artifact
from repro.xp.cache import CACHE_DIR_NAME, ResultCache, canonical_json
from repro.xp.experiments import EXPERIMENTS, get_experiments
from repro.xp.fingerprint import code_fingerprint
from repro.xp.runner import (
    Divergence,
    FleetResult,
    PointResult,
    run_fleet,
)
from repro.xp.spec import ExperimentSpec, PointSpec, point_seed

__all__ = [
    "CACHE_DIR_NAME",
    "Divergence",
    "EXPERIMENTS",
    "ExperimentSpec",
    "FleetResult",
    "PointResult",
    "PointSpec",
    "ResultCache",
    "canonical_json",
    "code_fingerprint",
    "get_experiments",
    "point_seed",
    "run_fleet",
    "write_bench_artifact",
]
