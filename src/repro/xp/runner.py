"""Sweep orchestrator: shard points over a pool, merge order-free.

The same shape :func:`repro.lint.engine.lint_paths` proved for lint —
serve cache hits first, fan the misses out over a process pool, merge
deterministically — applied to experiment points:

1. fingerprint each experiment's code once (:mod:`repro.xp.fingerprint`);
2. look every point up in the :class:`~repro.xp.cache.ResultCache`; hits
   return their stored summary without touching the experiment code;
3. shard the misses across ``jobs`` worker processes.  Tasks are
   ``(run_function, config, derived_seed)`` tuples — the function
   pickles by reference, the seed comes from
   :func:`repro.xp.spec.point_seed`, so a point computes identically
   whichever worker gets it;
4. merge by sorting on ``(experiment, point)`` — the result order never
   depends on pool scheduling, which is what makes ``-j 1`` and
   ``-j 4`` runs byte-identical;
5. store fresh summaries (parent process only — workers never write the
   cache) and compare recomputed summaries against any prior valid
   entry: a mismatch on a deterministic experiment is a
   :class:`Divergence`, the fleet's nonzero-exit signal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.xp.cache import ResultCache, canonical_json
from repro.xp.fingerprint import code_fingerprint
from repro.xp.spec import ExperimentSpec, PointSpec, point_seed

__all__ = ["Divergence", "FleetResult", "PointResult", "run_fleet"]


@dataclass(frozen=True)
class PointResult:
    """Outcome of one sweep point: its summary, and how it was obtained."""

    experiment: str
    point: str
    seed: int
    cached: bool
    summary: Mapping[str, Any]


@dataclass(frozen=True)
class Divergence:
    """A recomputed summary that contradicts the cached bytes.

    Only raised for deterministic experiments: same code fingerprint,
    same config, same seed, different canonical summary means either
    hidden nondeterminism in the experiment or code the fingerprint
    failed to cover — both worth failing the run over.
    """

    experiment: str
    point: str
    cached: str
    computed: str


@dataclass
class FleetResult:
    """Merged outcome of one fleet run."""

    results: List[PointResult]
    divergences: List[Divergence]

    @property
    def points(self) -> int:
        """Total sweep points evaluated or served."""
        return len(self.results)

    @property
    def hits(self) -> int:
        """Points served from the cache."""
        return sum(1 for r in self.results if r.cached)

    @property
    def misses(self) -> int:
        """Points recomputed this run."""
        return self.points - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of points served from the cache (0.0 when empty)."""
        return self.hits / self.points if self.points else 0.0

    @property
    def exit_code(self) -> int:
        """0 when no divergence was detected, 1 otherwise."""
        return 1 if self.divergences else 0

    def summaries(self) -> Dict[str, Dict[str, Mapping[str, Any]]]:
        """Nested ``{experiment: {point: summary}}`` view of the results."""
        merged: Dict[str, Dict[str, Mapping[str, Any]]] = {}
        for result in self.results:
            merged.setdefault(result.experiment, {})[result.point] = \
                result.summary
        return merged


def _run_task(task: Tuple[Any, Dict[str, Any], int]) -> Dict[str, Any]:
    """Pool worker: evaluate one point.

    Module-level so it pickles by reference; the run function inside the
    task does too.  Everything a point needs travels in the task — no
    worker-side registry or initializer state.
    """
    run, config, seed = task
    return dict(run(config, seed))


def run_fleet(specs: Sequence[ExperimentSpec], seed: int = 0,
              cache: Optional[ResultCache] = None, jobs: int = 1,
              serve_hits: bool = True,
              src_root: Optional[Path] = None) -> FleetResult:
    """Evaluate every point of every spec, cached and sharded.

    ``serve_hits=False`` (the CLI's ``--no-cache``) recomputes every
    point but still reads any prior entry for comparison — that is the
    divergence-verification mode — and refreshes the stored entries.
    With ``cache=None`` nothing is read or written and no divergence can
    be reported.  Results are sorted by ``(experiment, point)``
    regardless of ``jobs``.
    """
    fingerprints = {
        spec.name: code_fingerprint(spec.code_roots, src_root)
        for spec in specs
    }
    results: List[PointResult] = []
    pending: List[Tuple[ExperimentSpec, PointSpec, int]] = []
    for spec in specs:
        code = fingerprints[spec.name]
        for point in spec.points:
            derived = point_seed(seed, spec.name, point.name)
            if cache is not None and serve_hits:
                hit = cache.get(spec.name, point.name, code,
                                dict(point.config), derived)
                if hit is not None:
                    results.append(PointResult(
                        experiment=spec.name, point=point.name,
                        seed=derived, cached=True, summary=hit))
                    continue
            pending.append((spec, point, derived))

    tasks = [(spec.run, dict(point.config), derived)
             for spec, point, derived in pending]
    if jobs > 1 and len(tasks) > 1:
        import multiprocessing

        with multiprocessing.Pool(
                processes=min(jobs, len(tasks))) as pool:
            outputs = pool.map(_run_task, tasks, chunksize=1)
    else:
        outputs = [_run_task(task) for task in tasks]

    divergences: List[Divergence] = []
    for (spec, point, derived), raw in zip(pending, outputs):
        # Round-trip through canonical JSON so the stored summary, the
        # in-memory summary, and every future comparison share one byte
        # form (tuples become lists now, not at some later read).
        summary = json.loads(canonical_json(raw))
        code = fingerprints[spec.name]
        if cache is not None:
            prior = cache.get(spec.name, point.name, code,
                              dict(point.config), derived)
            if (prior is not None and spec.deterministic
                    and canonical_json(prior) != canonical_json(summary)):
                divergences.append(Divergence(
                    experiment=spec.name, point=point.name,
                    cached=canonical_json(prior),
                    computed=canonical_json(summary)))
            cache.put(spec.name, point.name, code, dict(point.config),
                      derived, summary)
        results.append(PointResult(
            experiment=spec.name, point=point.name, seed=derived,
            cached=False, summary=summary))

    results.sort(key=lambda r: (r.experiment, r.point))
    return FleetResult(results=results, divergences=divergences)
