"""The code half of the experiment cache key.

An experiment's summary depends on the code it executes: the registered
root modules plus everything they transitively import from this source
tree.  :func:`repro.lint.engine.import_closure` walks that closure via
each module's ``ImportMap`` (the same alias harvesting the lint rules
run on) and returns the per-file SHA-256 set, which
:func:`repro.lint.engine.tree_fingerprint` folds into one digest.

The consequence is the cache's headline behaviour: editing
``repro/fault/campaign.py`` invalidates the E20 and E21 points (their
closures reach it) while the E22 jobs points stay warm — warm fleet
re-runs recompute only experiments whose code or config changed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.lint.engine import import_closure, tree_fingerprint

__all__ = ["code_fingerprint", "default_src_root"]


def default_src_root() -> Path:
    """The directory experiment code roots resolve under.

    In a src-layout checkout this is ``src/`` (so roots read
    ``repro/...``); installed, it is the package's parent directory —
    either way, the anchor both the closure walk and the relative paths
    inside the fingerprint are stable against.
    """
    return Path(__file__).resolve().parent.parent.parent


def code_fingerprint(roots: Sequence[str],
                     src_root: Optional[Path] = None) -> str:
    """Digest of the transitive import closure of ``roots``.

    ``roots`` are POSIX paths relative to ``src_root`` (default:
    :func:`default_src_root`), e.g. ``("repro/fault/campaign.py",)``.
    Any content change to any file in the closure — including files the
    roots only reach indirectly — changes the digest; files outside
    ``src_root`` (stdlib, third party) never enter it.
    """
    base = Path(src_root) if src_root is not None else default_src_root()
    files = [base / root for root in roots]
    return tree_fingerprint(import_closure(files, base))
