"""Experiment specifications: what the fleet runner schedules.

An :class:`ExperimentSpec` names a module-level run function (it must
pickle by reference, because sharded points cross a process-pool
boundary), the sweep points to evaluate it at, and the code roots whose
transitive import closure fingerprints its cache entries
(:mod:`repro.xp.fingerprint`).

Each point's RNG seed is derived, not shared: :func:`point_seed` hashes
``(fleet seed, experiment name, point name)`` so every point gets an
independent, reproducible stream regardless of which worker process
evaluates it or in what order — the property the shard-count
independence test (same seed, ``-j 1`` vs ``-j 4``, identical merged
results) rests on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Tuple

__all__ = ["ExperimentSpec", "PointSpec", "point_seed"]


def point_seed(seed: int, experiment: str, point: str) -> int:
    """Deterministic per-point seed: hash of (fleet seed, names).

    SHA-256 keeps the derivation stable across Python versions and
    processes (no ``hash()`` randomisation), and folding the names in
    means sibling points never share a stream even under the same fleet
    seed.
    """
    text = f"{seed}\x1f{experiment}\x1f{point}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2 ** 31 - 1)


@dataclass(frozen=True)
class PointSpec:
    """One sweep point: a name plus its canonical-JSON-able config.

    ``config`` must survive a JSON round trip (plain dicts, lists,
    strings, numbers, bools): it is part of the cache key and is what
    the run function receives in a worker process.
    """

    name: str
    config: Mapping[str, Any]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment the fleet runner can schedule.

    ``run(config, seed) -> summary`` must be a module-level callable
    returning a JSON-able dict; it executes in a worker process when the
    fleet is sharded.  ``code_roots`` are src-root-relative files whose
    import closure keys the cache (:func:`repro.xp.fingerprint.
    code_fingerprint`).  ``deterministic=False`` marks measurement
    experiments (wall-clock timings) whose summaries legitimately vary
    between runs: they are cached like everything else but excluded from
    divergence verdicts.
    """

    name: str
    run: Callable[[Mapping[str, Any], int], Mapping[str, Any]]
    points: Tuple[PointSpec, ...]
    code_roots: Tuple[str, ...]
    deterministic: bool = True
    description: str = ""
