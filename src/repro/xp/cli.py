"""Command-line front end: ``python -m repro fleet``.

::

    python -m repro fleet                        # run all experiments
    python -m repro fleet e20_fault_campaigns    # one experiment
    python -m repro fleet --list                 # registry + point counts
    python -m repro fleet -j 4                   # shard misses over 4 procs
    python -m repro fleet --no-cache             # recompute + verify
    python -m repro fleet --stats                # hits, misses, wall time
    python -m repro fleet --format json          # machine-readable output

Results are cached per point under ``.repro-xp-cache/`` at the repo
root (see :mod:`repro.xp.cache`), keyed by code fingerprint + canonical
config + derived seed, so a warm run on an unchanged tree recomputes
nothing.  ``--no-cache`` recomputes every point and *verifies* it
against any cached summary: a mismatch on a deterministic experiment is
a divergence and the run exits nonzero.

Every run also refreshes the ``BENCH_xp_fleet.json`` trajectory
artifact at the repo root, atomically (:mod:`repro.xp.artifacts`); its
``experiments`` section holds only the canonical summaries, so warm and
cold artifacts are byte-identical.

Exit status: 0 on success, 1 on summary divergence, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.xp.cache import CACHE_DIR_NAME, ResultCache
from repro.xp.experiments import EXPERIMENTS, get_experiments
from repro.xp.runner import FleetResult, run_fleet

__all__ = ["ARTIFACT_NAME", "add_arguments", "main", "run"]

#: The fleet's trajectory artifact, written at the repo root.
ARTIFACT_NAME = "BENCH_xp_fleet.json"


def _default_root() -> Path:
    """Repo root in a src-layout checkout (mirrors ``repro.lint.cli``)."""
    package_dir = Path(__file__).resolve().parent.parent
    if package_dir.parent.name == "src":
        return package_dir.parent.parent
    return package_dir.parent


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the fleet options to ``parser`` (shared with ``__main__``)."""
    parser.add_argument("experiments", nargs="*",
                        help="experiment names to run (default: all "
                             "registered)")
    parser.add_argument("--list", action="store_true",
                        help="print the experiment registry and exit")
    parser.add_argument("--seed", type=int, default=0,
                        help="fleet seed; per-point seeds are derived "
                             "from it (default: 0)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every point and verify against "
                             "cached summaries (divergence exits 1)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help=f"cache directory (default: {CACHE_DIR_NAME} "
                             f"at the repo root)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes for cache misses (0 = one "
                             "per CPU; results are identical to serial)")
    parser.add_argument("--stats", action="store_true",
                        help="report points, cache hits, and wall time")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--artifact", type=Path, default=None,
                        help=f"trajectory artifact path (default: "
                             f"{ARTIFACT_NAME} at the repo root)")
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing the trajectory artifact")


def _render_text(result: FleetResult, elapsed: Optional[float]) -> str:
    lines = []
    for point in result.results:
        origin = "cached" if point.cached else "ran"
        lines.append(f"{point.experiment}/{point.point}: {origin}")
    for divergence in result.divergences:
        lines.append(
            f"DIVERGENCE {divergence.experiment}/{divergence.point}: "
            f"cached {divergence.cached} != computed "
            f"{divergence.computed}")
    lines.append(f"{result.points} point(s), {result.hits} cached "
                 f"({result.hit_rate:.0%}), "
                 f"{len(result.divergences)} divergence(s)")
    if elapsed is not None:
        lines.append(f"stats: {result.misses} recomputed, wall time "
                     f"{elapsed:.3f}s")
    return "\n".join(lines)


def _render_json(result: FleetResult, elapsed: Optional[float]) -> str:
    payload = {
        "experiments": result.summaries(),
        "points": result.points,
        "cache_hits": result.hits,
        "cache_hit_rate": round(result.hit_rate, 4),
        "divergences": [
            {"experiment": d.experiment, "point": d.point,
             "cached": d.cached, "computed": d.computed}
            for d in result.divergences
        ],
    }
    if elapsed is not None:
        payload["stats"] = {
            "recomputed": result.misses,
            "wall_time_seconds": round(elapsed, 6),
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def _write_artifact(result: FleetResult, seed: int, path: Path) -> None:
    """Refresh the trajectory artifact (atomic; summaries only).

    Wall-clock stats stay out of the payload so a warm re-run rewrites
    byte-identical content — the artifact tracks *results* across PRs,
    not how long one machine took to produce them.
    """
    from repro.xp.artifacts import write_bench_artifact

    payload = {
        "benchmark_module": "xp_fleet",
        "seed": seed,
        "experiments": result.summaries(),
    }
    write_bench_artifact(path, payload, required=("experiments",))


def run(args: argparse.Namespace) -> int:
    """Execute a parsed fleet invocation and print its report."""
    if args.list:
        for spec in EXPERIMENTS:
            kind = "" if spec.deterministic else " [timing]"
            print(f"{spec.name}  ({len(spec.points)} points){kind}  "
                  f"{spec.description}")
        return 0

    started = time.perf_counter()  # repro: noqa[REP002] host-side tool; --stats times the fleet run itself, not the model

    try:
        specs = get_experiments(args.experiments)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    jobs = args.jobs
    if jobs == 0:
        import os
        jobs = os.cpu_count() or 1
    if jobs < 1:
        print(f"error: --jobs must be >= 0, got {args.jobs}",
              file=sys.stderr)
        return 2

    root = _default_root()
    cache = ResultCache(args.cache_dir or (root / CACHE_DIR_NAME))
    result = run_fleet(specs, seed=args.seed, cache=cache, jobs=jobs,
                       serve_hits=not args.no_cache)
    elapsed = time.perf_counter() - started  # repro: noqa[REP002] see above: wall time of the fleet run itself

    if not args.no_artifact:
        _write_artifact(result, args.seed,
                        args.artifact or (root / ARTIFACT_NAME))

    stats_elapsed = elapsed if args.stats else None
    if args.format == "json":
        print(_render_json(result, stats_elapsed))
    else:
        print(_render_text(result, stats_elapsed))
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.xp.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="experiment fleet runner with content-hash result "
                    "cache",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))
