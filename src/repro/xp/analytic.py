"""The analytic E01–E17 benches, repackaged as fleet experiments.

ROADMAP item 4 left one piece of headroom: the original paper-claim
benches (technology curves, petaflops crossings, rooflines, scheduling
grids, checkpoint ablations, fleet procurement …) lived only as pytest
benchmarks, outside the fleet runner's cache.  This module registers a
compact fleet version of each — same library calls, reduced sizes —
so ``python -m repro fleet`` re-measures the whole paper surface and a
warm run touches only experiments whose code actually changed.

Conventions (shared with :mod:`repro.xp.experiments`):

* every run function is module-level and picklable, takes
  ``(config, seed)`` and returns a flat JSON-able dict;
* purely analytic experiments ignore ``seed`` (closed-form models have
  no randomness to seed); simulation-backed ones feed it through
  :class:`~repro.sim.rng.RandomStreams`;
* ``code_roots`` name the library modules each experiment drives, so
  cache invalidation tracks the right import closures;
* an edit to the definitions here is signalled by bumping the
  ``version`` field in the point configs.

The pytest benches keep their richer shape assertions and report
rendering; these summaries exist for cheap routine re-measurement, not
as a replacement.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from repro.units import GIB, GIGA, KIB, KILO, MEGA, MIB, PETA, TERA
from repro.xp.spec import ExperimentSpec, PointSpec

__all__ = [
    "ANALYTIC_EXPERIMENTS",
    "e01_run",
    "e02_run",
    "e03_run",
    "e04_run",
    "e05_run",
    "e06_run",
    "e07_run",
    "e08_run",
    "e09_run",
    "e10_run",
    "e11_run",
    "e12_run",
    "e13_run",
    "e14_run",
    "e15_run",
    "e16_run",
    "e17_run",
]

#: The era's reliability rule of thumb: three years per node.
_NODE_MTBF = 3 * 365.25 * 86400.0


def e01_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E01 point: one scenario's technology curves, as endpoint ratios.

    Summarizes each quantity by its total growth (or decline) factor
    over the projection span — the headline number the keynote's
    figures carry.
    """
    from repro.tech import get_scenario, technology_curve

    roadmap = get_scenario(str(config["scenario"]))
    years = [float(y) for y in range(2003, 2011)]
    summary: Dict[str, Any] = {"first_year": years[0],
                               "last_year": years[-1]}
    for quantity in ("node_peak_flops", "node_memory_bytes",
                     "dollars_per_flops", "watts_per_flops"):
        curve = technology_curve(roadmap, quantity, years)
        summary[f"{quantity}_factor"] = float(curve[-1] / curve[0])
    return summary


def e02_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E02 point: first year one budget buys a peak petaflops."""
    from repro.cluster import design_to_budget
    from repro.tech import get_scenario

    roadmap = get_scenario(str(config["scenario"]))
    budget = float(config["budget"])
    target = PETA

    def peak_at(year: float) -> float:
        return design_to_budget(budget, roadmap, year,
                                "conventional").peak_flops

    low, high = 2003.0, 2020.0
    if peak_at(high) < target:
        return {"crossing_year": None, "nodes_at_crossing": None}
    for _ in range(40):
        mid = (low + high) / 2.0
        if peak_at(mid) >= target:
            high = mid
        else:
            low = mid
    spec = design_to_budget(budget, roadmap, high, "conventional")
    return {"crossing_year": high,
            "nodes_at_crossing": spec.node_count}


def e03_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E03 point: one node architecture's roofline scorecard in 2006."""
    from repro.nodes import REFERENCE_KERNELS, RooflineModel, make_node
    from repro.tech import get_scenario

    node = make_node(str(config["architecture"]),
                     get_scenario("nominal"), 2006.0)
    model = RooflineModel(node)
    summary: Dict[str, Any] = {
        "gflops_per_watt": node.flops_per_watt / GIGA,
        "gflops_per_dollar": node.flops_per_dollar / GIGA,
        "machine_balance": node.machine_balance,
    }
    for kernel in REFERENCE_KERNELS:
        summary[f"attainable_{kernel.name}_gflops"] = (
            model.attainable_flops(kernel) / GIGA)
    return summary


def e04_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E04 point: ping-pong latency and bandwidth for one technology."""
    import numpy as np

    from repro.messaging import run_spmd

    technology = str(config["technology"])
    reps = 3

    def pingpong(comm: Any, nbytes: int) -> Any:
        payload = np.zeros(nbytes, dtype=np.uint8)
        yield from comm.sendrecv(payload, 1 - comm.rank)
        start = comm.sim.now
        for _ in range(reps):
            if comm.rank == 0:
                yield from comm.send(payload, 1, tag=1)
                payload = yield from comm.recv(1, tag=2)
            else:
                payload = yield from comm.recv(0, tag=1)
                yield from comm.send(payload, 0, tag=2)
        return (comm.sim.now - start) / (2 * reps)

    def half_rtt(nbytes: int) -> float:
        outcome = run_spmd(2, pingpong, nbytes, technology=technology)
        return float(outcome.results[0])

    large = MIB
    return {
        "latency_0b_us": half_rtt(0) * MEGA,
        "latency_1k_us": half_rtt(KIB) * MEGA,
        "bandwidth_1m_mb_s": large / half_rtt(large) / MEGA,
    }


def e05_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E05 point: one app's 8-rank speedup on slow vs fast fabric."""
    from repro.apps import ComputeCharge, run_cg, run_fft2d, run_stencil

    app = str(config["app"])
    ranks = 8
    charge = ComputeCharge(effective_flops=3e9)

    def elapsed(p: int, technology: str) -> float:
        if app == "stencil":
            return run_stencil(
                p, n=1024,  # repro: noqa[REP003] grid side, not bytes
                iterations=2, charge=charge,
                technology=technology).elapsed
        if app == "cg":
            return run_cg(p, n=65536, max_iterations=10, tolerance=0.0,
                          charge=charge, technology=technology).elapsed
        return run_fft2d(p, n=256, charge=charge,
                         technology=technology).elapsed

    summary: Dict[str, Any] = {}
    for technology in ("fast_ethernet", "infiniband_4x"):
        summary[f"speedup_{technology}"] = (
            elapsed(1, technology) / elapsed(ranks, technology))
    summary["fabric_gain"] = (summary["speedup_infiniband_4x"]
                              / summary["speedup_fast_ethernet"])
    return summary


def e06_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E06 point: density/power of a 100 TF design per architecture."""
    from repro.cluster import cluster_metrics, design_to_peak
    from repro.tech import get_scenario

    spec = design_to_peak(100e12, get_scenario("nominal"), 2006.0,
                          str(config["architecture"]), "infiniband_4x")
    metrics = cluster_metrics(spec)
    return {
        "nodes": spec.node_count,
        "racks": metrics.packaging.racks,
        "total_megawatts": metrics.total_watts / MEGA,
        "floor_area_m2": metrics.packaging.floor_area_m2,
        "dollars_per_gflops": metrics.dollars_per_flops * GIGA,
    }


def e07_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E07 point: one batch policy on a 128-node machine at 0.85 load."""
    from repro.scheduler import (
        BatchSimulator,
        WorkloadGenerator,
        WorkloadParams,
        evaluate_schedule,
        get_policy,
    )
    from repro.sim.rng import RandomStreams

    nodes = 128
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=nodes, offered_load=0.85),
        RandomStreams(seed=seed))
    jobs = generator.generate(400)
    policy = str(config["policy"])
    metrics = evaluate_schedule(
        BatchSimulator(nodes, get_policy(policy)).run(jobs))
    return {
        "utilization": metrics.utilization,
        "mean_bounded_slowdown": metrics.mean_bounded_slowdown,
    }


def e08_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E08 point: checkpoint efficiency at one machine scale, analytic
    Daly bound plus a short Monte-Carlo cross-check."""
    import numpy as np

    from repro.fault import (
        CheckpointParams,
        ExponentialFailures,
        daly_interval,
        efficiency,
        simulate_checkpoint_run,
    )
    from repro.fault.models import system_mtbf
    from repro.sim.rng import RandomStreams

    nodes = int(config["nodes"])
    mtbf = system_mtbf(_NODE_MTBF, nodes)
    params = CheckpointParams(300.0, 600.0, mtbf)
    tau = daly_interval(params)
    runs = [simulate_checkpoint_run(24 * 3600.0, params, tau,
                                    ExponentialFailures(mtbf),
                                    RandomStreams(seed), rep)
            for rep in range(3)]
    return {
        "system_mtbf_hours": mtbf / 3600.0,
        "daly_interval_seconds": tau,
        "analytic_efficiency": efficiency(params, tau),
        "monte_carlo_efficiency": float(
            np.mean([r.efficiency for r in runs])),
    }


def e09_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E09 point: useful-work fraction per checkpoint strategy at one
    machine scale."""
    import math

    from repro.fault import (
        CheckpointParams,
        daly_interval,
        expected_runtime,
        young_interval,
    )
    from repro.fault.models import system_mtbf

    nodes = int(config["nodes"])
    work = 24 * 3600.0
    restart = 600.0
    mtbf = system_mtbf(_NODE_MTBF, nodes)
    params = CheckpointParams(300.0, restart, mtbf)

    def useful(interval: float) -> float:
        return work / expected_runtime(params, work, interval)

    return {
        "none": work / ((mtbf + restart) * math.expm1(work / mtbf)),
        "hourly": useful(3600.0),
        "young": useful(young_interval(params)),
        "daly": useful(daly_interval(params)),
    }


def e10_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E10 point: PIM-vs-conventional roofline crossover in 2006."""
    import numpy as np

    from repro.nodes import RooflineModel, make_node
    from repro.tech import get_scenario

    roadmap = get_scenario("nominal")
    intensities = np.logspace(-2, 2, 33)
    curves = {name: RooflineModel(make_node(name, roadmap, 2006.0))
              .attainable_curve(intensities)
              for name in ("pim", "conventional")}
    pim_wins = curves["pim"] > curves["conventional"]
    crossover = float(intensities[int(np.argmin(pim_wins))])
    return {
        "crossover_intensity": crossover,
        "pim_low_intensity_gain": float(
            curves["pim"][0] / curves["conventional"][0]),
        "conventional_peak_gflops": float(
            curves["conventional"][-1] / GIGA),
    }


def e11_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E11 point: cluster $/GFLOPS and the SoC TCO edge in one year."""
    from repro.cluster import (
        CostModel,
        cluster_metrics,
        design_cluster,
        pack_cluster,
    )
    from repro.tech import get_scenario

    year = float(config["year"])
    roadmap = get_scenario("nominal")
    cost_model = CostModel()
    summary: Dict[str, Any] = {}
    for architecture in ("conventional", "soc"):
        spec = design_cluster("xp-e11", roadmap, year, 512, architecture,
                              "infiniband_4x")
        packaging = pack_cluster(spec)
        peak = cluster_metrics(spec).peak_flops
        summary[f"{architecture}_purchase_per_gflops"] = (
            cost_model.purchase(spec, packaging).total_dollars
            / peak * GIGA)
        summary[f"{architecture}_tco4_per_gflops"] = (
            cost_model.tco(spec, packaging, 4.0) / peak * GIGA)
    return summary


def e12_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E12 point: HPL Rmax trajectory for one budget class."""
    from repro.apps import HplModel
    from repro.cluster import design_to_budget
    from repro.tech import get_scenario

    budget = float(config["budget"])
    roadmap = get_scenario("nominal")
    model = HplModel()

    def rmax(year: float) -> float:
        spec = design_to_budget(budget, roadmap, year, "conventional")
        return model.estimate(spec).rmax_flops

    first, last = 2003.0, 2011.0
    first_rmax = rmax(first)
    last_rmax = rmax(last)
    span = last - first
    return {
        "rmax_2003_tflops": first_rmax / TERA,
        "rmax_2011_tflops": last_rmax / TERA,
        "growth_per_year": (last_rmax / first_rmax) ** (1.0 / span),
    }


def e13_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E13 point: one ablation family (collective algorithms, fabric
    contention, or backfill policies)."""
    import numpy as np

    from repro.messaging import SUM, run_spmd
    from repro.network import FatTreeTopology
    from repro.scheduler import (
        BatchSimulator,
        WorkloadGenerator,
        WorkloadParams,
        evaluate_schedule,
        get_policy,
    )
    from repro.sim.rng import RandomStreams

    family = str(config["family"])
    if family == "collective":
        def body(comm: Any, algorithm: str) -> Any:
            vector = np.zeros(1024)  # repro: noqa[REP003] element count
            start = comm.sim.now
            for _ in range(3):
                yield from comm.allreduce(vector, SUM,
                                          algorithm=algorithm)
            return (comm.sim.now - start) / 3

        return {
            f"allreduce_8k_{algorithm}_us": max(
                run_spmd(16, body, algorithm,
                         technology="infiniband_4x").results) * MEGA
            for algorithm in ("recursive_doubling", "ring",
                              "rabenseifner")
        }
    if family == "contention":
        def alltoall(comm: Any) -> Any:
            payload = [np.zeros(1 << 14, dtype=np.uint8)
                       for _ in range(comm.size)]
            start = comm.sim.now
            yield from comm.alltoall(payload)
            return comm.sim.now - start

        full = max(run_spmd(
            16, alltoall, technology="infiniband_4x",
            topology=FatTreeTopology(16, hosts_per_leaf=4),
            contention=True).results)
        tapered = max(run_spmd(
            16, alltoall, technology="infiniband_4x",
            topology=FatTreeTopology(16, hosts_per_leaf=4, spines=1),
            contention=True).results)
        return {"alltoall_full_us": full * MEGA,
                "alltoall_4to1_us": tapered * MEGA,
                "taper_slowdown": tapered / full}
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=128, offered_load=0.9),
        RandomStreams(seed=seed))
    jobs = generator.generate(300)
    return {
        f"{policy}_utilization": evaluate_schedule(
            BatchSimulator(128, get_policy(policy)).run(jobs)).utilization
        for policy in ("fcfs", "easy", "conservative")
    }


def e14_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E14 point: the checkpoint I/O wall at one machine scale, fixed
    vs scaled I/O provisioning."""
    from repro.fault import daly_interval, efficiency
    from repro.io import DiskModel, derive_checkpoint_params
    from repro.network import get_interconnect

    nodes = int(config["nodes"])
    link = get_interconnect("infiniband_4x").loggp.bandwidth
    raid = DiskModel(transfer_bytes_per_second=160e6,
                     capacity_bytes=320e9)
    summary: Dict[str, Any] = {"nodes": nodes}
    for label, servers in (("fixed", 16), ("scaled",
                                           max(16, nodes // 16))):
        params = derive_checkpoint_params(
            2 * GIB, nodes, servers, link, _NODE_MTBF, disk=raid)
        summary[f"{label}_servers"] = servers
        summary[f"{label}_write_seconds"] = params.checkpoint_seconds
        summary[f"{label}_efficiency"] = efficiency(
            params, daly_interval(params))
    return summary


def e15_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E15 point: EASY backfilling on a failing 1024-node machine at
    one node-MTBF, scratch restart vs hourly checkpoints."""
    from repro.scheduler import (
        FaultyBatchSimulator,
        WorkloadGenerator,
        WorkloadParams,
        get_policy,
    )
    from repro.sim.rng import RandomStreams

    nodes = 1024  # repro: noqa[REP003] machine size in nodes, not bytes
    mtbf_seconds = float(config["mtbf_years"]) * 365.25 * 86400.0
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=nodes, offered_load=0.8),
        RandomStreams(seed=seed))
    jobs = generator.generate(200)
    summary: Dict[str, Any] = {}
    for label, interval in (("scratch", None), ("hourly", 3600.0)):
        result = FaultyBatchSimulator(
            nodes, get_policy("easy"),
            node_mtbf_seconds=mtbf_seconds,
            repair_seconds=1800.0,
            checkpoint_interval=interval,
            streams=RandomStreams(seed=seed)).run(jobs)
        summary[f"{label}_goodput"] = result.goodput_utilization
        summary[f"{label}_kills"] = result.job_kills
    return summary


def e16_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E16 point: the model's trajectory vs the public record."""
    import numpy as np

    from repro.analysis.scaling import fit_serial_fraction
    from repro.apps import ComputeCharge, HplModel, run_stencil
    from repro.cluster import design_to_budget
    from repro.tech import get_scenario
    from repro.tech.history import (
        first_commodity_petaflops_year,
        historical_slope,
    )

    roadmap = get_scenario("nominal")
    model = HplModel()
    years = np.arange(2003.0, 2012.0, 1.0)
    rmax = np.array([
        model.estimate(design_to_budget(100e6, roadmap, year,
                                        "conventional")).rmax_flops
        for year in years])
    slope = float(np.exp(np.polyfit(years, np.log(rmax), 1)[0]))
    crossing = float(np.interp(np.log(PETA), np.log(rmax), years))

    ranks = [1, 4, 8]
    charge = ComputeCharge(effective_flops=3e9)
    times = {p: run_stencil(p, n=512, iterations=2, charge=charge,
                            technology="infiniband_4x").elapsed
             for p in ranks}
    serial_fraction, rms = fit_serial_fraction(
        ranks, [times[1] / times[p] for p in ranks])
    return {
        "model_slope": slope,
        "model_crossing_year": crossing,
        "record_slope": historical_slope(),
        "record_crossing_year": first_commodity_petaflops_year(),
        "stencil_serial_fraction": serial_fraction,
        "fit_rms": rms,
    }


def e17_run(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E17 point: one procurement strategy's fleet trajectory."""
    from repro.cluster import simulate_fleet, time_averaged_peak
    from repro.tech import get_scenario

    strategy = str(config["strategy"])
    roadmap = get_scenario("nominal")
    if strategy == "rolling":
        timeline = simulate_fleet(roadmap, 2003.0, 2010.0, 2e6,
                                  strategy="rolling",
                                  lifetime_years=4.0)
    else:
        timeline = simulate_fleet(roadmap, 2003.0, 2010.0, 2e6,
                                  strategy="forklift",
                                  forklift_interval_years=3.0)
    return {
        "time_avg_peak_tflops": time_averaged_peak(timeline) / TERA,
        "final_peak_tflops": timeline[-1].peak_flops / TERA,
        "max_cohorts": max(fy.cohort_count for fy in timeline),
        "final_power_kw": timeline[-1].power_watts / KILO,
    }


def _points(*names_and_configs: Tuple[str, Dict[str, Any]]
            ) -> Tuple[PointSpec, ...]:
    """Point list helper: versioned configs, stable order."""
    return tuple(PointSpec(name=name, config={"version": 1, **config})
                 for name, config in names_and_configs)


def _scenario_points() -> Tuple[PointSpec, ...]:
    return _points(*((scenario, {"scenario": scenario})
                     for scenario in ("conservative", "nominal",
                                      "aggressive")))


def _spec(name: str, run: Any, points: Tuple[PointSpec, ...],
          code_roots: Tuple[str, ...],
          description: str) -> ExperimentSpec:
    """One analytic experiment spec (they are all deterministic)."""
    return ExperimentSpec(name=name, run=run, points=points,
                          code_roots=code_roots,
                          description=description)


#: The analytic paper-claim experiments, in bench order.
ANALYTIC_EXPERIMENTS: Tuple[ExperimentSpec, ...] = (
    _spec("e01_tech_curves", e01_run, _scenario_points(),
          ("repro/tech/__init__.py",),
          "technology curve growth factors per scenario"),
    _spec("e02_petaflops_crossing", e02_run,
          _points(*((f"{scenario}-20m",
                     {"scenario": scenario, "budget": 20e6})
                    for scenario in ("conservative", "nominal",
                                     "aggressive"))),
          ("repro/cluster/__init__.py", "repro/tech/__init__.py"),
          "first year a $20M budget buys a peak petaflops"),
    _spec("e03_node_architectures", e03_run,
          _points(*((arch, {"architecture": arch})
                    for arch in ("conventional", "smp", "blade",
                                 "soc", "pim"))),
          ("repro/nodes/__init__.py", "repro/tech/__init__.py"),
          "2006 node-architecture roofline scorecard"),
    _spec("e04_interconnects", e04_run,
          _points(*((tech, {"technology": tech})
                    for tech in ("fast_ethernet", "gigabit_ethernet",
                                 "myrinet_2000", "infiniband_4x",
                                 "optical_circuit"))),
          ("repro/messaging/__init__.py", "repro/network/__init__.py"),
          "measured ping-pong latency/bandwidth per interconnect"),
    _spec("e05_app_scaling", e05_run,
          _points(*((app, {"app": app})
                    for app in ("stencil", "cg", "fft"))),
          ("repro/apps/__init__.py",),
          "8-rank app speedup, slow vs fast fabric"),
    _spec("e06_density", e06_run,
          _points(*((arch, {"architecture": arch})
                    for arch in ("conventional", "smp", "blade",
                                 "soc"))),
          ("repro/cluster/__init__.py",),
          "100 TF design density/power per architecture"),
    _spec("e07_scheduling", e07_run,
          _points(*((policy, {"policy": policy})
                    for policy in ("fcfs", "sjf", "easy",
                                   "conservative"))),
          ("repro/scheduler/__init__.py",),
          "batch policy utilization/slowdown at 0.85 load"),
    _spec("e08_fault_scale", e08_run,
          _points(*((f"n{nodes}", {"nodes": nodes})
                    for nodes in (1_000, 10_000, 100_000))),
          ("repro/fault/__init__.py",),
          "checkpoint efficiency vs machine scale (analytic + MC)"),
    _spec("e09_checkpoint_ablation", e09_run,
          _points(*((f"n{nodes}", {"nodes": nodes})
                    for nodes in (1_000, 10_000, 100_000))),
          ("repro/fault/__init__.py",),
          "useful-work fraction per checkpoint strategy"),
    _spec("e10_pim_ablation", e10_run,
          _points(("nominal-2006", {})),
          ("repro/nodes/__init__.py",),
          "PIM-vs-conventional roofline crossover"),
    _spec("e11_cost_performance", e11_run,
          _points(*((f"y{int(year)}", {"year": year})
                    for year in (2004.0, 2008.0))),
          ("repro/cluster/__init__.py",),
          "$/GFLOPS purchase and 4-year TCO, conventional vs SoC"),
    _spec("e12_top500_extrapolation", e12_run,
          _points(("lab-100m", {"budget": 100e6}),
                  ("department-2m", {"budget": 2e6})),
          ("repro/apps/__init__.py", "repro/cluster/__init__.py"),
          "HPL Rmax trajectory per budget class"),
    _spec("e13_ablations", e13_run,
          _points(*((family, {"family": family})
                    for family in ("collective", "contention",
                                   "backfill"))),
          ("repro/messaging/__init__.py",
           "repro/scheduler/__init__.py",
           "repro/network/__init__.py"),
          "collective/contention/backfill ablation families"),
    _spec("e14_checkpoint_io_wall", e14_run,
          _points(*((f"n{nodes}", {"nodes": nodes})
                    for nodes in (1_024, 16_384))),  # repro: noqa[REP003] node counts
          ("repro/io/__init__.py", "repro/fault/__init__.py"),
          "checkpoint I/O wall, fixed vs scaled I/O servers"),
    _spec("e15_fault_aware_operation", e15_run,
          _points(*((f"mtbf{label}", {"mtbf_years": years})
                    for label, years in (("2y", 2.0), ("3m", 0.25)))),
          ("repro/scheduler/__init__.py",),
          "EASY backfilling on a failing machine, per node MTBF"),
    _spec("e16_history_validation", e16_run,
          _points(("nominal", {})),
          ("repro/tech/history.py", "repro/analysis/scaling.py",
           "repro/apps/__init__.py"),
          "model trajectory vs the public record"),
    _spec("e17_fleet_evolution", e17_run,
          _points(("rolling", {"strategy": "rolling"}),
                  ("forklift-3y", {"strategy": "forklift"})),
          ("repro/cluster/__init__.py",),
          "fleet procurement strategies (rolling vs forklift)"),
)
