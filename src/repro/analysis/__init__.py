"""Reporting utilities shared by benchmarks and examples.

Pure presentation + statistics: no imports from the simulation layers, so
report code can never perturb an experiment.

Public surface
--------------
:class:`Table`
    Column-aware ASCII table builder (every bench prints through it).
:class:`Series`
    A named (x, y) curve with tabular rendering.
:func:`summarize` / :func:`confidence_interval` / :func:`geometric_mean`
    Replication statistics.
:class:`ExperimentReport`
    Uniform experiment header/claim/table/notes block.
"""

from repro.analysis.tables import Table
from repro.analysis.series import Series, render_series
from repro.analysis.stats import (
    SummaryStats,
    confidence_interval,
    geometric_mean,
    speedup_curve,
    summarize,
)
from repro.analysis.report import ExperimentReport

__all__ = [
    "ExperimentReport",
    "Series",
    "SummaryStats",
    "Table",
    "confidence_interval",
    "geometric_mean",
    "render_series",
    "speedup_curve",
    "summarize",
]
