"""Replication statistics for stochastic experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "SummaryStats",
    "summarize",
    "confidence_interval",
    "geometric_mean",
    "speedup_curve",
]


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread and a t-based confidence interval."""

    mean: float
    std: float
    count: int
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def ci_halfwidth(self) -> float:
        """Half the confidence-interval width."""
        return (self.ci_high - self.ci_low) / 2.0

    @property
    def relative_halfwidth(self) -> float:
        """CI half-width over mean — the usual stopping criterion."""
        if self.mean == 0:
            return float("inf")
        return self.ci_halfwidth / abs(self.mean)


def summarize(samples: Sequence[float],
              confidence: float = 0.95) -> SummaryStats:
    """Mean/std plus a Student-t confidence interval on the mean."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("no samples")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    mean = float(values.mean())
    if values.size == 1:
        return SummaryStats(mean=mean, std=0.0, count=1,
                            ci_low=mean, ci_high=mean,
                            confidence=confidence)
    std = float(values.std(ddof=1))
    halfwidth = (std / np.sqrt(values.size)
                 * _scipy_stats.t.ppf((1 + confidence) / 2.0,
                                      values.size - 1))
    return SummaryStats(
        mean=mean, std=std, count=int(values.size),
        ci_low=mean - float(halfwidth), ci_high=mean + float(halfwidth),
        confidence=confidence,
    )


def confidence_interval(samples: Sequence[float],
                        confidence: float = 0.95) -> Tuple[float, float]:
    """Just the (low, high) t-interval on the mean."""
    summary = summarize(samples, confidence)
    return summary.ci_low, summary.ci_high


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean — the right average for speedup ratios."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("no samples")
    if np.any(values <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


def speedup_curve(baseline_time: float,
                  times: Sequence[float]) -> np.ndarray:
    """Speedups vs one baseline time (elementwise baseline/t)."""
    values = np.asarray(list(times), dtype=float)
    if baseline_time <= 0 or np.any(values <= 0):
        raise ValueError("times must be positive")
    return baseline_time / values
