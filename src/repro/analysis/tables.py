"""ASCII tables, the output format of every benchmark.

Deliberately dependency-free: a :class:`Table` takes column names, accepts
rows of values (formatted per column or with a default), and renders with
aligned separators.  Numeric cells right-align; text left-aligns.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["Table"]


def _default_format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


class Table:
    """Column-aware table builder.

    >>> t = Table(["year", "peak"], formats={"peak": "{:.1f}"})
    >>> t.add_row([2002, 9.6]); t.add_row([2010, 274.0])
    >>> print(t.render())          # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str],
                 formats: Optional[Dict[str, Any]] = None,
                 title: str = "") -> None:
        if not columns:
            raise ValueError("table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {list(columns)}")
        self.columns = list(columns)
        self.title = title
        self._formats: Dict[str, Callable[[Any], str]] = {}
        for name, fmt in (formats or {}).items():
            if name not in self.columns:
                raise KeyError(f"format for unknown column {name!r}")
            self._formats[name] = (
                fmt if callable(fmt) else lambda v, _f=fmt: _f.format(v)
            )
        self._rows: List[List[str]] = []
        self._numeric: List[bool] = [True] * len(self.columns)

    def add_row(self, values: Sequence[Any]) -> None:
        """Append a row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells; table has "
                f"{len(self.columns)} columns"
            )
        cells = []
        for index, (name, value) in enumerate(zip(self.columns, values)):
            formatter = self._formats.get(name, _default_format)
            cells.append(formatter(value))
            if not isinstance(value, (int, float)):
                self._numeric[index] = False
        self._rows.append(cells)

    def add_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(row)

    def __len__(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """The aligned ASCII table as one string."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            parts = []
            for index, cell in enumerate(cells):
                if self._numeric[index]:
                    parts.append(cell.rjust(widths[index]))
                else:
                    parts.append(cell.ljust(widths[index]))
            return "  ".join(parts).rstrip()

        rule = "  ".join("-" * w for w in widths)
        out: List[str] = []
        if self.title:
            out.append(self.title)
        out.append(line(self.columns))
        out.append(rule)
        out.extend(line(row) for row in self._rows)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
