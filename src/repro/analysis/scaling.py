"""Speedup laws: Amdahl, Gustafson, Karp-Flatt, isoefficiency.

The analytical vocabulary of the scalability debates the keynote sits in:

* :func:`amdahl_speedup` — fixed problem, serial fraction caps speedup;
* :func:`gustafson_speedup` — scaled problem, the petaflops-era answer;
* :func:`karp_flatt` — the *experimentally determined* serial fraction,
  the standard diagnostic for measured speedup curves (our app kernels'
  curves included);
* :func:`fit_serial_fraction` — least-squares Amdahl fit to a curve;
* :func:`isoefficiency_problem_size` — how fast the problem must grow to
  hold efficiency as ranks grow, given a parallel-overhead exponent.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "amdahl_speedup",
    "gustafson_speedup",
    "karp_flatt",
    "fit_serial_fraction",
    "isoefficiency_problem_size",
]


def _check_fraction(serial_fraction: float) -> None:
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial fraction must be in [0, 1], got "
                         f"{serial_fraction}")


def _check_ranks(ranks) -> np.ndarray:
    array = np.asarray(ranks, dtype=float)
    if np.any(array < 1):
        raise ValueError("rank counts must be >= 1")
    return array


def amdahl_speedup(serial_fraction: float, ranks) -> np.ndarray:
    """Fixed-size speedup: ``1 / (f + (1-f)/p)``."""
    _check_fraction(serial_fraction)
    p = _check_ranks(ranks)
    result = 1.0 / (serial_fraction + (1.0 - serial_fraction) / p)
    return result if result.ndim else float(result)


def gustafson_speedup(serial_fraction: float, ranks) -> np.ndarray:
    """Scaled-size speedup: ``p - f (p - 1)``."""
    _check_fraction(serial_fraction)
    p = _check_ranks(ranks)
    result = p - serial_fraction * (p - 1.0)
    return result if result.ndim else float(result)


def karp_flatt(speedup: float, ranks: int) -> float:
    """Experimentally determined serial fraction:
    ``(1/S - 1/p) / (1 - 1/p)``.

    A *rising* Karp-Flatt metric across rank counts indicates growing
    parallel overhead (communication), not an intrinsic serial fraction —
    the standard reading of measured curves.
    """
    if ranks < 2:
        raise ValueError("Karp-Flatt needs at least 2 ranks")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return (1.0 / speedup - 1.0 / ranks) / (1.0 - 1.0 / ranks)


def fit_serial_fraction(ranks: Sequence[int],
                        speedups: Sequence[float]) -> Tuple[float, float]:
    """Least-squares Amdahl fit to a measured curve.

    Returns ``(serial_fraction, rms_residual)``; the fit linearises
    Amdahl's law (1/S is linear in 1/p) and clips into [0, 1].
    """
    p = _check_ranks(ranks)
    s = np.asarray(list(speedups), dtype=float)
    if p.shape != s.shape or p.size < 2:
        raise ValueError("need matching rank/speedup arrays of length >= 2")
    if np.any(s <= 0):
        raise ValueError("speedups must be positive")
    # 1/S = f + (1-f)/p  =>  y = f (1 - x) + x  with x = 1/p, y = 1/S.
    x = 1.0 / p
    y = 1.0 / s
    design = 1.0 - x
    fraction = float(np.dot(design, y - x) / np.dot(design, design))
    fraction = min(1.0, max(0.0, fraction))
    predicted = 1.0 / (fraction + (1.0 - fraction) * x)
    rms = float(np.sqrt(np.mean((predicted - s) ** 2)))
    return fraction, rms


def isoefficiency_problem_size(base_work: float, base_ranks: int,
                               target_ranks: int,
                               overhead_exponent: float = 1.0) -> float:
    """Work needed at ``target_ranks`` to hold the efficiency achieved
    with ``base_work`` at ``base_ranks``.

    Standard isoefficiency relation ``W ∝ p^e`` where ``e`` is the
    algorithm's overhead exponent (1 for embarrassingly parallel with
    linear overhead, ~1.5 for 2D-decomposed stencils, log-corrected
    for tree collectives — callers supply their algorithm's exponent).
    """
    if base_work <= 0:
        raise ValueError("base work must be positive")
    if base_ranks < 1 or target_ranks < 1:
        raise ValueError("rank counts must be >= 1")
    if overhead_exponent < 0:
        raise ValueError("overhead exponent must be non-negative")
    return base_work * (target_ranks / base_ranks) ** overhead_exponent
