"""Uniform experiment reports.

Every bench prints through an :class:`ExperimentReport` so the output
always shows: which derived table/figure this is, the keynote claim it
tests, the measured tables/series, and free-form notes (e.g. where the
measured shape agrees or bends).  ``EXPERIMENTS.md`` quotes these blocks.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.analysis.series import Series, render_series
from repro.analysis.tables import Table

__all__ = ["ExperimentReport"]

_WIDTH = 78


class ExperimentReport:
    """Builder for one experiment's terminal report."""

    def __init__(self, experiment_id: str, title: str, claim: str) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.claim = claim
        self._blocks: List[str] = []

    def add_table(self, table: Table) -> None:
        """Append a rendered table block."""
        self._blocks.append(table.render())

    def add_series(self, series: Sequence[Series], x_label: str = "x",
                   title: str = "", value_format: str = "{:.4g}",
                   x_format: str = "{:g}") -> None:
        """Append a figure block (series tabulated against x)."""
        self._blocks.append(render_series(series, x_label=x_label,
                                          title=title,
                                          value_format=value_format,
                                          x_format=x_format))
    def add_note(self, note: str) -> None:
        """Append a one-line interpretation note."""
        self._blocks.append(f"note: {note}")

    def add_text(self, text: str) -> None:
        """Append a free-form text block."""
        self._blocks.append(text)

    def render(self) -> str:
        """The full report as one string (header + blocks)."""
        header = [
            "=" * _WIDTH,
            f"{self.experiment_id}: {self.title}",
            f"claim: {self.claim}",
            "=" * _WIDTH,
        ]
        return "\n".join(header) + "\n" + "\n\n".join(self._blocks) + "\n"

    def show(self) -> str:
        """Print and return the report (benches call this last)."""
        text = self.render()
        print(text)
        return text
