"""Named (x, y) curves — the "figure" data structure.

Benchmarks that reproduce a *figure* emit one :class:`Series` per plotted
line; :func:`render_series` lays several series out as a column-per-series
table keyed by x, which is the terminal-friendly equivalent of the plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.tables import Table

__all__ = ["Series", "render_series"]


@dataclass
class Series:
    """One curve: a label and parallel x/y sequences."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: {len(self.x)} x vs {len(self.y)} y"
            )

    def add(self, x: float, y: float) -> None:
        """Append one sample point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def __len__(self) -> int:
        return len(self.x)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The x and y sequences as numpy arrays."""
        return np.asarray(self.x), np.asarray(self.y)

    def interpolate(self, x: float) -> float:
        """Linear interpolation (extrapolation clamps to the end values)."""
        xs, ys = self.as_arrays()
        if len(xs) == 0:
            raise ValueError(f"series {self.name!r} is empty")
        order = np.argsort(xs)
        return float(np.interp(x, xs[order], ys[order]))

    def crossing(self, level: float) -> float:
        """First x at which y crosses ``level`` (linear between samples).

        Raises :class:`ValueError` if the series never crosses.
        """
        xs, ys = self.as_arrays()
        for i in range(1, len(xs)):
            lo, hi = ys[i - 1], ys[i]
            if (lo - level) * (hi - level) <= 0 and lo != hi:
                fraction = (level - lo) / (hi - lo)
                return float(xs[i - 1] + fraction * (xs[i] - xs[i - 1]))
        raise ValueError(f"series {self.name!r} never crosses {level}")


def render_series(series_list: Sequence[Series], x_label: str = "x",
                  value_format: str = "{:.4g}", title: str = "",
                  x_format: str = "{:g}") -> str:
    """Tabulate several series against their union of x values."""
    if not series_list:
        raise ValueError("no series to render")
    xs = sorted({x for s in series_list for x in s.x})
    lookup: List[Dict[float, float]] = [
        dict(zip(s.x, s.y)) for s in series_list
    ]
    formats: Dict[str, str] = {s.name: value_format for s in series_list}
    formats[x_label] = x_format
    table = Table([x_label] + [s.name for s in series_list],
                  formats=formats,
                  title=title)
    for x in xs:
        row: List[object] = [x]
        for values in lookup:
            row.append(values.get(x, float("nan")))
        table.add_row(row)
    return table.render()
