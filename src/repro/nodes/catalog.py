"""Factory registry: build any architecture's node for any year.

``make_node("blade", roadmap, 2006)`` is how the rest of the codebase asks
for hardware; architecture availability windows (SoC from 2004, PIM from
2005) are enforced by the individual factories and surfaced here.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.nodes.base import NodeSpec
from repro.nodes.blade import make_blade_node
from repro.nodes.conventional import make_conventional_node
from repro.nodes.pim import make_pim_node
from repro.nodes.smp import make_smp_node
from repro.nodes.soc import make_soc_node
from repro.tech.roadmap import TechnologyRoadmap

__all__ = ["ARCHITECTURES", "make_node", "node_family"]

#: Architecture name -> factory(roadmap, year) -> NodeSpec.
ARCHITECTURES: Dict[str, Callable[[TechnologyRoadmap, float], NodeSpec]] = {
    "conventional": make_conventional_node,
    "blade": make_blade_node,
    "smp": make_smp_node,
    "soc": make_soc_node,
    "pim": make_pim_node,
}


def make_node(architecture: str, roadmap: TechnologyRoadmap,
              year: float) -> NodeSpec:
    """Build ``architecture``'s node at ``year`` under ``roadmap``.

    Raises ``KeyError`` (listing valid names) for an unknown architecture
    and ``ValueError`` for a year before the architecture exists.
    """
    try:
        factory = ARCHITECTURES[architecture]
    except KeyError:
        raise KeyError(
            f"unknown architecture {architecture!r}; choose from "
            f"{sorted(ARCHITECTURES)}"
        ) from None
    return factory(roadmap, year)


def node_family(roadmap: TechnologyRoadmap, year: float) -> List[NodeSpec]:
    """Every architecture *available* at ``year`` (unavailable ones are
    silently skipped, so 2003 returns only conventional/blade/smp)."""
    family: List[NodeSpec] = []
    for name in ARCHITECTURES:
        try:
            family.append(make_node(name, roadmap, year))
        except ValueError:
            continue
    return family
