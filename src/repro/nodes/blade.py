"""Blade nodes and enclosures.

"Perhaps of more impact are the changes anticipated in hardware architecture
including blade technology" — blades trade a little per-node compute (lower-
power parts, shared infrastructure) for a large win in density and power:
many diskless boards in one chassis with shared power supplies, cooling, and
an integrated switch.

The model: a blade node is a conventional node scaled by the ratios below,
and a :class:`BladeEnclosure` amortises chassis cost/size/power across its
slots.  Per-node *effective* rack units come from the enclosure, which is
where the density win actually lives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nodes.base import NodeSpec
from repro.tech.roadmap import TechnologyRoadmap

__all__ = ["make_blade_node", "BladeEnclosure"]

# Ratios of a blade board vs the contemporaneous conventional 1U node.
_PEAK_RATIO = 0.80          # mobile-derived parts clock lower
_POWER_RATIO = 0.45         # the whole point: low-power silicon, no disk/fans
_COST_RATIO = 0.85          # fewer parts per board (chassis billed separately)
_BANDWIDTH_RATIO = 1.0      # same DRAM technology
_MEMORY_RATIO = 1.0


@dataclass(frozen=True)
class BladeEnclosure:
    """A chassis that holds ``slots`` blades in ``rack_units`` of space.

    2002-era reference: 14 blades in a 7U chassis (IBM BladeCenter class).
    Chassis cost and overhead power are amortised per occupied slot.
    """

    slots: int = 14
    rack_units: float = 7.0
    chassis_cost_dollars: float = 3000.0
    #: Shared infrastructure draw (fans, management module, PSU losses).
    overhead_watts: float = 300.0

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("enclosure needs at least one slot")
        if self.rack_units <= 0:
            raise ValueError("rack_units must be positive")

    @property
    def rack_units_per_blade(self) -> float:
        """Rack units each blade slot effectively occupies."""
        return self.rack_units / self.slots

    def amortised_cost(self) -> float:
        """Chassis dollars attributed to each blade (full enclosure)."""
        return self.chassis_cost_dollars / self.slots

    def amortised_power(self) -> float:
        """Chassis watts attributed to each blade (full enclosure)."""
        return self.overhead_watts / self.slots


def make_blade_node(roadmap: TechnologyRoadmap, year: float,
                    enclosure: BladeEnclosure = BladeEnclosure()) -> NodeSpec:
    """A blade node (including its amortised share of the enclosure)."""
    base_peak = roadmap.value("node_peak_flops", year)
    return NodeSpec(
        architecture="blade",
        year=year,
        peak_flops=base_peak * _PEAK_RATIO,
        sockets=2,
        cores_per_socket=max(1, int(2 ** max(0.0, (year - 2004.0) / 2.0))),
        memory_bytes=roadmap.value("node_memory_bytes", year) * _MEMORY_RATIO,
        memory_bandwidth=(roadmap.value("node_memory_bandwidth", year)
                          * _BANDWIDTH_RATIO),
        power_watts=(roadmap.value("node_power_watts", year) * _POWER_RATIO
                     + enclosure.amortised_power()),
        cost_dollars=(roadmap.value("node_cost_dollars", year) * _COST_RATIO
                      + enclosure.amortised_cost()),
        rack_units=enclosure.rack_units_per_blade,
        disk_bytes=0.0,  # diskless: blades boot from the network
    )
