"""The conventional rack-mount node — the 2002 status quo baseline.

A 1U "pizza box" with two commodity sockets, exactly the node the roadmap's
anchor operating points describe.  Every other architecture factory is
expressed as ratios against this one, so the conventional node *is* the
roadmap, evaluated at a year.
"""

from __future__ import annotations

from repro.nodes.base import NodeSpec
from repro.tech.roadmap import TechnologyRoadmap

__all__ = ["make_conventional_node"]


def make_conventional_node(roadmap: TechnologyRoadmap, year: float) -> NodeSpec:
    """A dual-socket 1U node at the roadmap's operating point for ``year``."""
    # Cores per socket grow with the roadmap: one core per socket in 2002,
    # doubling as SMT/CMP arrives (integer, at least 1).  Peak already
    # aggregates this; the split is informational.
    cores = max(1, int(2 ** max(0.0, (year - 2004.0) / 2.0)))
    return NodeSpec(
        architecture="conventional",
        year=year,
        peak_flops=roadmap.value("node_peak_flops", year),
        sockets=2,
        cores_per_socket=cores,
        memory_bytes=roadmap.value("node_memory_bytes", year),
        memory_bandwidth=roadmap.value("node_memory_bandwidth", year),
        power_watts=roadmap.value("node_power_watts", year),
        cost_dollars=roadmap.value("node_cost_dollars", year),
        rack_units=1.0,
        disk_bytes=roadmap.value("node_disk_bytes", year),
    )
