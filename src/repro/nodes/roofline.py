"""Roofline attainable-performance model.

The one-line model that separates the node architectures:

    attainable(AI) = min(peak, AI x bandwidth)

where *AI* is a kernel's arithmetic intensity in FLOPs per byte of memory
traffic.  Kernels left of the ridge point (AI < peak/bandwidth) are
memory-bound; PIM's x25 bandwidth moves its ridge far left, which is the
entire PIM argument in one inequality.

:class:`KernelCharacter` describes a kernel by its flop count and memory
traffic; :class:`RooflineModel` evaluates attainable rate and execution
time against a :class:`~repro.nodes.base.NodeSpec`, using the spec's memory
hierarchy to pick the bandwidth for the kernel's working set (cache-resident
kernels ride a higher roof).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

import numpy as np

from repro.nodes.base import NodeSpec
from repro.units import GIGA

__all__ = ["KernelCharacter", "RooflineModel", "REFERENCE_KERNELS"]


@dataclass(frozen=True)
class KernelCharacter:
    """A kernel as the roofline sees it.

    ``flops`` and ``bytes_moved`` are totals for one execution; the ratio
    is the arithmetic intensity.  ``working_set_bytes`` sizes the data the
    kernel streams over (defaults to ``bytes_moved``, i.e. streaming).
    """

    name: str
    flops: float
    bytes_moved: float
    working_set_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.flops <= 0:
            raise ValueError("flops must be positive")
        if self.bytes_moved <= 0:
            raise ValueError("bytes_moved must be positive")
        if self.working_set_bytes < 0:
            raise ValueError("working_set_bytes must be non-negative")
        if self.working_set_bytes <= 0.0:
            object.__setattr__(self, "working_set_bytes", self.bytes_moved)

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic."""
        return self.flops / self.bytes_moved

    @classmethod
    def from_intensity(cls, name: str, intensity: float,
                       flops: float = GIGA) -> "KernelCharacter":
        """A synthetic kernel with a prescribed arithmetic intensity."""
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        return cls(name=name, flops=flops, bytes_moved=flops / intensity)


#: Characteristic kernels of the era's workloads, for architecture tables.
#: Intensities follow the standard operational analyses: STREAM triad is
#: 2 flops / 24 bytes; SpMV ~0.25; stencils ~0.5; FFT ~1-2; DGEMM is
#: blocked and lives far right of every ridge.
REFERENCE_KERNELS: List[KernelCharacter] = [
    KernelCharacter.from_intensity("stream_triad", 1.0 / 12.0),
    KernelCharacter.from_intensity("spmv", 0.25),
    KernelCharacter.from_intensity("stencil27", 0.5),
    KernelCharacter.from_intensity("fft", 1.5),
    KernelCharacter.from_intensity("nbody", 8.0),
    KernelCharacter.from_intensity("dgemm_blocked", 32.0),
]


class RooflineModel:
    """Evaluate attainable performance of kernels on a node spec."""

    def __init__(self, node: NodeSpec) -> None:
        self.node = node

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity at which the node transitions from
        memory-bound to compute-bound (using main-memory bandwidth)."""
        return self.node.machine_balance

    def bandwidth_for(self, kernel: KernelCharacter) -> float:
        """Bandwidth roof applicable to the kernel's working set."""
        return self.node.memory.effective_bandwidth(kernel.working_set_bytes)

    def attainable_flops(self, kernel: KernelCharacter) -> float:
        """min(peak, AI x applicable bandwidth) for this kernel."""
        roof = kernel.arithmetic_intensity * self.bandwidth_for(kernel)
        return min(self.node.peak_flops, roof)

    def attainable_curve(self, intensities: Union[Iterable[float], np.ndarray]
                         ) -> np.ndarray:
        """Vectorised roofline over arithmetic intensities (main memory)."""
        ai = np.asarray(list(intensities) if not isinstance(
            intensities, np.ndarray) else intensities, dtype=float)
        if np.any(ai <= 0):
            raise ValueError("intensities must be positive")
        return np.minimum(self.node.peak_flops,
                          ai * self.node.memory_bandwidth)

    def execution_time(self, kernel: KernelCharacter) -> float:
        """Seconds to run the kernel once at its attainable rate.

        Equivalent to ``max(flops/peak, bytes/bandwidth)`` — the
        overlap-of-compute-and-memory roofline time model.
        """
        return kernel.flops / self.attainable_flops(kernel)

    def efficiency(self, kernel: KernelCharacter) -> float:
        """Attainable / peak, in (0, 1]."""
        return self.attainable_flops(kernel) / self.node.peak_flops

    def is_memory_bound(self, kernel: KernelCharacter) -> bool:
        """True when the bandwidth roof, not peak, limits the kernel."""
        return (kernel.arithmetic_intensity * self.bandwidth_for(kernel)
                < self.node.peak_flops)
