"""Processor-in-memory (PIM) nodes.

The most "revolutionary structure" in the keynote's list: put simple
processing elements *inside* the DRAM arrays, where row-buffer bandwidth is
two orders of magnitude above what a pin-limited front-side bus delivers.
Sterling's own HTMT/Gilgamesh and the Berkeley IRAM line are the reference
designs.

The model captures the essential trade:

* **memory bandwidth** — ×25 over the contemporaneous conventional node
  (on-die row access vs pins);
* **peak compute** — ×0.35: logic in a DRAM process is slower and the PEs
  are simple (no wide FP pipelines);
* lower power (no off-chip memory traffic), moderate cost premium
  (non-commodity die), small capacity (logic steals array area).

Consequence, measured by bench E10: PIM wins on *memory-bound* kernels
(arithmetic intensity below the conventional machine balance) and loses on
compute-bound ones — the crossover is the experiment's headline number.
"""

from __future__ import annotations

from repro.nodes.base import NodeSpec
from repro.tech.roadmap import TechnologyRoadmap

__all__ = ["make_pim_node"]

_PEAK_RATIO = 0.35          # DRAM-process logic, simple PEs
_MEMORY_RATIO = 0.5         # PE logic displaces array area
_BANDWIDTH_RATIO = 25.0     # on-die row-buffer bandwidth
_POWER_RATIO = 0.40         # off-chip signalling eliminated
_COST_RATIO = 1.3           # non-commodity part
_RACK_UNITS = 0.5


def make_pim_node(roadmap: TechnologyRoadmap, year: float) -> NodeSpec:
    """A PIM node at the roadmap's operating point for ``year``.

    PIM parts are modelled as available from 2005 (research prototypes
    maturing mid-decade); earlier years raise.
    """
    if year < 2005.0:
        raise ValueError(
            f"PIM nodes are modelled as available from 2005 (asked for {year})"
        )
    return NodeSpec(
        architecture="pim",
        year=year,
        peak_flops=roadmap.value("node_peak_flops", year) * _PEAK_RATIO,
        sockets=1,
        cores_per_socket=16,  # many simple PEs per die
        memory_bytes=roadmap.value("node_memory_bytes", year) * _MEMORY_RATIO,
        memory_bandwidth=(roadmap.value("node_memory_bandwidth", year)
                          * _BANDWIDTH_RATIO),
        power_watts=roadmap.value("node_power_watts", year) * _POWER_RATIO,
        cost_dollars=roadmap.value("node_cost_dollars", year) * _COST_RATIO,
        rack_units=_RACK_UNITS,
        disk_bytes=0.0,
    )
