"""System/SMP-on-a-chip (SoC) nodes.

The keynote's "system and SMP on a chip": integrate multiple cores, the
memory controller, and the network interface onto one die.  Integration
buys three things the model captures:

* **memory bandwidth** — an on-die controller removes the front-side-bus
  bottleneck (ratio > 1);
* **power** — no chip-to-chip I/O, lower voltage parts;
* **density** — a node is a card, not a box.

Peak per node is *lower* than a contemporaneous dual-socket box (one die,
modest clock), so SoC wins only when performance-per-watt, per-dollar or
per-U is the figure of merit — which is the talk's point, and what bench
E3/E6 measure.  BlueGene-class machines later validated exactly this
trade.
"""

from __future__ import annotations

from repro.nodes.base import NodeSpec
from repro.tech.roadmap import TechnologyRoadmap

__all__ = ["make_soc_node"]

_PEAK_RATIO = 0.45          # one modest-clock die vs two hot sockets
_MEMORY_RATIO = 0.5         # less DRAM per (cheaper) node
_BANDWIDTH_RATIO = 1.6      # integrated memory controller
_POWER_RATIO = 0.18         # the headline win
_COST_RATIO = 0.35
_RACK_UNITS = 0.25          # card-level packaging


def make_soc_node(roadmap: TechnologyRoadmap, year: float) -> NodeSpec:
    """A system-on-chip node at the roadmap's operating point for ``year``.

    SoC parts are modelled as arriving in 2004; asking for an earlier year
    raises, because pre-2004 there was no commodity SoC node to buy.
    """
    if year < 2004.0:
        raise ValueError(
            f"SoC nodes enter the commodity market in 2004 (asked for {year})"
        )
    cores = max(2, int(2 ** ((year - 2002.0) / 1.5)))
    return NodeSpec(
        architecture="soc",
        year=year,
        peak_flops=roadmap.value("node_peak_flops", year) * _PEAK_RATIO,
        sockets=1,
        cores_per_socket=cores,
        memory_bytes=roadmap.value("node_memory_bytes", year) * _MEMORY_RATIO,
        memory_bandwidth=(roadmap.value("node_memory_bandwidth", year)
                          * _BANDWIDTH_RATIO),
        power_watts=roadmap.value("node_power_watts", year) * _POWER_RATIO,
        cost_dollars=roadmap.value("node_cost_dollars", year) * _COST_RATIO,
        rack_units=_RACK_UNITS,
        disk_bytes=0.0,  # diskless, network boot
    )
