"""Node hardware description records.

:class:`NodeSpec` is the lingua franca between the technology roadmap, the
cluster assembler, the roofline model, and the simulator: a frozen record of
everything a model downstream needs to know about one node.  Architecture
factories (:mod:`repro.nodes.conventional` etc.) construct these from a
roadmap + year; nothing else in the codebase hard-codes hardware numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.units import KIB

__all__ = ["MemoryLevel", "MemoryHierarchy", "NodeSpec"]


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the memory hierarchy.

    ``bandwidth`` is sustained bytes/second from this level to the cores;
    ``latency`` is the load-to-use time in seconds.
    """

    name: str
    capacity_bytes: float
    bandwidth_bytes: float
    latency_seconds: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.bandwidth_bytes <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency_seconds < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")


@dataclass(frozen=True)
class MemoryHierarchy:
    """An ordered tuple of levels, fastest/smallest first.

    :meth:`effective_bandwidth` returns the bandwidth of the smallest level
    that holds a given working set — the simple inclusive-cache model used
    by the roofline estimator.
    """

    levels: Tuple[MemoryLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("hierarchy needs at least one level")
        for upper, lower in zip(self.levels, self.levels[1:]):
            if upper.capacity_bytes >= lower.capacity_bytes:
                raise ValueError(
                    f"levels must grow: {upper.name} >= {lower.name}"
                )
            if upper.bandwidth_bytes < lower.bandwidth_bytes:
                raise ValueError(
                    f"levels must slow down: {upper.name} slower than {lower.name}"
                )

    @property
    def main_memory(self) -> MemoryLevel:
        """The last (largest, slowest) level — DRAM."""
        return self.levels[-1]

    def level_for(self, working_set_bytes: float) -> MemoryLevel:
        """Smallest level that can hold ``working_set_bytes``.

        Working sets larger than main memory still return main memory: we
        model out-of-core behaviour at a higher layer (or not at all), and
        callers who care check ``fits_in_memory`` themselves.
        """
        if working_set_bytes < 0:
            raise ValueError("working set must be non-negative")
        for level in self.levels:
            if working_set_bytes <= level.capacity_bytes:
                return level
        return self.levels[-1]

    def effective_bandwidth(self, working_set_bytes: float) -> float:
        """Sustained bandwidth feeding the cores for this working set."""
        return self.level_for(working_set_bytes).bandwidth_bytes


@dataclass(frozen=True)
class NodeSpec:
    """Complete description of one compute node.

    All rates/capacities are node-level aggregates (summed over sockets and
    cores).  ``architecture`` names the factory that built the spec
    (``"conventional"``, ``"blade"``, ``"smp"``, ``"soc"``, ``"pim"``).
    """

    architecture: str
    year: float
    #: Aggregate peak floating-point rate (FLOPS).
    peak_flops: float
    #: Core topology, informational (peak already aggregates it).
    sockets: int
    cores_per_socket: int
    #: DRAM capacity (bytes) and sustained node memory bandwidth (bytes/s).
    memory_bytes: float
    memory_bandwidth: float
    #: Whole-node power under load (watts) and purchase cost (dollars).
    power_watts: float
    cost_dollars: float
    #: Physical size in rack units (may be fractional for blades/SoC).
    rack_units: float
    #: Local disk (bytes); zero for diskless blades.
    disk_bytes: float = 0.0
    #: Optional detailed hierarchy; main memory must agree with the
    #: aggregate fields above.
    memory: MemoryHierarchy = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        for name in ("peak_flops", "memory_bytes", "memory_bandwidth",
                     "power_watts", "cost_dollars", "rack_units"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("need at least one socket and one core")
        if self.disk_bytes < 0:
            raise ValueError("disk_bytes must be non-negative")
        if self.memory is None:
            object.__setattr__(self, "memory", self._default_hierarchy())

    def _default_hierarchy(self) -> MemoryHierarchy:
        """A generic two-level cache + DRAM hierarchy scaled to the node.

        Cache sizes follow the era's rule of thumb (L2 ~ 0.5 MiB/core) and
        cache bandwidth tracks peak compute so that cache-resident kernels
        are compute-bound, which is how real kernels behave.
        """
        cores = self.sockets * self.cores_per_socket
        l1 = MemoryLevel(
            name="L1",
            capacity_bytes=16 * KIB * cores,
            bandwidth_bytes=max(self.peak_flops * 8.0, self.memory_bandwidth * 4),
            latency_seconds=1e-9,
        )
        l2 = MemoryLevel(
            name="L2",
            capacity_bytes=512 * KIB * cores,
            bandwidth_bytes=max(self.peak_flops * 4.0, self.memory_bandwidth * 2),
            latency_seconds=5e-9,
        )
        dram = MemoryLevel(
            name="DRAM",
            capacity_bytes=self.memory_bytes,
            bandwidth_bytes=self.memory_bandwidth,
            latency_seconds=120e-9,
        )
        return MemoryHierarchy(levels=(l1, l2, dram))

    # -- derived figures of merit ---------------------------------------

    @property
    def total_cores(self) -> int:
        """Cores across all sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def machine_balance(self) -> float:
        """FLOPs per byte the node *needs* to stay compute-bound.

        Kernels with arithmetic intensity below this are memory-bound on
        this node — the crux of the PIM argument.
        """
        return self.peak_flops / self.memory_bandwidth

    @property
    def flops_per_watt(self) -> float:
        """Peak FLOPS per watt of node power."""
        return self.peak_flops / self.power_watts

    @property
    def flops_per_dollar(self) -> float:
        """Peak FLOPS per dollar of node cost."""
        return self.peak_flops / self.cost_dollars

    @property
    def bytes_per_flops(self) -> float:
        """Memory balance (capacity per peak FLOPS)."""
        return self.memory_bytes / self.peak_flops

    def with_overrides(self, **changes) -> "NodeSpec":
        """A copy with selected fields replaced (hierarchy re-derived
        unless explicitly provided)."""
        if "memory" not in changes:
            changes["memory"] = None
        return replace(self, **changes)
