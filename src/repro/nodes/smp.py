"""Fat SMP nodes.

The classic alternative to thin pizza-boxes: four or more sockets sharing
one coherent memory.  More compute and capacity per node, but the shared
memory system does not scale linearly (bus/coherence contention) and the
premium over commodity boards is steep — which is exactly why Beowulf-class
thin nodes won the price/performance argument.
"""

from __future__ import annotations

from repro.nodes.base import NodeSpec
from repro.tech.roadmap import TechnologyRoadmap

__all__ = ["make_smp_node"]

_SOCKETS = 4
_PEAK_RATIO = _SOCKETS / 2.0        # 4 sockets vs the baseline's 2
_MEMORY_RATIO = 4.0
_BANDWIDTH_RATIO = 2.6              # shared fabric: < 2x per extra socket pair
_POWER_RATIO = 3.2
_COST_RATIO = 5.0                   # the 4-socket premium
_RACK_UNITS = 4.0


def make_smp_node(roadmap: TechnologyRoadmap, year: float) -> NodeSpec:
    """A 4-socket SMP node at the roadmap's operating point for ``year``."""
    return NodeSpec(
        architecture="smp",
        year=year,
        peak_flops=roadmap.value("node_peak_flops", year) * _PEAK_RATIO,
        sockets=_SOCKETS,
        cores_per_socket=max(1, int(2 ** max(0.0, (year - 2004.0) / 2.0))),
        memory_bytes=roadmap.value("node_memory_bytes", year) * _MEMORY_RATIO,
        memory_bandwidth=(roadmap.value("node_memory_bandwidth", year)
                          * _BANDWIDTH_RATIO),
        power_watts=roadmap.value("node_power_watts", year) * _POWER_RATIO,
        cost_dollars=roadmap.value("node_cost_dollars", year) * _COST_RATIO,
        rack_units=_RACK_UNITS,
        disk_bytes=roadmap.value("node_disk_bytes", year) * 2,
    )
