"""Node architecture models.

The keynote's central argument is that cluster futures are driven by
"revolutionary structures embodied by the nodes": blade packaging, SMP /
system-on-a-chip integration, and processor-in-memory (PIM).  This package
models each as a parametric :class:`NodeSpec` derived from a technology
roadmap, plus a roofline performance model that turns a spec and a kernel's
arithmetic intensity into attainable performance — the quantity on which
the architectures actually differ.

Public surface
--------------
:class:`NodeSpec`, :class:`MemoryLevel`, :class:`MemoryHierarchy`
    The hardware description record.
:func:`make_node` / :data:`ARCHITECTURES`
    Factory keyed by architecture name and year.
:class:`BladeEnclosure`
    Chassis-level packaging shared by blade nodes.
:class:`RooflineModel`, :class:`KernelCharacter`
    Attainable-performance model.
"""

from repro.nodes.base import MemoryHierarchy, MemoryLevel, NodeSpec
from repro.nodes.catalog import ARCHITECTURES, make_node, node_family
from repro.nodes.blade import BladeEnclosure, make_blade_node
from repro.nodes.conventional import make_conventional_node
from repro.nodes.smp import make_smp_node
from repro.nodes.soc import make_soc_node
from repro.nodes.pim import make_pim_node
from repro.nodes.roofline import KernelCharacter, REFERENCE_KERNELS, RooflineModel

__all__ = [
    "ARCHITECTURES",
    "REFERENCE_KERNELS",
    "BladeEnclosure",
    "KernelCharacter",
    "MemoryHierarchy",
    "MemoryLevel",
    "NodeSpec",
    "RooflineModel",
    "make_blade_node",
    "make_conventional_node",
    "make_node",
    "make_pim_node",
    "make_smp_node",
    "make_soc_node",
    "node_family",
]
