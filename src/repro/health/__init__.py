"""Failure detection and membership: the layer between fault and truth.

``repro.health`` turns the repo's fault story from *oracular* (the
supervisor magically knows the instant a node dies) into *detected*
(a heartbeat monitor infers death from silence, through the same
fabric the application uses).  The distinction matters because the
fabric lies: a partitioned or congested link silences a perfectly
healthy node, and every consumer of this layer must stay correct
under that false suspicion.

Pieces:

* :mod:`repro.health.state` — the per-node belief machine
  (``HEALTHY → SUSPECTED → DEAD → REPAIRING → HEALTHY`` plus
  administrative ``DRAINING``) and the epoch-numbered
  :class:`Membership` view.
* :mod:`repro.health.detectors` — pluggable verdict functions:
  :class:`FixedTimeoutDetector` and :class:`PhiAccrualDetector`.
* :mod:`repro.health.monitor` — :class:`HeartbeatMonitor`, the sim
  process that pumps heartbeats through the fabric, feeds a detector,
  and drives the membership machine; configured by
  :class:`DetectionSpec`, summarised by :class:`DetectionOutcome`.
  Both monitors share the :class:`MembershipMonitor` base (membership
  machine, death bookkeeping, supervisor surface).
* :mod:`repro.health.gossip` — :class:`GossipMonitor`, the SWIM-style
  decentralized alternative: every node probes (direct ping + k
  indirect relays) and membership updates piggyback on probe traffic,
  so detection is O(1) per node and survives partitions that blind a
  central host.  :func:`build_monitor` picks the monitor the
  ``DetectionSpec.detector`` field asks for.
* :mod:`repro.health.scheduling` — :class:`DegradedBatchSimulator`,
  the batch scheduler that pays detection latency, activates spares,
  and requeues killed jobs with backoff.
* :mod:`repro.health.spares` — :class:`SparePool`, the deterministic
  lowest-id-first reserve-capacity pool shared by the degraded
  scheduler and the detector-driven activation wrapper in
  :mod:`repro.fault.availability`.

Layering: health sits above ``sim``/``network``/``scheduler``/``obs``
and below ``fault`` (campaigns consume detection; detection never
imports campaigns).
"""

from repro.health.detectors import (
    FailureDetector,
    FixedTimeoutDetector,
    PhiAccrualDetector,
    Verdict,
)
from repro.health.gossip import (
    GossipMonitor,
    GossipStats,
    GossipStatus,
    build_monitor,
)
from repro.health.monitor import (
    DeathRecord,
    DetectionOutcome,
    DetectionSpec,
    HeartbeatMonitor,
    MembershipMonitor,
)
from repro.health.scheduling import (
    DegradedBatchSimulator,
    DegradedScheduleResult,
    DrainWindow,
)
from repro.health.spares import SparePool
from repro.health.state import (
    HealthEvent,
    Membership,
    MembershipView,
    NodeHealthState,
)

__all__ = [
    "DeathRecord",
    "DegradedBatchSimulator",
    "DegradedScheduleResult",
    "DetectionOutcome",
    "DetectionSpec",
    "DrainWindow",
    "FailureDetector",
    "FixedTimeoutDetector",
    "GossipMonitor",
    "GossipStats",
    "GossipStatus",
    "HealthEvent",
    "HeartbeatMonitor",
    "Membership",
    "MembershipMonitor",
    "MembershipView",
    "build_monitor",
    "NodeHealthState",
    "PhiAccrualDetector",
    "SparePool",
    "Verdict",
]
