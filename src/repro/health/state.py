"""Node health state machine and epoch-numbered membership view.

The detection layer's ground truth about *belief*, never about reality:
a node is ``DEAD`` here when the detector said so, which may be wrong
(a partition silenced its heartbeats).  Consumers act on this belief —
that is the whole point of detection-driven recovery — and the campaign
layer proves the resulting actions are still safe.

States and legal transitions::

    HEALTHY  -> SUSPECTED   missed heartbeats
    HEALTHY  -> DRAINING    administrative drain
    SUSPECTED -> HEALTHY    heartbeats resumed (suspicion refuted)
    SUSPECTED -> DEAD       detector confirmed the silence
    DEAD     -> REPAIRING   repair dispatched
    REPAIRING -> HEALTHY    repair finished, node back in service
    DRAINING -> HEALTHY     drain cancelled
    DRAINING -> SUSPECTED   a draining node can still go silent

Every transition bumps a global *epoch*; :meth:`Membership.snapshot`
publishes an immutable epoch-numbered view, so consumers can cheaply
detect staleness (``view.epoch != membership.epoch``).  The event log
renders to a canonical text form (:meth:`Membership.render_log`) that
the determinism tests byte-compare across runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

__all__ = [
    "HealthEvent",
    "Membership",
    "MembershipView",
    "NodeHealthState",
]


class NodeHealthState(enum.Enum):
    """Where a node sits in the detection layer's belief machine."""

    HEALTHY = "healthy"
    SUSPECTED = "suspected"
    DEAD = "dead"
    REPAIRING = "repairing"
    DRAINING = "draining"


#: Legal transitions (see module docstring for the narrative).
_ALLOWED: Dict[NodeHealthState, FrozenSet[NodeHealthState]] = {
    NodeHealthState.HEALTHY: frozenset(
        {NodeHealthState.SUSPECTED, NodeHealthState.DRAINING}),
    NodeHealthState.SUSPECTED: frozenset(
        {NodeHealthState.HEALTHY, NodeHealthState.DEAD}),
    NodeHealthState.DEAD: frozenset({NodeHealthState.REPAIRING}),
    NodeHealthState.REPAIRING: frozenset({NodeHealthState.HEALTHY}),
    NodeHealthState.DRAINING: frozenset(
        {NodeHealthState.HEALTHY, NodeHealthState.SUSPECTED}),
}

#: States in which a node can do useful work (a suspected node is still
#: running; a draining node finishes what it has).
_AVAILABLE: FrozenSet[NodeHealthState] = frozenset({
    NodeHealthState.HEALTHY,
    NodeHealthState.SUSPECTED,
    NodeHealthState.DRAINING,
})


@dataclass(frozen=True)
class HealthEvent:
    """One recorded state transition, renderable deterministically."""

    time: float
    epoch: int
    node: int
    old: NodeHealthState
    new: NodeHealthState
    cause: str

    def line(self) -> str:
        """Canonical one-line rendering (byte-stable across runs)."""
        return (f"{self.time:.9f} epoch={self.epoch} node={self.node} "
                f"{self.old.value}->{self.new.value} cause={self.cause}")


@dataclass(frozen=True)
class MembershipView:
    """Immutable epoch-numbered snapshot of every node's health state."""

    epoch: int
    time: float
    states: Tuple[NodeHealthState, ...]

    def state_of(self, node: int) -> NodeHealthState:
        """The snapshotted state of ``node``."""
        return self.states[node]

    def is_available(self, node: int) -> bool:
        """True when ``node`` was believed able to do work."""
        return self.states[node] in _AVAILABLE

    @property
    def available_count(self) -> int:
        """How many nodes were believed able to do work."""
        return sum(1 for state in self.states if state in _AVAILABLE)

    @property
    def dead_nodes(self) -> Tuple[int, ...]:
        """Nodes believed dead, in index order."""
        return tuple(node for node, state in enumerate(self.states)
                     if state is NodeHealthState.DEAD)


class Membership:
    """Authoritative per-node health states plus the transition log.

    Single-writer by convention: one monitor (or scheduler) owns the
    instance and calls :meth:`transition`; everyone else reads
    snapshots.  Transition times must be non-decreasing — the membership
    clock is the simulation clock of whoever drives it.
    """

    def __init__(self, nodes: int, now: float = 0.0) -> None:
        if nodes < 1:
            raise ValueError("membership needs at least one node")
        self.nodes = nodes
        self.epoch = 0
        self.events: List[HealthEvent] = []
        self._states: List[NodeHealthState] = (
            [NodeHealthState.HEALTHY] * nodes)
        self._since: List[float] = [now] * nodes
        self._origin = now
        self._last_time = now
        self._seconds: Dict[NodeHealthState, float] = {
            state: 0.0 for state in NodeHealthState}

    def state_of(self, node: int) -> NodeHealthState:
        """Current believed state of ``node``."""
        return self._states[node]

    def is_available(self, node: int) -> bool:
        """True when ``node`` is currently believed able to do work."""
        return self._states[node] in _AVAILABLE

    def transition(self, node: int, new: NodeHealthState, now: float,
                   cause: str) -> HealthEvent:
        """Move ``node`` to ``new``, record and return the event.

        Raises ``ValueError`` for an illegal transition or a clock that
        runs backwards — both are supervisor bugs worth failing loudly
        on, not warnings.
        """
        if not 0 <= node < self.nodes:
            raise IndexError(f"node {node} out of range [0, {self.nodes})")
        if now < self._last_time:
            raise ValueError(
                f"membership clock ran backwards: {now} < {self._last_time}")
        old = self._states[node]
        if new not in _ALLOWED[old]:
            raise ValueError(
                f"illegal transition {old.value} -> {new.value} for node "
                f"{node} (cause {cause!r})")
        self._seconds[old] += now - self._since[node]
        self._states[node] = new
        self._since[node] = now
        self._last_time = now
        self.epoch += 1
        event = HealthEvent(time=now, epoch=self.epoch, node=node,
                            old=old, new=new, cause=cause)
        self.events.append(event)
        return event

    def snapshot(self, now: float) -> MembershipView:
        """Publish the current view, stamped with epoch and time."""
        return MembershipView(epoch=self.epoch, time=now,
                              states=tuple(self._states))

    def seconds_in(self, state: NodeHealthState, now: float) -> float:
        """Cumulative node-seconds spent in ``state`` up to ``now``."""
        total = self._seconds[state]
        for node in range(self.nodes):
            if self._states[node] is state:
                total += now - self._since[node]
        return total

    def availability(self, now: float) -> float:
        """Fraction of node-time spent in work-capable states so far.

        1.0 until the first death; every DEAD/REPAIRING node-second
        pulls it down.  Returns 1.0 when no time has elapsed.
        """
        elapsed = now - self._origin
        if elapsed <= 0:
            return 1.0
        # Float addition is order-sensitive and frozenset iteration
        # order is identity-derived: sum in a fixed state order.
        up = sum(self.seconds_in(state, now)
                 for state in sorted(_AVAILABLE, key=lambda s: s.value))
        return up / (self.nodes * elapsed)

    def render_log(self) -> str:
        """The transition log in canonical text form (one event per
        line, trailing newline when non-empty)."""
        if not self.events:
            return ""
        return "\n".join(event.line() for event in self.events) + "\n"
