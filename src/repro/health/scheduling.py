"""Degraded-mode batch scheduling: detection latency meets the queue.

:class:`~repro.scheduler.faults.FaultyBatchSimulator` is *oracular*: a
failure kills its job the same instant it strikes.  Real clusters learn
about failures from a detector, so between the strike and the
declaration the job's nodes are **zombies** — occupied, billed, doing
no useful work — and only at detection does the scheduler kill, requeue
(after a backoff), dispatch repair, and activate a spare.

:class:`DegradedBatchSimulator` models exactly that pipeline on the
aggregate batch model:

* failures strike Poisson at rate ``capacity / node_mtbf`` and are
  *detected* ``detection_seconds`` later (the knob a heartbeat detector
  timeout sets; zero reproduces oracle behaviour);
* a **spare pool** of ``spare_nodes`` held outside the schedulable
  capacity: a detected failure activates a spare immediately (the slot
  returns to service at detection, not at repair), and the repaired
  node later refills the pool;
* killed jobs **requeue with backoff** — re-eligible only
  ``requeue_backoff_seconds`` after detection;
* :class:`DrainWindow` maintenance intervals administratively remove
  nodes from capacity, taking only from currently free nodes (unmet
  demand is counted, not forced);
* the policy sees degraded capacity the way the oracle model shows
  repairs: out-of-service and drained slots appear as width-1
  pseudo-jobs with estimated release times, so backfill reservations
  stay honest, while zombies look like ordinary running jobs (the
  scheduler does not know yet — that is the point).

A per-node :class:`~repro.health.state.Membership` machine tracks a
deterministic node-identity assignment (strikes and drains take the
lowest in-service id) purely for the health log and the availability
metric; the aggregate schedule never depends on which id failed.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.health.spares import SparePool
from repro.health.state import Membership, NodeHealthState
from repro.obs import NULL_OBS, Observability
from repro.scheduler.job import Job
from repro.scheduler.policies import SchedulingPolicy
from repro.sim.rng import RandomStreams

__all__ = [
    "DegradedBatchSimulator",
    "DegradedScheduleResult",
    "DrainWindow",
]

_ARRIVAL = 0
_FAILURE = 1
_DETECT = 2
_COMPLETION = 3
_REPAIR = 4
_DRAIN_START = 5
_DRAIN_END = 6
_REQUEUE = 7


@dataclass(frozen=True)
class DrainWindow:
    """Administratively drain ``nodes`` nodes over ``[start, end)``."""

    start: float
    end: float
    nodes: int = 1

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("need 0 <= start < end")
        if self.nodes < 1:
            raise ValueError("must drain at least one node")


@dataclass
class _RunningJob:
    job: Job
    start_time: float
    remaining_runtime: float      # work left at this attempt's start
    generation: int               # cancels stale completion events


@dataclass
class _Zombie:
    entry: _RunningJob
    failed_at: float


@dataclass
class DegradedScheduleResult:
    """Outcome of a detection-aware, spare-pooled workload run."""

    total_nodes: int
    spare_nodes: int
    makespan: float
    first_submit: float
    #: job_id -> (original submit, final completion) for finished jobs.
    completions: Dict[int, Tuple[float, float]]
    goodput_node_seconds: float = 0.0
    #: Node-seconds of killed work since the last checkpoint.
    lost_node_seconds: float = 0.0
    #: Node-seconds occupied by dead-but-undetected jobs.
    zombie_node_seconds: float = 0.0
    #: Slot-seconds removed from schedulable capacity (down + drained).
    degraded_node_seconds: float = 0.0
    failures: int = 0
    job_kills: int = 0
    requeues: int = 0
    spare_activations: int = 0
    #: Drain demand that found no free node to take.
    drain_shortfall: int = 0
    min_spare_depth: int = 0
    #: Canonical membership event log (determinism checks).
    health_log: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def horizon(self) -> float:
        """Virtual time from first submit to makespan."""
        return self.makespan - self.first_submit

    @property
    def goodput_utilization(self) -> float:
        """Useful work over nominal capacity."""
        capacity = self.total_nodes * max(self.horizon, 1e-12)
        return min(1.0, self.goodput_node_seconds / capacity)

    @property
    def availability(self) -> float:
        """Fraction of slot-time in service.  Zombie slots count as up:
        the scheduler does not yet know they are wasted — the gap
        between availability and goodput is detection's bill."""
        capacity = self.total_nodes * max(self.horizon, 1e-12)
        return max(0.0, 1.0 - self.degraded_node_seconds / capacity)

    @property
    def waste_fraction(self) -> float:
        """(lost + zombie) over all expended node-seconds."""
        wasted = self.lost_node_seconds + self.zombie_node_seconds
        total = wasted + self.goodput_node_seconds
        return wasted / total if total > 0 else 0.0

    def mean_response(self) -> float:
        """Mean submit-to-final-completion time over finished jobs."""
        if not self.completions:
            raise ValueError("no completed jobs")
        return float(np.mean([end - submit for submit, end
                              in self.completions.values()]))


class DegradedBatchSimulator:
    """Batch simulator with detection latency, spares, and drains.

    Parameters
    ----------
    total_nodes, policy:
        Schedulable capacity and policy, as in the oracle simulators.
    node_mtbf_seconds:
        Per-node exponential MTBF; ``math.inf`` disables failures.
    detection_seconds:
        Latency between a failure striking and the scheduler learning
        of it (a heartbeat detector's dead-timeout).
    repair_seconds:
        Repair duration, measured from *detection* — repair cannot be
        dispatched for a failure nobody has noticed.
    spare_nodes:
        Healthy nodes held outside schedulable capacity; a detected
        failure activates one immediately if the pool is non-empty.
    requeue_backoff_seconds:
        Delay between detection and the killed job re-entering the
        queue (zero requeues at the detection instant).
    checkpoint_interval:
        As in the oracle simulator; progress is measured to the strike,
        not to detection — zombie time is pure waste.
    drains:
        :class:`DrainWindow` maintenance schedule.
    """

    def __init__(self, total_nodes: int, policy: SchedulingPolicy,
                 node_mtbf_seconds: float,
                 detection_seconds: float = 0.0,
                 repair_seconds: float = 1800.0,
                 spare_nodes: int = 0,
                 requeue_backoff_seconds: float = 0.0,
                 checkpoint_interval: Optional[float] = None,
                 drains: Sequence[DrainWindow] = (),
                 streams: Optional[RandomStreams] = None,
                 obs: Optional[Observability] = None) -> None:
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        if node_mtbf_seconds <= 0:
            raise ValueError("node MTBF must be positive")
        if detection_seconds < 0:
            raise ValueError("detection latency must be non-negative")
        if repair_seconds < 0:
            raise ValueError("repair time must be non-negative")
        if spare_nodes < 0:
            raise ValueError("spare_nodes must be >= 0")
        if requeue_backoff_seconds < 0:
            raise ValueError("requeue backoff must be non-negative")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.total_nodes = total_nodes
        self.policy = policy
        self.node_mtbf = node_mtbf_seconds
        self.detection_seconds = detection_seconds
        self.repair_seconds = repair_seconds
        self.spare_nodes = spare_nodes
        self.requeue_backoff = requeue_backoff_seconds
        self.checkpoint_interval = checkpoint_interval
        self.drains = tuple(sorted(drains, key=lambda d: (d.start, d.end)))
        self.streams = streams if streams is not None else RandomStreams(0)
        self.obs = obs if obs is not None else NULL_OBS

    # -- helpers -------------------------------------------------------------

    def _durable_progress(self, elapsed: float) -> float:
        """Work preserved when a kill lands ``elapsed`` into an attempt."""
        if self.checkpoint_interval is None:
            return 0.0
        return math.floor(elapsed / self.checkpoint_interval) \
            * self.checkpoint_interval

    # -- the run ---------------------------------------------------------------

    def run(self, jobs: Sequence[Job],
            max_virtual_seconds: float = 10 * 365.25 * 86400.0
            ) -> DegradedScheduleResult:
        """Replay ``jobs`` to completion under detected failures.

        ``max_virtual_seconds`` guards pathological configurations
        (nothing ever finishes) — exceeding it raises rather than
        looping forever.
        """
        if not jobs:
            raise ValueError("no jobs to schedule")
        for job in jobs:
            if job.nodes > self.total_nodes:
                raise ValueError(
                    f"job {job.job_id} wants {job.nodes} nodes; machine "
                    f"has {self.total_nodes}")
        rng = self.streams.get("scheduler.failures")
        physical = self.total_nodes + self.spare_nodes
        membership = Membership(physical)

        events: List[Tuple[float, int, int, int]] = [
            (job.submit_time, _ARRIVAL, job.job_id, 0) for job in jobs
        ]
        by_id = {job.job_id: job for job in jobs}
        heapq.heapify(events)
        failure_rate = self.total_nodes / self.node_mtbf
        if math.isfinite(self.node_mtbf):
            heapq.heappush(events,
                           (float(rng.exponential(1 / failure_rate)),
                            _FAILURE, -1, 0))
        for index, window in enumerate(self.drains):
            heapq.heappush(events, (window.start, _DRAIN_START, index, 0))

        result = DegradedScheduleResult(
            total_nodes=self.total_nodes,
            spare_nodes=self.spare_nodes,
            makespan=0.0,
            first_submit=min(job.submit_time for job in jobs),
            completions={},
            min_spare_depth=self.spare_nodes,
        )
        pool = SparePool(range(self.total_nodes, physical))
        queue: List[Job] = []
        running: Dict[int, _RunningJob] = {}
        generations: Dict[int, int] = {job.job_id: 0 for job in jobs}
        remaining: Dict[int, float] = {job.job_id: job.runtime
                                       for job in jobs}
        # Slot accounting invariant, enforced indirectly by the policy
        # overcommit guard:  free + busy + out + drained == total_nodes,
        # where busy includes zombie widths.  Spares live outside it.
        free = self.total_nodes
        out = 0
        drained_active = 0
        finished = 0
        #: tag -> estimated release time of an out-of-service slot
        #: (rendered to the policy as width-1 pseudo-jobs).
        out_slots: Dict[int, float] = {}
        zombie_by_tag: Dict[int, _Zombie] = {}
        drain_taken: Dict[int, int] = {}
        drain_ids: Dict[int, List[int]] = {}
        next_tag = 0

        # Deterministic node-identity bookkeeping for the health log:
        # strikes and drains take the lowest in-service id.
        in_service_ids = list(range(self.total_nodes))
        struck_node: Dict[int, int] = {}      # tag -> id awaiting detect
        repairing_node: Dict[int, int] = {}   # tag -> id under repair

        # Availability integral: slot-seconds out of service.
        degraded_integral = 0.0
        last_change = result.first_submit

        def accumulate(now: float) -> None:
            """Fold the out-of-service integral up to ``now``."""
            nonlocal degraded_integral, last_change
            degraded_integral += ((out + drained_active)
                                  * max(0.0, now - last_change))
            last_change = now

        def kill_progress(victim: _RunningJob, failed_at: float) -> None:
            """Oracle-identical checkpoint math, clocked at the strike."""
            elapsed = failed_at - victim.start_time
            durable = min(self._durable_progress(elapsed),
                          victim.remaining_runtime)
            lost = min(elapsed, victim.remaining_runtime) - durable
            result.lost_node_seconds += max(0.0, lost) * victim.job.nodes
            result.goodput_node_seconds += durable * victim.job.nodes
            remaining[victim.job.job_id] = max(
                1e-9, victim.remaining_runtime - durable)

        def handle(now: float, kind: int, job_id: int,
                   extra: int) -> None:
            nonlocal queue, free, out, drained_active
            nonlocal finished, next_tag

            if kind == _ARRIVAL:
                queue.append(by_id[job_id])

            elif kind == _COMPLETION:
                if extra != generations[job_id]:
                    return  # stale: this attempt was killed
                entry = running.pop(job_id)
                free += entry.job.nodes
                finished += 1
                result.completions[job_id] = (entry.job.submit_time, now)
                result.goodput_node_seconds += (entry.remaining_runtime
                                                * entry.job.nodes)
                result.makespan = max(result.makespan, now)

            elif kind == _REQUEUE:
                queue.append(by_id[job_id])
                queue.sort(key=lambda j: (j.submit_time, j.job_id))

            elif kind == _REPAIR:
                # job_id is the slot tag, extra the spare-covered flag.
                node = repairing_node.pop(job_id)
                membership.transition(node, NodeHealthState.HEALTHY,
                                      now, "repaired")
                if extra:
                    pool.refill(node)
                else:
                    accumulate(now)
                    out -= 1
                    free += 1
                    del out_slots[job_id]
                    in_service_ids.append(node)
                    in_service_ids.sort()

            elif kind == _DRAIN_START:
                window = self.drains[job_id]
                take = min(free, window.nodes)
                result.drain_shortfall += window.nodes - take
                drain_taken[job_id] = take
                if take:
                    accumulate(now)
                    free -= take
                    drained_active += take
                    taken_ids = []
                    for _ in range(take):
                        node = in_service_ids.pop(0)
                        membership.transition(
                            node, NodeHealthState.DRAINING, now, "drain")
                        taken_ids.append(node)
                    drain_ids[job_id] = taken_ids
                heapq.heappush(events, (window.end, _DRAIN_END, job_id, 0))

            elif kind == _DRAIN_END:
                take = drain_taken.pop(job_id, 0)
                if take:
                    accumulate(now)
                    drained_active -= take
                    free += take
                    for node in drain_ids.pop(job_id):
                        membership.transition(
                            node, NodeHealthState.HEALTHY, now, "undrain")
                        in_service_ids.append(node)
                    in_service_ids.sort()

            elif kind == _DETECT:
                tag = job_id
                node = struck_node.pop(tag)
                membership.transition(node, NodeHealthState.DEAD,
                                      now, "silence-confirmed")
                membership.transition(node, NodeHealthState.REPAIRING,
                                      now, "repair")
                repairing_node[tag] = node
                activated = pool.activate()
                covered = activated is not None
                if activated is not None:
                    in_service_ids.append(activated)
                    in_service_ids.sort()
                zombie = zombie_by_tag.pop(tag, None)
                if zombie is not None:
                    # The job dies only now; its slots were busy (and
                    # wasted) for the whole detection window.
                    width = zombie.entry.job.nodes
                    free += width - 1
                    result.zombie_node_seconds += (
                        width * (now - zombie.failed_at))
                    kill_progress(zombie.entry, zombie.failed_at)
                    result.job_kills += 1
                    result.requeues += 1
                    if self.requeue_backoff > 0:
                        heapq.heappush(
                            events, (now + self.requeue_backoff, _REQUEUE,
                                     zombie.entry.job.job_id, 0))
                    else:
                        queue.append(zombie.entry.job)
                        queue.sort(key=lambda j: (j.submit_time, j.job_id))
                    if covered:
                        free += 1     # spare takes the failed slot now
                    else:
                        accumulate(now)
                        out += 1
                        out_slots[tag] = now + self.repair_seconds
                else:
                    # Idle strike: the slot went out at the strike.
                    if covered:
                        accumulate(now)
                        out -= 1
                        free += 1
                        del out_slots[tag]
                    else:
                        # Refine the release estimate to the real one.
                        out_slots[tag] = now + self.repair_seconds
                heapq.heappush(events, (now + self.repair_seconds,
                                        _REPAIR, tag, int(covered)))

            elif kind == _FAILURE:
                result.failures += 1
                heapq.heappush(
                    events,
                    (now + float(rng.exponential(1 / failure_rate)),
                     _FAILURE, -1, 0))
                busy = (sum(r.job.nodes for r in running.values())
                        + sum(z.entry.job.nodes
                              for z in zombie_by_tag.values()))
                struck_in_use = rng.random() < busy / self.total_nodes
                if struck_in_use and running:
                    widths = np.array([r.job.nodes
                                       for r in running.values()],
                                      dtype=float)
                    victim_key = list(running)[int(
                        rng.choice(len(widths), p=widths / widths.sum()))]
                    victim = running.pop(victim_key)
                    # Cancel the attempt's completion immediately — the
                    # job is dead even though nobody knows yet.
                    generations[victim_key] += 1
                    next_tag += 1
                    node = in_service_ids.pop(0)
                    membership.transition(node, NodeHealthState.SUSPECTED,
                                          now, "missed-heartbeats")
                    struck_node[next_tag] = node
                    zombie_by_tag[next_tag] = _Zombie(entry=victim,
                                                      failed_at=now)
                    heapq.heappush(events,
                                   (now + self.detection_seconds,
                                    _DETECT, next_tag, 0))
                else:
                    if free <= 0:
                        return  # all non-busy slots already out
                    accumulate(now)
                    free -= 1
                    out += 1
                    next_tag += 1
                    node = in_service_ids.pop(0)
                    membership.transition(node, NodeHealthState.SUSPECTED,
                                          now, "missed-heartbeats")
                    struck_node[next_tag] = node
                    out_slots[next_tag] = (now + self.detection_seconds
                                           + self.repair_seconds)
                    heapq.heappush(events,
                                   (now + self.detection_seconds,
                                    _DETECT, next_tag, 0))

        while events and finished < len(jobs):
            now, kind, job_id, extra = heapq.heappop(events)
            if now > max_virtual_seconds:
                raise RuntimeError(
                    "virtual-time guard exceeded: with this MTBF/detect/"
                    "repair configuration the workload cannot drain")
            handle(now, kind, job_id, extra)
            # Batch simultaneous events before scheduling, matching the
            # oracle simulator's semantics.
            while events and events[0][0] == now:
                _t, kind2, job_id2, extra2 = heapq.heappop(events)
                handle(now, kind2, job_id2, extra2)

            # Scheduling pass.  Out-of-service and drained slots appear
            # as width-1 pseudo-jobs with estimated releases; zombies
            # masquerade as ordinary running jobs.
            running_view = [
                (entry.start_time + entry.job.estimate
                 * (entry.remaining_runtime / entry.job.runtime),
                 entry.job.nodes)
                for entry in running.values()
            ] + [
                (z.entry.start_time + z.entry.job.estimate
                 * (z.entry.remaining_runtime / z.entry.job.runtime),
                 z.entry.job.nodes)
                for z in zombie_by_tag.values()
            ] + [(release, 1) for release in out_slots.values()]
            for window_index, take in drain_taken.items():
                release = self.drains[window_index].end
                running_view.extend((release, 1) for _ in range(take))
            starts = self.policy.select(now, list(queue), running_view,
                                        free, self.total_nodes)
            started = set()
            for job in starts:
                if job.nodes > free or job.job_id in started:
                    raise RuntimeError(
                        f"policy {self.policy.name} overcommitted under "
                        "degraded capacity")
                started.add(job.job_id)
                free -= job.nodes
                generations[job.job_id] += 1
                generation = generations[job.job_id]
                work = remaining[job.job_id]
                running[job.job_id] = _RunningJob(
                    job=job, start_time=now,
                    remaining_runtime=work, generation=generation)
                heapq.heappush(events, (now + work, _COMPLETION,
                                        job.job_id, generation))
            if started:
                queue = [j for j in queue if j.job_id not in started]

        if finished < len(jobs):
            raise RuntimeError(
                f"{len(jobs) - finished} jobs never finished (event queue "
                "drained early)")
        accumulate(result.makespan)
        result.degraded_node_seconds = degraded_integral
        result.spare_activations = pool.activations
        result.min_spare_depth = pool.min_depth
        result.health_log = tuple(
            event.line() for event in membership.events)
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.gauge("sched.health.availability").set(
                result.availability)
            metrics.gauge("sched.health.zombie_node_seconds").set(
                result.zombie_node_seconds)
            metrics.gauge("sched.health.spare_activations").set(
                float(result.spare_activations))
            metrics.gauge("sched.health.min_spare_depth").set(
                float(result.min_spare_depth))
            metrics.gauge("sched.health.requeues").set(
                float(result.requeues))
        return result
