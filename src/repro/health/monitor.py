"""The heartbeat monitor: failure detection *through the fabric*.

One sender process per node emits a small heartbeat transfer to the
monitor host every ``heartbeat_interval`` seconds — through the same
:class:`~repro.network.fabric.Fabric` the application uses, so link
outages, congestion, drops, and partitions delay or lose heartbeats
exactly as they would real ones.  A periodic checker polls the pluggable
:class:`~repro.health.detectors.FailureDetector` and drives the
:class:`~repro.health.state.Membership` state machine: silence earns
``SUSPECTED``, prolonged silence ``DEAD``, resumed heartbeats refute a
suspicion back to ``HEALTHY``.

Crucially the monitor has **no oracle**: when a partition silences a
live node, the node is *falsely* suspected (and, if the partition
outlives the detector's patience, falsely declared dead).  Supervisors
that act on a death declaration must therefore be safe against acting
on a lie — which is exactly what the detection-driven campaign mode in
:mod:`repro.fault.campaign` proves.

Ground truth (which nodes actually crashed, via :meth:`HeartbeatMonitor.
crash`) is recorded *only* for metrics — mean time-to-detect and the
false-positive counters — never consulted by the detection path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.health.detectors import (
    FailureDetector,
    FixedTimeoutDetector,
    PhiAccrualDetector,
    Verdict,
)
from repro.health.state import HealthEvent, Membership, NodeHealthState
from repro.network.fabric import (
    Fabric,
    NetworkUnreachable,
    TransferDropped,
)
from repro.obs import Observability
from repro.sim.engine import Interrupt, Process, Simulator
from repro.sim.event import Event

__all__ = [
    "DeathRecord",
    "DetectionOutcome",
    "DetectionSpec",
    "HeartbeatMonitor",
    "MembershipMonitor",
]


@dataclass(frozen=True)
class DetectionSpec:
    """Declarative configuration of a failure detector deployment.

    ``detector`` selects the algorithm: ``"fixed"`` and ``"phi"`` run
    the central :class:`HeartbeatMonitor` with the matching verdict
    function; ``"gossip"`` runs the decentralized SWIM protocol in
    :class:`~repro.health.gossip.GossipMonitor` (build either through
    :func:`~repro.health.gossip.build_monitor`).
    Threshold fields left ``None`` derive from the heartbeat interval:
    ``suspect_after`` defaults to 3 intervals, ``dead_after`` to 8, and
    the checker runs every half interval.  The defaults are deliberately
    conservative; bench E21 sweeps them.

    For gossip, ``heartbeat_interval`` is the protocol period (one probe
    per node per period), ``heartbeat_bytes`` the fixed header cost of
    every ping/ack, ``effective_dead_after`` the suspicion timeout, and
    ``heartbeat_slots`` the slotted probe-round discipline; the
    ``k_indirect``/``piggyback_limit``/``bytes_per_update``/
    ``probe_timeout``/``retransmit_factor`` knobs are gossip-only and
    ignored by the central monitor.

    ``heartbeat_slots`` selects the sender scheduling discipline.
    ``None`` (the default) runs the legacy one-process-per-node senders,
    each staggered to its own phase — byte-compatible with every
    recorded E21 outcome.  An integer ``S`` switches to *slotted*
    scheduling: one driver process services ``S`` evenly-spaced slots
    per interval, node ``n`` beats in slot ``n % S``, so the engine
    sees ``S`` timer events per interval instead of one per node — the
    timer-wheel discipline that makes 10^4-node monitoring tractable.
    Nodes sharing a slot beat at the same instant (deliberately: the
    calendar queue delivers a same-instant batch in one walk).
    """

    detector: str = "fixed"
    heartbeat_interval: float = 2e-4
    heartbeat_bytes: int = 64
    monitor_host: int = 0
    check_interval: Optional[float] = None
    suspect_after: Optional[float] = None
    dead_after: Optional[float] = None
    phi_window: int = 16
    suspect_phi: float = 1.5
    dead_phi: float = 3.0
    heartbeat_slots: Optional[int] = None
    k_indirect: int = 3
    piggyback_limit: int = 8
    bytes_per_update: int = 16
    probe_timeout: Optional[float] = None
    retransmit_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.detector not in ("fixed", "phi", "gossip"):
            raise ValueError(
                f"unknown detector {self.detector!r} "
                "(fixed, phi or gossip)")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_bytes < 1:
            raise ValueError("heartbeat_bytes must be >= 1")
        if self.monitor_host < 0:
            raise ValueError("monitor_host must be >= 0")
        if self.check_interval is not None and self.check_interval <= 0:
            raise ValueError("check_interval must be positive or None")
        for name in ("suspect_after", "dead_after"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")
        if self.heartbeat_slots is not None and self.heartbeat_slots < 1:
            raise ValueError("heartbeat_slots must be >= 1 or None")
        if self.k_indirect < 1:
            raise ValueError("k_indirect must be >= 1")
        if self.piggyback_limit < 1:
            raise ValueError("piggyback_limit must be >= 1")
        if self.bytes_per_update < 0:
            raise ValueError("bytes_per_update must be >= 0")
        if self.retransmit_factor <= 0:
            raise ValueError("retransmit_factor must be positive")
        if self.probe_timeout is not None and not (
                0 < self.probe_timeout < self.heartbeat_interval):
            raise ValueError(
                "probe_timeout must sit inside one protocol period "
                "(0, heartbeat_interval) or be None")

    @property
    def effective_probe_timeout(self) -> float:
        """Gossip direct-probe ack deadline (a third of the period by
        default, leaving two thirds for the indirect relays)."""
        if self.probe_timeout is not None:
            return self.probe_timeout
        return self.heartbeat_interval / 3.0

    @property
    def effective_check_interval(self) -> float:
        """Checker period (half the heartbeat interval by default)."""
        if self.check_interval is not None:
            return self.check_interval
        return self.heartbeat_interval / 2.0

    @property
    def effective_suspect_after(self) -> float:
        """Fixed-detector suspicion threshold in seconds."""
        if self.suspect_after is not None:
            return self.suspect_after
        return 3.0 * self.heartbeat_interval

    @property
    def effective_dead_after(self) -> float:
        """Fixed-detector death threshold in seconds."""
        if self.dead_after is not None:
            return self.dead_after
        return 8.0 * self.heartbeat_interval

    def build_detector(self) -> FailureDetector:
        """Instantiate the configured central detector."""
        if self.detector == "gossip":
            raise ValueError(
                "gossip is a decentralized protocol with no central "
                "detector; build a GossipMonitor via "
                "repro.health.build_monitor")
        if self.detector == "phi":
            return PhiAccrualDetector(
                bootstrap_interval=self.heartbeat_interval,
                suspect_phi=self.suspect_phi,
                dead_phi=self.dead_phi,
                window=self.phi_window,
            )
        return FixedTimeoutDetector(
            suspect_after=self.effective_suspect_after,
            dead_after=self.effective_dead_after,
        )


@dataclass(frozen=True)
class DeathRecord:
    """One death declaration.  ``crashed_at`` is ground truth for
    metrics: the actual crash time, or ``None`` for a false positive."""

    node: int
    declared_at: float
    crashed_at: Optional[float]

    @property
    def false_positive(self) -> bool:
        """True when the declared-dead node was actually alive."""
        return self.crashed_at is None

    @property
    def detect_seconds(self) -> float:
        """Crash-to-declaration latency (NaN for a false positive)."""
        if self.crashed_at is None:
            return float("nan")
        return self.declared_at - self.crashed_at


@dataclass(frozen=True)
class DetectionOutcome:
    """What one monitored run measured, for reports and determinism
    tests (``health_log`` is the canonical membership event log)."""

    detections: Tuple[DeathRecord, ...]
    false_suspicions: int
    false_deaths: int
    mttd_seconds: float
    availability: float
    heartbeats_sent: int
    heartbeats_lost: int
    heartbeats_delivered: int
    epoch: int
    health_log: Tuple[str, ...]


class MembershipMonitor:
    """Shared chassis of every fabric-driven failure detector.

    Owns the pieces that are the same whether detection is central
    (:class:`HeartbeatMonitor`) or decentralized
    (:class:`~repro.health.gossip.GossipMonitor`): the epoch'd
    :class:`~repro.health.state.Membership` machine, ground-truth crash
    bookkeeping (metrics only, never consulted by detection), the death
    declaration queue + notice event, traffic counters, and the
    supervisor surface (:meth:`repair`, :meth:`drain`,
    :meth:`pop_deaths`, :meth:`outcome`, …).  Subclasses implement
    :meth:`start`/:meth:`stop` (spawn their protocol processes),
    :meth:`crash` and :meth:`restore`.

    ``heartbeats_sent``/``lost``/``delivered`` count *detector messages
    on the fabric* — heartbeats for the central monitor, pings, acks and
    ping-reqs for gossip — so bytes-on-wire comparisons between the two
    designs read off the same counters.
    """

    def __init__(self, sim: Simulator, fabric: Fabric, nodes: int,
                 spec: Optional[DetectionSpec] = None) -> None:
        if nodes < 1:
            raise ValueError("need at least one monitored node")
        self.spec = spec if spec is not None else DetectionSpec()
        if nodes > fabric.topology.hosts:
            raise ValueError(
                f"{nodes} monitored nodes but fabric has only "
                f"{fabric.topology.hosts} hosts")
        self.sim = sim
        self.fabric = fabric
        self.nodes = nodes
        self.membership = Membership(nodes, now=sim.now)
        #: Death declarations not yet consumed by a supervisor.
        self.pending_deaths: List[DeathRecord] = []
        #: Every death declaration, in order (real and false).
        self.deaths: List[DeathRecord] = []
        self.false_suspicions = 0
        self.false_deaths = 0
        self.heartbeats_sent = 0
        self.heartbeats_lost = 0
        self.heartbeats_delivered = 0
        self._crashed: Dict[int, float] = {}
        self._death_event: Event = sim.event("node-death")
        self._death_event.defused = True
        self._started = False

    # -- lifecycle (subclass responsibility) -------------------------------

    def start(self) -> None:
        """Spawn the detector's simulator processes."""
        raise NotImplementedError

    def stop(self) -> None:
        """Interrupt every live detector process (clean shutdown)."""
        raise NotImplementedError

    # -- supervisor surface ------------------------------------------------

    def crash(self, node: int) -> None:
        """Ground truth: ``node`` just died (recorded for MTTD metrics;
        detection itself must come from the protocol)."""
        raise NotImplementedError

    def restore(self, node: int) -> HealthEvent:
        """Repair finished: bring ``node`` back to HEALTHY service."""
        raise NotImplementedError

    @property
    def crashed_nodes(self) -> Tuple[int, ...]:
        """Nodes currently down for real (cleared by :meth:`restore`)."""
        return tuple(sorted(self._crashed))

    def repair(self, node: int) -> HealthEvent:
        """Dispatch repair for a declared-dead node (DEAD -> REPAIRING)."""
        return self._transition(node, NodeHealthState.REPAIRING, "repair")

    def drain(self, node: int) -> HealthEvent:
        """Administratively drain a healthy node."""
        return self._transition(node, NodeHealthState.DRAINING, "drain")

    def undrain(self, node: int) -> HealthEvent:
        """Cancel an administrative drain."""
        return self._transition(node, NodeHealthState.HEALTHY, "undrain")

    def death_notice(self) -> Event:
        """The event that fires at the *next* death declaration (the
        same replaced-event pattern as ``CommWorld.failure_notice``)."""
        return self._death_event

    def pop_deaths(self) -> List[DeathRecord]:
        """Drain and return unconsumed death declarations, in order."""
        deaths, self.pending_deaths = self.pending_deaths, []
        return deaths

    # -- metrics -----------------------------------------------------------

    def mttd_seconds(self) -> float:
        """Mean time-to-detect over real detections (NaN when none)."""
        real = [d.detect_seconds for d in self.deaths
                if not d.false_positive]
        if not real:
            return float("nan")
        return sum(real) / len(real)

    def outcome(self) -> DetectionOutcome:
        """Freeze this run's detection measurements."""
        return DetectionOutcome(
            detections=tuple(self.deaths),
            false_suspicions=self.false_suspicions,
            false_deaths=self.false_deaths,
            mttd_seconds=self.mttd_seconds(),
            availability=self.membership.availability(self.sim.now),
            heartbeats_sent=self.heartbeats_sent,
            heartbeats_lost=self.heartbeats_lost,
            heartbeats_delivered=self.heartbeats_delivered,
            epoch=self.membership.epoch,
            health_log=tuple(
                event.line() for event in self.membership.events),
        )

    def publish(self, obs: Observability) -> None:
        """Push summary gauges into an observability registry."""
        if not obs.enabled:
            return
        metrics = obs.metrics
        real = [d for d in self.deaths if not d.false_positive]
        if real:
            metrics.gauge("health.mttd_mean_seconds").set(
                self.mttd_seconds())
        metrics.gauge("health.deaths").set(float(len(self.deaths)))
        metrics.gauge("health.false_suspicions").set(
            float(self.false_suspicions))
        metrics.gauge("health.false_deaths").set(float(self.false_deaths))
        metrics.gauge("health.availability").set(
            self.membership.availability(self.sim.now))
        metrics.gauge("health.epoch").set(float(self.membership.epoch))
        metrics.gauge("health.heartbeats.sent").set(
            float(self.heartbeats_sent))
        metrics.gauge("health.heartbeats.lost").set(
            float(self.heartbeats_lost))
        metrics.gauge("health.heartbeats.delivered").set(
            float(self.heartbeats_delivered))

    # -- internals ---------------------------------------------------------

    def _transition(self, node: int, new: NodeHealthState,
                    cause: str) -> HealthEvent:
        event = self.membership.transition(node, new, self.sim.now, cause)
        obs = self.sim.obs
        if obs.enabled:
            obs.instant("health.transition", node=node,
                        old=event.old.value, new=event.new.value,
                        cause=cause)
            obs.metrics.counter("health.transitions").inc()
        return event

    def _declare_death(self, node: int, now: float) -> DeathRecord:
        """Record a death declaration (the membership transition to DEAD
        is the caller's job, with its protocol-specific cause) and fire
        the death notice."""
        crashed_at = self._crashed.get(node)
        record = DeathRecord(node=node, declared_at=now,
                             crashed_at=crashed_at)
        self.deaths.append(record)
        self.pending_deaths.append(record)
        obs = self.sim.obs
        if obs.enabled:
            if crashed_at is None:
                obs.metrics.counter("health.false_deaths").inc()
            else:
                obs.metrics.histogram("health.mttd_seconds").observe(
                    now - crashed_at)
        if crashed_at is None:
            self.false_deaths += 1
        notice, self._death_event = (
            self._death_event, self.sim.event("node-death"))
        self._death_event.defused = True
        notice.succeed(record)
        return record


class HeartbeatMonitor(MembershipMonitor):
    """Runs heartbeat senders and the detection checker on a simulator.

    Lifecycle: construct, :meth:`start`, then drive the simulator (the
    monitor's processes keep the event queue non-empty forever — use
    ``sim.run(until=...)`` or the ``stop`` predicate, never a bare
    ``sim.run()``).  A supervisor that kills a node calls :meth:`crash`
    (stops its heartbeats; the *detector* must still notice), and after
    acting on a death declaration calls :meth:`repair` then
    :meth:`restore` to bring the node back.
    """

    def __init__(self, sim: Simulator, fabric: Fabric, nodes: int,
                 spec: Optional[DetectionSpec] = None) -> None:
        super().__init__(sim, fabric, nodes, spec)
        if self.spec.monitor_host >= fabric.topology.hosts:
            raise ValueError(
                f"monitor_host {self.spec.monitor_host} not a fabric host")
        self.detector = self.spec.build_detector()
        self._senders: Dict[int, Process] = {}
        self._checker: Optional[Process] = None
        #: Slotted mode: nodes whose heartbeats are currently live, and the
        #: static node->slot assignment (node n beats in slot n % S).  The
        #: set is membership-tested only, never iterated, so it cannot leak
        #: hash order into the schedule.
        self._beating: Set[int] = set()
        self._slot_nodes: List[List[int]] = []
        self._slot_driver: Optional[Process] = None
        slots = self.spec.heartbeat_slots
        if slots is not None:
            self._slot_nodes = [[] for _ in range(slots)]
            for node in range(nodes):
                self._slot_nodes[node % slots].append(node)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Seed the detector and spawn sender + checker processes."""
        if self._started:
            raise RuntimeError("monitor already started")
        self._started = True
        now = self.sim.now
        slotted = self.spec.heartbeat_slots is not None
        for node in range(self.nodes):
            self.detector.reset(node, now)
            if slotted:
                self._beating.add(node)
            else:
                self._spawn_sender(node)
        if slotted:
            self._slot_driver = self.sim.process(
                self._slot_driver_body(), name="hb.slots")
        self._checker = self.sim.process(self._check_body(), name="hb.check")

    def stop(self) -> None:
        """Interrupt every live monitor process (clean shutdown so open
        spans close and the queue can quiesce)."""
        for process in self._senders.values():
            if process.is_alive:
                process.interrupt("monitor-stop")
        if self._slot_driver is not None and self._slot_driver.is_alive:
            self._slot_driver.interrupt("monitor-stop")
        if self._checker is not None and self._checker.is_alive:
            self._checker.interrupt("monitor-stop")

    # -- supervisor surface ------------------------------------------------

    def crash(self, node: int) -> None:
        """Ground truth: ``node`` just died.  Stops its heartbeat sender
        and records the time for MTTD metrics — detection itself must
        come from the checker, never from here."""
        if not 0 <= node < self.nodes:
            raise IndexError(f"node {node} out of range [0, {self.nodes})")
        if node in self._crashed:
            return
        self._crashed[node] = self.sim.now
        self._beating.discard(node)
        sender = self._senders.get(node)
        if sender is not None and sender.is_alive:
            sender.interrupt("crashed")

    def restore(self, node: int) -> HealthEvent:
        """Repair finished: node back to HEALTHY, detector history reset,
        heartbeats restarted (a falsely-declared node's sender survived
        and is reused)."""
        event = self._transition(node, NodeHealthState.HEALTHY, "restored")
        self._crashed.pop(node, None)
        self.detector.reset(node, self.sim.now)
        if self.spec.heartbeat_slots is not None:
            self._beating.add(node)
        else:
            sender = self._senders.get(node)
            if sender is None or not sender.is_alive:
                self._spawn_sender(node)
        return event

    # -- internals ---------------------------------------------------------

    def _spawn_sender(self, node: int) -> None:
        self._senders[node] = self.sim.process(
            self._sender_body(node), name=f"hb.send{node}")

    def _sender_body(self, node: int) -> Generator[Event, Any, None]:
        """Process body: emit one heartbeat per interval, staggered per
        node so the fleet's heartbeats do not collide on the fabric."""
        interval = self.spec.heartbeat_interval
        phase = interval * (node + 1) / (self.nodes + 1)
        try:
            yield self.sim.timeout(phase)
            while True:
                self.heartbeats_sent += 1
                self.sim.process(self._beat_body(node),
                                 name=f"hb{node}")
                yield self.sim.timeout(interval)
        except Interrupt:
            return

    def _slot_driver_body(self) -> Generator[Event, Any, None]:
        """Process body: one timer wheel for the whole fleet's heartbeats.

        Each interval is divided into ``heartbeat_slots`` evenly-spaced
        ticks; every tick emits the heartbeats of all live nodes assigned
        to that slot.  The engine therefore services S timer events per
        interval (vs one timeout *and one sender process* per node in
        legacy mode), and each tick's beats land on the calendar queue as
        one same-instant batch.  Slot targets are recomputed from the
        cycle index every interval (not accumulated), so float error does
        not drift the schedule.
        """
        interval = self.spec.heartbeat_interval
        slots = self.spec.heartbeat_slots
        if slots is None:  # pragma: no cover - start() gates on the spec
            raise RuntimeError("slot driver requires heartbeat_slots")
        spacing = interval / (slots + 1)
        base = self.sim.now
        beating = self._beating
        slot_nodes = self._slot_nodes
        cycle = 0
        try:
            while True:
                start = base + cycle * interval
                for s in range(slots):
                    delay = (start + spacing * (s + 1)) - self.sim.now
                    if delay > 0.0:
                        yield self.sim.timeout(delay)
                    for node in slot_nodes[s]:
                        if node in beating:
                            self.heartbeats_sent += 1
                            self.sim.process(self._beat_body(node),
                                             name=f"hb{node}")
                cycle += 1
        except Interrupt:
            return

    def _beat_body(self, node: int) -> Generator[Event, Any, None]:
        """Process body: one heartbeat transfer node -> monitor host.

        Spawned detached so a crash mid-flight cannot leak fabric
        resources (the in-flight packet completes or is lost on its
        own, exactly like application traffic)."""
        try:
            yield from self.fabric.transfer(node, self.spec.monitor_host,
                                            self.spec.heartbeat_bytes)
        except (TransferDropped, NetworkUnreachable):
            self.heartbeats_lost += 1
            return
        self.heartbeats_delivered += 1
        self.detector.observe(node, self.sim.now)

    def _check_body(self) -> Generator[Event, Any, None]:
        """Process body: poll the detector and drive the state machine."""
        interval = self.spec.effective_check_interval
        try:
            while True:
                yield self.sim.timeout(interval)
                now = self.sim.now
                for node in range(self.nodes):
                    self._check_node(node, now)
        except Interrupt:
            return

    def _check_node(self, node: int, now: float) -> None:
        state = self.membership.state_of(node)
        if state in (NodeHealthState.DEAD, NodeHealthState.REPAIRING):
            return
        verdict = self.detector.assess(node, now)
        if verdict is Verdict.TRUST:
            if state is NodeHealthState.SUSPECTED:
                self._transition(node, NodeHealthState.HEALTHY,
                                 "heartbeat-resumed")
            return
        if state in (NodeHealthState.HEALTHY, NodeHealthState.DRAINING):
            self._transition(node, NodeHealthState.SUSPECTED,
                             "missed-heartbeats")
            if node not in self._crashed:
                self.false_suspicions += 1
                obs = self.sim.obs
                if obs.enabled:
                    obs.metrics.counter("health.false_suspicions").inc()
        if verdict is Verdict.DEAD:
            self._transition(node, NodeHealthState.DEAD, "silence-confirmed")
            self._declare_death(node, now)
