"""Spare-node pools: healthy capacity held in reserve.

A :class:`SparePool` owns a set of node ids kept *outside* schedulable
capacity.  Activation hands out the lowest spare id (deterministic — the
same failure sequence always activates the same nodes) and repair
refills the pool, so the pool's depth over time is a byte-stable
function of the failure schedule.

The pool itself is policy-free bookkeeping: *when* to activate is the
caller's decision.  :class:`~repro.health.scheduling.
DegradedBatchSimulator` activates at detection time on the aggregate
batch model, and :class:`~repro.fault.availability.
DetectorDrivenSparePool` wraps this class so activation can only be
driven by a declared :class:`~repro.health.monitor.DeathRecord`, never
by ground truth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["SparePool"]


class SparePool:
    """Deterministic pool of spare node ids.

    ``activate()`` pops the lowest id (or returns ``None`` when the pool
    is dry); ``refill(node)`` returns a repaired node to the pool.  The
    pool tracks its high-water usage: ``activations`` counts every
    successful activation and ``min_depth`` records the lowest depth
    ever reached, which is the sizing signal capacity planners read
    (a min depth of zero means the pool was exhausted at least once).
    """

    def __init__(self, spare_ids: Sequence[int]) -> None:
        ids = sorted(spare_ids)
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate spare ids in {list(spare_ids)!r}")
        self._ids: List[int] = ids
        self.initial_depth = len(ids)
        self.activations = 0
        self.min_depth = len(ids)

    @property
    def depth(self) -> int:
        """Spares currently available."""
        return len(self._ids)

    @property
    def ids(self) -> Tuple[int, ...]:
        """Available spare ids, ascending."""
        return tuple(self._ids)

    def __contains__(self, node: int) -> bool:
        return node in self._ids

    def activate(self) -> Optional[int]:
        """Pop and return the lowest spare id, or ``None`` when dry."""
        if not self._ids:
            self.min_depth = 0
            return None
        node = self._ids.pop(0)
        self.activations += 1
        self.min_depth = min(self.min_depth, len(self._ids))
        return node

    def refill(self, node: int) -> None:
        """Return a repaired node to the pool (kept sorted)."""
        if node in self._ids:
            raise ValueError(f"node {node} is already in the spare pool")
        self._ids.append(node)
        self._ids.sort()

    def discard(self, node: int) -> bool:
        """Remove a spare that itself died; True when it was pooled."""
        if node in self._ids:
            self._ids.remove(node)
            self.min_depth = min(self.min_depth, len(self._ids))
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SparePool depth={len(self._ids)}"
                f"/{self.initial_depth} activations={self.activations}>")
