"""Pluggable failure detectors: heartbeat arrivals in, verdicts out.

A detector is deliberately dumb plumbing: it never touches the fabric,
the membership, or the clock — the :class:`~repro.health.monitor.
HeartbeatMonitor` feeds it arrival observations (``observe``) and polls
it for per-node verdicts (``assess``).  That split keeps detectors pure
virtual-time functions, trivially unit-testable and bit-deterministic.

Two classic designs:

* :class:`FixedTimeoutDetector` — silence beyond ``suspect_after``
  seconds is suspicious, beyond ``dead_after`` is fatal.  Simple,
  predictable, and the knob bench E21 sweeps.
* :class:`PhiAccrualDetector` — Hayashibara et al.'s accrual detector:
  the suspicion level phi grows continuously with silence, scaled by
  the *observed* inter-arrival mean, so a jittery network earns more
  patience than a quiet one.  Thresholds are on phi, not seconds.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import Deque, Dict

__all__ = [
    "FailureDetector",
    "FixedTimeoutDetector",
    "PhiAccrualDetector",
    "Verdict",
]


class Verdict(enum.Enum):
    """A detector's belief about one node at one instant."""

    TRUST = "trust"
    SUSPECT = "suspect"
    DEAD = "dead"


class FailureDetector:
    """Interface every detector implements (see module docstring)."""

    def observe(self, node: int, now: float) -> None:
        """Record a heartbeat from ``node`` arriving at ``now``."""
        raise NotImplementedError

    def assess(self, node: int, now: float) -> Verdict:
        """Current verdict for ``node`` (pure; no state change)."""
        raise NotImplementedError

    def reset(self, node: int, now: float) -> None:
        """Forget ``node``'s history and grant a fresh grace period
        starting at ``now`` (called at monitor start and after repair)."""
        raise NotImplementedError


class FixedTimeoutDetector(FailureDetector):
    """Silence thresholds in absolute seconds.

    ``suspect_after`` seconds without a heartbeat earns ``SUSPECT``;
    ``dead_after`` earns ``DEAD``.  A node never observed (and never
    reset) is trusted — the monitor always resets every node at start,
    so that case only arises in unit tests.
    """

    def __init__(self, suspect_after: float, dead_after: float) -> None:
        if suspect_after <= 0:
            raise ValueError("suspect_after must be positive")
        if dead_after < suspect_after:
            raise ValueError("dead_after must be >= suspect_after")
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self._last: Dict[int, float] = {}

    def observe(self, node: int, now: float) -> None:
        """Record an arrival: the silence clock restarts."""
        self._last[node] = now

    def reset(self, node: int, now: float) -> None:
        """Fresh grace period — identical to an arrival at ``now``."""
        self._last[node] = now

    def assess(self, node: int, now: float) -> Verdict:
        """Threshold the elapsed silence."""
        last = self._last.get(node)
        if last is None:
            return Verdict.TRUST
        elapsed = now - last
        if elapsed >= self.dead_after:
            return Verdict.DEAD
        if elapsed >= self.suspect_after:
            return Verdict.SUSPECT
        return Verdict.TRUST


#: log10(e): converts nats of surprise to the accrual paper's phi scale.
_LOG10_E = math.log10(math.e)


class PhiAccrualDetector(FailureDetector):
    """Adaptive accrual detector (phi on an exponential arrival model).

    The suspicion level for a node silent for ``t`` seconds is::

        phi = (t / mean_interval) * log10(e)

    i.e. ``-log10`` of the probability that an exponential inter-arrival
    with the observed mean exceeds ``t``.  ``mean_interval`` is the
    windowed mean of the node's observed heartbeat gaps; until two
    arrivals have been seen it falls back to ``bootstrap_interval`` (the
    configured heartbeat period), so freshly reset nodes get sane
    patience instead of instant suspicion.
    """

    def __init__(self, bootstrap_interval: float,
                 suspect_phi: float = 1.5, dead_phi: float = 3.0,
                 window: int = 16) -> None:
        if bootstrap_interval <= 0:
            raise ValueError("bootstrap_interval must be positive")
        if suspect_phi <= 0:
            raise ValueError("suspect_phi must be positive")
        if dead_phi < suspect_phi:
            raise ValueError("dead_phi must be >= suspect_phi")
        if window < 2:
            raise ValueError("window must be >= 2")
        self.bootstrap_interval = bootstrap_interval
        self.suspect_phi = suspect_phi
        self.dead_phi = dead_phi
        self.window = window
        self._last: Dict[int, float] = {}
        self._gaps: Dict[int, Deque[float]] = {}

    def observe(self, node: int, now: float) -> None:
        """Record an arrival and fold the gap into the window."""
        last = self._last.get(node)
        if last is not None and now > last:
            gaps = self._gaps.get(node)
            if gaps is None:
                gaps = deque(maxlen=self.window)
                self._gaps[node] = gaps
            gaps.append(now - last)
        self._last[node] = now

    def reset(self, node: int, now: float) -> None:
        """Forget history; patience restarts from the bootstrap mean."""
        self._last[node] = now
        self._gaps.pop(node, None)

    def _mean_interval(self, node: int) -> float:
        gaps = self._gaps.get(node)
        if not gaps or len(gaps) < 2:
            return self.bootstrap_interval
        return sum(gaps) / len(gaps)

    def phi(self, node: int, now: float) -> float:
        """The current suspicion level for ``node`` (0 when fresh)."""
        last = self._last.get(node)
        if last is None:
            return 0.0
        elapsed = now - last
        if elapsed <= 0:
            return 0.0
        return (elapsed / self._mean_interval(node)) * _LOG10_E

    def assess(self, node: int, now: float) -> Verdict:
        """Threshold phi."""
        level = self.phi(node, now)
        if level >= self.dead_phi:
            return Verdict.DEAD
        if level >= self.suspect_phi:
            return Verdict.SUSPECT
        return Verdict.TRUST
