"""SWIM-style gossip membership: decentralized failure detection.

The central :class:`~repro.health.monitor.HeartbeatMonitor` funnels
O(cluster) fabric transfers per interval into one host — the dominant
detection hotspot at 10^4+ nodes and a single point of failure one
partition can blind entirely.  :class:`GossipMonitor` removes both: every
node runs the SWIM probe loop (Das, Gupta & Motivala, 2002) and
membership state rides *on* the probe traffic, so detection load is O(1)
per node per protocol period and no single host or link is load-bearing.

Protocol, per node ``i`` and period ``T`` (``heartbeat_interval``):

1. **Randomized round-robin direct probe.**  ``i`` picks the next target
   ``t`` from a full pseudo-random sweep of the membership (an affine
   walk ``(a*pos + b) mod n`` with ``gcd(a, n) == 1``, reshuffled each
   sweep from ``i``'s named RNG stream) and sends a ping through the
   real :class:`~repro.network.fabric.Fabric`.  A live, reachable ``t``
   acks immediately.
2. **Indirect probes.**  No ack by ``probe_timeout``: ``i`` asks ``k``
   randomly chosen relays to ping ``t`` on its behalf (``ping-req``),
   buying per-link routing diversity — one bad link between ``i`` and
   ``t`` cannot by itself manufacture a suspicion.
3. **Suspicion, not execution.**  Still no ack by the period's end:
   ``i`` *suspects* ``t`` at ``t``'s current incarnation and starts a
   suspicion timer (``effective_dead_after``).  If the rumour reaches a
   live ``t``, it refutes by re-announcing itself alive at a higher
   incarnation; if the timer expires unrefuted, ``i`` declares ``t``
   dead.
4. **Piggybacked dissemination.**  Every ping/ack/ping-req carries up to
   ``piggyback_limit`` membership updates, each retransmitted
   ``ceil(retransmit_factor * log2(n + 1))`` times, fewest-sent first —
   the epidemic broadcast that spreads verdicts in O(log n) periods
   with zero dedicated traffic.

Update precedence is Serf-style: a higher incarnation wins outright, and
ties go to the graver status (dead > suspect > alive), so a restored
node rejoins by announcing a fresh incarnation.

Determinism: all randomness comes from per-node named
:class:`~repro.sim.rng.RandomStreams` streams (``health.gossip.n<i>``),
updates are applied in the (deterministic) simulator event order, and
piggyback selection sorts by (remaining budget, subject id) — so the
epoch'd membership log is byte-canonical across same-seed runs and
DetSan double-runs hold.

One modelling honesty note: the *global* membership machine this class
drives is an omniscient aggregation of every update any node creates —
the view a perfect observer subscribed to all gossip would hold.  A
partitioned minority keeps probing inside its island, so its (honest,
false) suspicions of the unreachable majority also land in the log;
that is the designed behaviour — minorities degrade instead of going
dark — and bench E23 measures exactly that contrast against the
blinded central monitor.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.health.monitor import (
    DetectionSpec,
    HeartbeatMonitor,
    MembershipMonitor,
)
from repro.health.state import HealthEvent, NodeHealthState
from repro.network.fabric import (
    Fabric,
    NetworkUnreachable,
    TransferDropped,
)
from repro.obs import Observability
from repro.sim.engine import Interrupt, Process, Simulator
from repro.sim.event import Event
from repro.sim.rng import RandomStreams

__all__ = [
    "GossipMonitor",
    "GossipStats",
    "GossipStatus",
    "build_monitor",
]


class GossipStatus(enum.IntEnum):
    """A disseminated belief about one node; ordering is severity."""

    ALIVE = 0
    SUSPECT = 1
    DEAD = 2


#: A member's default entry: alive at incarnation zero (never stored).
_FRESH: Tuple[GossipStatus, int] = (GossipStatus.ALIVE, 0)


def _wins(status: GossipStatus, incarnation: int,
          entry: Tuple[GossipStatus, int]) -> bool:
    """Does ``(status, incarnation)`` override ``entry``?

    Higher incarnation wins outright (this is what lets a restored node
    rejoin over its own death rumour); at equal incarnations the graver
    status wins; ties never override.
    """
    old_status, old_incarnation = entry
    if incarnation != old_incarnation:
        return incarnation > old_incarnation
    return status > old_status


@dataclass(frozen=True)
class GossipStats:
    """Wire-level accounting of one gossip run, for bench E23.

    ``bytes_sent``/``bytes_received`` aggregate the whole fleet;
    ``max_node_bytes_sent`` is the busiest single node's *outbound*
    detector traffic — the number whose flatness across cluster sizes
    is the O(1)-per-node claim.  ``dissemination_half_seconds`` holds,
    for each tracked update, how long it took to reach half the fleet.
    """

    probes: int
    indirect_probes: int
    probe_timeouts: int
    suspicions: int
    refutations: int
    messages_sent: int
    messages_delivered: int
    messages_lost: int
    bytes_sent: int
    bytes_received: int
    max_node_bytes_sent: int
    mean_node_bytes_sent: float
    dissemination_half_seconds: Tuple[float, ...]


class GossipMonitor(MembershipMonitor):
    """Decentralized SWIM membership over the real fabric.

    Same lifecycle and supervisor surface as
    :class:`~repro.health.monitor.HeartbeatMonitor` — construct,
    :meth:`start`, drive the simulator with ``until=``/``stop=``, feed
    ground truth through :meth:`crash`, consume declarations through
    :meth:`pop_deaths`, recover through :meth:`repair` +
    :meth:`restore` — so campaign supervisors, spare pools and the CLI
    swap detectors by flipping ``DetectionSpec.detector``.

    ``spec.heartbeat_slots`` selects probe-round scheduling exactly as
    for heartbeats: ``None`` runs one prober process per node (fine to
    ~10^3), an integer ``S`` runs one slot-driver walking ``S`` phases
    per period for the whole fleet — the discipline that makes 10^4-node
    gossip affordable on the calendar event queue.
    """

    def __init__(self, sim: Simulator, fabric: Fabric, nodes: int,
                 spec: Optional[DetectionSpec] = None,
                 streams: Optional[RandomStreams] = None) -> None:
        if spec is None:
            spec = DetectionSpec(detector="gossip")
        if spec.detector != "gossip":
            raise ValueError(
                f"GossipMonitor needs detector='gossip', got "
                f"{spec.detector!r}")
        super().__init__(sim, fabric, nodes, spec)
        self.streams = streams if streams is not None else RandomStreams(0)
        #: Retransmissions per update: the SWIM lambda * log2(n) budget.
        self.retransmit_budget = max(1, math.ceil(
            self.spec.retransmit_factor * math.log2(nodes + 1)))
        #: Per-node deviations from "alive at incarnation 0" (sparse).
        self._views: List[Dict[int, Tuple[GossipStatus, int]]] = [
            {} for _ in range(nodes)]
        #: Per-node dissemination queue: subject -> [status, inc, left].
        self._queues: List[Dict[int, List[int]]] = [
            {} for _ in range(nodes)]
        #: Each node's own incarnation number (bumped to refute).
        self._incarnation: List[int] = [0] * nodes
        #: The omniscient aggregation of every *created* update.
        self._winning: Dict[int, Tuple[GossipStatus, int]] = {}
        #: Affine sweep state per node: (a, b, position) or None.
        self._sweeps: List[Optional[Tuple[int, int, int]]] = [None] * nodes
        #: Nodes whose probe loop is live (membership-tested only, never
        #: iterated, so hash order cannot leak into the schedule).
        self._probing: Set[int] = set()
        self._rngs: Dict[int, Any] = {}
        self._probers: Dict[int, Process] = {}
        self._slot_driver: Optional[Process] = None
        self._slot_nodes: List[List[int]] = []
        slots = self.spec.heartbeat_slots
        if slots is not None:
            self._slot_nodes = [[] for _ in range(slots)]
            for node in range(nodes):
                self._slot_nodes[node % slots].append(node)
        #: In-flight dissemination tracking: update key -> (created_at,
        #: appliers).  Only created (rare) updates are tracked, so the
        #: steady state costs nothing.
        self._spread: Dict[Tuple[int, int, int],
                           Tuple[float, Set[int]]] = {}
        self._spread_goal = max(2, nodes // 2)
        self.probes = 0
        self.indirect_probes = 0
        self.probe_timeouts = 0
        self.suspicions = 0
        self.refutations = 0
        self.bytes_sent_by: List[int] = [0] * nodes
        self.bytes_received_by: List[int] = [0] * nodes
        self.dissemination_half_seconds: List[float] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the probe loops (per-node or slotted)."""
        if self._started:
            raise RuntimeError("monitor already started")
        self._started = True
        slotted = self.spec.heartbeat_slots is not None
        for node in range(self.nodes):
            self._probing.add(node)
            if not slotted:
                self._spawn_prober(node)
        if slotted:
            self._slot_driver = self.sim.process(
                self._slot_driver_body(), name="gs.slots")

    def stop(self) -> None:
        """Interrupt every live prober (clean shutdown so open spans
        close and the queue can quiesce)."""
        for process in self._probers.values():
            if process.is_alive:
                process.interrupt("monitor-stop")
        if self._slot_driver is not None and self._slot_driver.is_alive:
            self._slot_driver.interrupt("monitor-stop")
        self._probing.clear()

    # -- supervisor surface ------------------------------------------------

    def crash(self, node: int) -> None:
        """Ground truth: ``node`` just died.  Freezes its protocol
        participation (no probes, no acks, no update processing); the
        fleet must still *notice* through failed probes."""
        if not 0 <= node < self.nodes:
            raise IndexError(f"node {node} out of range [0, {self.nodes})")
        if node in self._crashed:
            return
        self._crashed[node] = self.sim.now
        self._probing.discard(node)
        prober = self._probers.get(node)
        if prober is not None and prober.is_alive:
            prober.interrupt("crashed")

    def restore(self, node: int) -> HealthEvent:
        """Repair finished: node rejoins at a fresh incarnation that
        overrides any death rumour still circulating."""
        event = self._transition(node, NodeHealthState.HEALTHY, "restored")
        rebooted = self._crashed.pop(node, None) is not None
        if rebooted:
            # A rebooted node forgets what it believed about the fleet.
            self._views[node] = {}
            self._queues[node] = {}
            self._sweeps[node] = None
        winning = self._winning.get(node, _FRESH)
        incarnation = max(self._incarnation[node], winning[1]) + 1
        self._incarnation[node] = incarnation
        # Pre-seed the aggregate so the rejoin announcement below cannot
        # re-drive the membership machine (the supervisor just did).
        self._winning[node] = (GossipStatus.ALIVE, incarnation)
        self._create_update(node, node, GossipStatus.ALIVE, incarnation)
        if self.spec.heartbeat_slots is not None:
            self._probing.add(node)
        else:
            prober = self._probers.get(node)
            if prober is None or not prober.is_alive:
                self._spawn_prober(node)
            self._probing.add(node)
        return event

    # -- metrics -----------------------------------------------------------

    def gossip_stats(self) -> GossipStats:
        """Freeze the wire-level protocol accounting."""
        total_sent = sum(self.bytes_sent_by)
        return GossipStats(
            probes=self.probes,
            indirect_probes=self.indirect_probes,
            probe_timeouts=self.probe_timeouts,
            suspicions=self.suspicions,
            refutations=self.refutations,
            messages_sent=self.heartbeats_sent,
            messages_delivered=self.heartbeats_delivered,
            messages_lost=self.heartbeats_lost,
            bytes_sent=total_sent,
            bytes_received=sum(self.bytes_received_by),
            max_node_bytes_sent=max(self.bytes_sent_by),
            mean_node_bytes_sent=total_sent / self.nodes,
            dissemination_half_seconds=tuple(
                self.dissemination_half_seconds),
        )

    def publish(self, obs: Observability) -> None:
        """Push the shared health gauges plus the gossip extras."""
        super().publish(obs)
        if not obs.enabled:
            return
        metrics = obs.metrics
        stats = self.gossip_stats()
        metrics.gauge("health.gossip.probes").set(float(stats.probes))
        metrics.gauge("health.gossip.indirect_probes").set(
            float(stats.indirect_probes))
        metrics.gauge("health.gossip.probe_timeouts").set(
            float(stats.probe_timeouts))
        metrics.gauge("health.gossip.suspicions").set(
            float(stats.suspicions))
        metrics.gauge("health.gossip.refutations").set(
            float(stats.refutations))
        metrics.gauge("health.gossip.bytes_sent").set(
            float(stats.bytes_sent))
        metrics.gauge("health.gossip.max_node_bytes_sent").set(
            float(stats.max_node_bytes_sent))
        if stats.dissemination_half_seconds:
            mean = (sum(stats.dissemination_half_seconds)
                    / len(stats.dissemination_half_seconds))
            metrics.gauge(
                "health.gossip.dissemination_half_seconds").set(mean)

    # -- probe scheduling --------------------------------------------------

    def _spawn_prober(self, node: int) -> None:
        self._probers[node] = self.sim.process(
            self._prober_body(node), name=f"gs.loop{node}")

    def _prober_body(self, node: int) -> Generator[Event, Any, None]:
        """Process body: one probe round per period, staggered per node
        so the fleet's probes do not collide on the fabric."""
        interval = self.spec.heartbeat_interval
        phase = interval * (node + 1) / (self.nodes + 1)
        try:
            yield self.sim.timeout(phase)
            while True:
                self._launch_probe(node)
                yield self.sim.timeout(interval)
        except Interrupt:
            return

    def _slot_driver_body(self) -> Generator[Event, Any, None]:
        """Process body: one timer wheel driving the whole fleet's probe
        rounds (same discipline as the slotted heartbeat sender: S
        evenly-spaced ticks per period, node n probes in slot n % S,
        slot targets recomputed from the cycle index so float error
        cannot drift the schedule)."""
        interval = self.spec.heartbeat_interval
        slots = self.spec.heartbeat_slots
        if slots is None:  # pragma: no cover - start() gates on the spec
            raise RuntimeError("slot driver requires heartbeat_slots")
        spacing = interval / (slots + 1)
        base = self.sim.now
        probing = self._probing
        slot_nodes = self._slot_nodes
        cycle = 0
        try:
            while True:
                start = base + cycle * interval
                for s in range(slots):
                    delay = (start + spacing * (s + 1)) - self.sim.now
                    if delay > 0.0:
                        yield self.sim.timeout(delay)
                    for node in slot_nodes[s]:
                        if node in probing:
                            self._launch_probe(node)
                cycle += 1
        except Interrupt:
            return

    def _launch_probe(self, node: int) -> None:
        """Start one probe round for ``node`` (no-op with no target)."""
        if node in self._crashed:
            return
        target = self._next_target(node)
        if target is None:
            return
        self.probes += 1
        self.sim.process(self._probe_body(node, target),
                         name=f"gs.probe{node}")

    # -- target selection --------------------------------------------------

    def _rng(self, node: int) -> Any:
        generator = self._rngs.get(node)
        if generator is None:
            generator = self.streams.get(f"health.gossip.n{node}")
            self._rngs[node] = generator
        return generator

    def _draw_sweep(self, node: int) -> Tuple[int, int, int]:
        """A fresh affine full-membership sweep for ``node``: visit
        order ``(a * position + b) mod n`` with ``gcd(a, n) == 1`` is a
        permutation of the fleet — randomized round-robin in O(1)
        memory per node."""
        rng = self._rng(node)
        n = self.nodes
        a = 1
        if n > 2:
            while True:
                a = int(rng.integers(1, n))
                if math.gcd(a, n) == 1:
                    break
        b = int(rng.integers(0, n)) if n > 1 else 0
        return (a, b, 0)

    def _next_target(self, node: int) -> Optional[int]:
        """The next probe target in ``node``'s randomized round-robin
        (skips itself and nodes it believes dead; ``None`` when no
        probeable peer remains)."""
        n = self.nodes
        if n < 2:
            return None
        view = self._views[node]
        sweep = self._sweeps[node]
        for _ in range(n + 1):
            if sweep is None or sweep[2] >= n:
                sweep = self._draw_sweep(node)
            a, b, position = sweep
            target = (a * position + b) % n
            sweep = (a, b, position + 1)
            if target == node:
                continue
            entry = view.get(target)
            if entry is not None and entry[0] is GossipStatus.DEAD:
                continue
            self._sweeps[node] = sweep
            return target
        self._sweeps[node] = sweep
        return None

    def _pick_relays(self, node: int, target: int) -> List[int]:
        """Up to ``k_indirect`` distinct relays for an indirect probe
        (never the prober or the target, never a believed-dead node)."""
        n = self.nodes
        k = min(self.spec.k_indirect, max(n - 2, 0))
        if k <= 0:
            return []
        rng = self._rng(node)
        view = self._views[node]
        chosen: List[int] = []
        attempts = 0
        while len(chosen) < k and attempts < 16 * k + 8:
            attempts += 1
            relay = int(rng.integers(0, n))
            if relay == node or relay == target or relay in chosen:
                continue
            entry = view.get(relay)
            if entry is not None and entry[0] is GossipStatus.DEAD:
                continue
            chosen.append(relay)
        return chosen

    # -- the probe round ---------------------------------------------------

    def _probe_body(self, node: int,
                    target: int) -> Generator[Event, Any, None]:
        """Process body: one full SWIM probe round (direct ping, then k
        indirect relays, then the suspicion verdict at period end)."""
        spec = self.spec
        direct_deadline = spec.effective_probe_timeout
        state: Dict[str, bool] = {"acked": False}
        self.sim.process(self._direct_leg(node, target, state),
                         name=f"gs.ping{node}")
        yield self.sim.timeout(direct_deadline)
        if state["acked"] or node in self._crashed:
            return
        for relay in self._pick_relays(node, target):
            self.indirect_probes += 1
            self.sim.process(self._indirect_leg(node, relay, target, state),
                             name=f"gs.req{node}")
        yield self.sim.timeout(
            max(spec.heartbeat_interval - direct_deadline, 0.0))
        if state["acked"] or node in self._crashed:
            return
        self.probe_timeouts += 1
        self._suspect(node, target)

    def _transmit(self, src: int, dst: int,
                  updates: int) -> Generator[Event, Any, bool]:
        """Process body fragment: one protocol message on the fabric.

        Returns True when the last byte reached ``dst``; loss and
        unreachability are swallowed into the counters exactly like
        lost heartbeats (the protocol's whole job is surviving them).
        """
        nbytes = (self.spec.heartbeat_bytes
                  + updates * self.spec.bytes_per_update)
        self.heartbeats_sent += 1
        self.bytes_sent_by[src] += nbytes
        try:
            yield from self.fabric.transfer(src, dst, nbytes)
        except (TransferDropped, NetworkUnreachable):
            self.heartbeats_lost += 1
            return False
        self.heartbeats_delivered += 1
        self.bytes_received_by[dst] += nbytes
        return True

    def _direct_leg(self, node: int, target: int,
                    state: Dict[str, bool]) -> Generator[Event, Any, None]:
        """Process body: ping ``node`` -> ``target``, ack back, both
        carrying piggybacked updates."""
        updates = self._select_updates(node)
        delivered = yield from self._transmit(node, target, len(updates))
        if not delivered or target in self._crashed:
            return
        self._deliver(target, updates)
        ack = self._select_updates(target)
        delivered = yield from self._transmit(target, node, len(ack))
        if not delivered or node in self._crashed:
            return
        self._deliver(node, ack)
        # A completed round trip is first-hand proof of life at the
        # target's current incarnation (implicit in every real ack).
        self._apply_update(node, target, GossipStatus.ALIVE,
                           self._incarnation[target])
        state["acked"] = True

    def _indirect_leg(self, node: int, relay: int, target: int,
                      state: Dict[str, bool]
                      ) -> Generator[Event, Any, None]:
        """Process body: the four-hop ping-req chain
        ``node -> relay -> target -> relay -> node``, each hop carrying
        the sender's piggyback — per-link routing diversity for the
        probe verdict."""
        updates = self._select_updates(node)
        delivered = yield from self._transmit(node, relay, len(updates))
        if not delivered or relay in self._crashed:
            return
        self._deliver(relay, updates)
        updates = self._select_updates(relay)
        delivered = yield from self._transmit(relay, target, len(updates))
        if not delivered or target in self._crashed:
            return
        self._deliver(target, updates)
        updates = self._select_updates(target)
        delivered = yield from self._transmit(target, relay, len(updates))
        if not delivered or relay in self._crashed:
            return
        self._deliver(relay, updates)
        updates = self._select_updates(relay)
        delivered = yield from self._transmit(relay, node, len(updates))
        if not delivered or node in self._crashed:
            return
        self._deliver(node, updates)
        self._apply_update(node, target, GossipStatus.ALIVE,
                           self._incarnation[target])
        state["acked"] = True

    # -- update plumbing ---------------------------------------------------

    def _select_updates(self, node: int
                        ) -> List[Tuple[int, GossipStatus, int]]:
        """Pick up to ``piggyback_limit`` updates from ``node``'s
        dissemination queue, fewest-sent first (ties by subject id, so
        the choice is deterministic), and charge their budgets."""
        queue = self._queues[node]
        if not queue:
            return []
        order = sorted(queue.items(),
                       key=lambda item: (-item[1][2], item[0]))
        picked = order[:self.spec.piggyback_limit]
        selected: List[Tuple[int, GossipStatus, int]] = []
        for subject, entry in picked:
            selected.append(
                (subject, GossipStatus(entry[0]), entry[1]))
            entry[2] -= 1
            if entry[2] <= 0:
                del queue[subject]
        return selected

    def _deliver(self, node: int,
                 updates: List[Tuple[int, GossipStatus, int]]) -> None:
        """Process a delivered message's piggyback at ``node``."""
        if node in self._crashed:
            return
        for subject, status, incarnation in updates:
            if subject == node:
                # Hearing a rumour about yourself: refute suspicion by
                # out-bidding its incarnation.  (A death rumour about a
                # live self cannot be refuted in SWIM; the supervisor's
                # restore path owns that.)
                if (status is GossipStatus.SUSPECT
                        and incarnation >= self._incarnation[node]):
                    self._incarnation[node] = incarnation + 1
                    self.refutations += 1
                    obs = self.sim.obs
                    if obs.enabled:
                        obs.metrics.counter(
                            "health.gossip.refutations").inc()
                    self._create_update(node, node, GossipStatus.ALIVE,
                                        incarnation + 1)
                continue
            self._apply_update(node, subject, status, incarnation)

    def _apply_update(self, node: int, subject: int, status: GossipStatus,
                      incarnation: int) -> None:
        """Merge one heard update into ``node``'s view; winners are
        queued for re-dissemination (the epidemic relay)."""
        view = self._views[node]
        if not _wins(status, incarnation, view.get(subject, _FRESH)):
            return
        view[subject] = (status, incarnation)
        self._queues[node][subject] = [
            int(status), incarnation, self.retransmit_budget]
        record = self._spread.get((subject, int(status), incarnation))
        if record is not None:
            created_at, appliers = record
            appliers.add(node)
            if len(appliers) >= self._spread_goal:
                self.dissemination_half_seconds.append(
                    self.sim.now - created_at)
                del self._spread[(subject, int(status), incarnation)]

    def _create_update(self, origin: int, subject: int,
                       status: GossipStatus, incarnation: int) -> None:
        """First-hand knowledge enters the gossip: ``origin`` asserts
        ``(subject, status, incarnation)``, seeds its own view and
        queue, and the omniscient aggregate judges whether the fleet's
        winning belief changed."""
        view = self._views[origin]
        if _wins(status, incarnation, view.get(subject, _FRESH)):
            view[subject] = (status, incarnation)
        self._queues[origin][subject] = [
            int(status), incarnation, self.retransmit_budget]
        key = (subject, int(status), incarnation)
        if key not in self._spread and self._spread_goal <= self.nodes:
            self._spread[key] = (self.sim.now, {origin})
        if _wins(status, incarnation, self._winning.get(subject, _FRESH)):
            self._winning[subject] = (status, incarnation)
            self._aggregate_transition(origin, subject, status)

    def _suspect(self, node: int, target: int) -> None:
        """A full probe round failed: ``node`` suspects ``target`` at
        its currently-known incarnation and starts the suspicion
        timer."""
        view = self._views[node]
        entry = view.get(target, _FRESH)
        if entry[0] is GossipStatus.DEAD:
            return
        incarnation = entry[1]
        self.suspicions += 1
        obs = self.sim.obs
        if obs.enabled:
            obs.instant("health.gossip.suspect", node=target,
                        by=node)
            obs.metrics.counter("health.gossip.suspicions").inc()
        self._create_update(node, target, GossipStatus.SUSPECT,
                            incarnation)
        self.sim.process(
            self._suspicion_timer_body(node, target, incarnation),
            name=f"gs.sus{node}")

    def _suspicion_timer_body(self, node: int, target: int,
                              incarnation: int
                              ) -> Generator[Event, Any, None]:
        """Process body: the suspicion clock.  Expires into a death
        assertion unless the suspicion was refuted (overridden in
        ``node``'s view) first."""
        try:
            yield self.sim.timeout(self.spec.effective_dead_after)
        except Interrupt:
            return
        if node in self._crashed:
            return
        entry = self._views[node].get(target)
        if entry is None or entry != (GossipStatus.SUSPECT, incarnation):
            return
        self._create_update(node, target, GossipStatus.DEAD, incarnation)

    def _aggregate_transition(self, origin: int, subject: int,
                              status: GossipStatus) -> None:
        """The fleet's winning belief about ``subject`` changed: drive
        the canonical membership machine (and death declarations) the
        way a perfect gossip observer would."""
        state = self.membership.state_of(subject)
        if status is GossipStatus.SUSPECT:
            if state in (NodeHealthState.HEALTHY,
                         NodeHealthState.DRAINING):
                self._transition(subject, NodeHealthState.SUSPECTED,
                                 f"gossip-suspect-by-{origin}")
                if subject not in self._crashed:
                    self.false_suspicions += 1
                    obs = self.sim.obs
                    if obs.enabled:
                        obs.metrics.counter(
                            "health.false_suspicions").inc()
        elif status is GossipStatus.ALIVE:
            if state is NodeHealthState.SUSPECTED:
                self._transition(subject, NodeHealthState.HEALTHY,
                                 "gossip-refuted")
        elif state is NodeHealthState.SUSPECTED:
            self._transition(subject, NodeHealthState.DEAD,
                             f"gossip-dead-by-{origin}")
            self._declare_death(subject, self.sim.now)


def build_monitor(sim: Simulator, fabric: Fabric, nodes: int,
                  spec: Optional[DetectionSpec] = None,
                  streams: Optional[RandomStreams] = None
                  ) -> Union[HeartbeatMonitor, GossipMonitor]:
    """Build the monitor ``spec.detector`` asks for.

    The one switch point every consumer (campaign supervisor, jobs
    service, CLI, benches) goes through: ``"fixed"``/``"phi"`` return a
    central :class:`HeartbeatMonitor`, ``"gossip"`` a
    :class:`GossipMonitor` seeded from ``streams`` (a fresh
    ``RandomStreams(0)`` when omitted — pass the campaign's streams so
    per-node probe randomness derives from the campaign seed).
    """
    if spec is None:
        spec = DetectionSpec()
    if spec.detector == "gossip":
        return GossipMonitor(sim, fabric, nodes, spec=spec,
                             streams=streams)
    return HeartbeatMonitor(sim, fabric, nodes, spec=spec)
