"""Declarative fault campaigns: real kernels under injected failures.

A *campaign* runs one application kernel (registered via
:func:`register_kernel`) across simulated ranks while a schedule of
**node faults** (a rank's machine dies, the job is torn down and
restarted from the last coordinated checkpoint) and **link/switch down
windows** (the fabric drops or re-routes traffic) plays out.  The runner
then re-executes the identical workload with faults disabled and checks
the answers are **bit-identical** — the end-to-end proof that recovery
preserved correctness, not just liveness.

The moving parts, bottom-up:

* :class:`CheckpointVault` — in-memory coordinated checkpoint store; a
  version commits only when *every* rank has staged it, so a failure
  mid-checkpoint rolls back to the previous complete version;
* :class:`RankCheckpoint` — the per-rank handle kernels see: a
  ``restored`` state (or ``None`` on fresh start) and a coordinated
  ``save`` (barrier, write cost, stage);
* :func:`run_campaign` — the supervisor: spawns an incarnation of the
  job, advances virtual time to the next scheduled node fault, tears the
  job down (every rank interrupted, the victim with a
  :class:`~repro.sim.causes.FailureCause`), pays the restart cost, and
  respawns from the vault — repeating until the job completes; then
  replays the failure-free run and compares answers.

Everything is deterministic for a fixed seed: fault times are declared,
retry jitter and random loss draw from named
:class:`~repro.sim.rng.RandomStreams` streams, and the event kernel
breaks ties by scheduling order — so the same spec reproduces the same
failure trace, retry counts, and metrics, which the tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.health.gossip import build_monitor
from repro.health.monitor import (
    DetectionOutcome,
    DetectionSpec,
)
from repro.messaging.comm import CommConfig, CommWorld, Communicator
from repro.network.fabric import Fabric, FabricFaultPlan
from repro.network.technologies import get_interconnect
from repro.network.topology import FatTreeTopology, Node
from repro.obs import NULL_OBS, Observability
from repro.sim.causes import AbortCause, FailureCause
from repro.sim.detsan import DetSanRecorder
from repro.sim.engine import Process, SimulationError, Simulator
from repro.sim.rng import RandomStreams

__all__ = [
    "NodeFaultSpec",
    "LinkFaultSpec",
    "SwitchFaultSpec",
    "CampaignSpec",
    "CampaignReport",
    "CheckpointVault",
    "RankCheckpoint",
    "RunOutcome",
    "register_kernel",
    "get_kernel",
    "available_kernels",
    "build_fault_plan",
    "run_campaign",
    "run_workload",
]

#: A kernel factory maps (ranks, streams, app_args) to a rank body
#: ``body(comm, ckpt)`` — a generator returning the rank's answer.
KernelFactory = Callable[[int, RandomStreams, Dict[str, Any]],
                         Callable[[Communicator, "RankCheckpoint"], Any]]

_KERNELS: Dict[str, KernelFactory] = {}


def register_kernel(name: str, factory: KernelFactory) -> None:
    """Register an app kernel for campaigns (idempotent per name)."""
    _KERNELS[name] = factory


def get_kernel(name: str) -> KernelFactory:
    """Look up a registered kernel factory by name."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {available_kernels()} "
            "(import repro.apps.campaigns to register the standard ones)"
        ) from None


def available_kernels() -> List[str]:
    """Registered kernel names, sorted."""
    return sorted(_KERNELS)


# -- fault schedule specs --------------------------------------------------


@dataclass(frozen=True)
class NodeFaultSpec:
    """At virtual ``time``, the node hosting ``rank`` dies: the job is
    torn down and restarted from the last committed checkpoint."""

    time: float
    rank: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be >= 0")
        if self.rank < 0:
            raise ValueError("victim rank must be >= 0")


@dataclass(frozen=True)
class LinkFaultSpec:
    """The link between graph nodes ``a`` and ``b`` is down for
    ``[start, start + duration)``; traffic re-routes or retries."""

    start: float
    duration: float
    a: Node
    b: Node

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("need start >= 0 and duration > 0")


@dataclass(frozen=True)
class SwitchFaultSpec:
    """Switch ``node`` is down for ``[start, start + duration)``."""

    start: float
    duration: float
    node: Node

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("need start >= 0 and duration > 0")


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative fault campaign.

    ``app_args`` is a tuple of ``(key, value)`` pairs (hashable stand-in
    for a dict) handed to the kernel factory.  ``checkpoint_every``
    checkpoints after every k-th kernel step.  The messaging layer runs
    reliable + fault-aware by default — a campaign without reliable
    delivery deadlocks on the first lost message, which is itself a
    result (the "no-recovery cliff" of bench E20).
    """

    kernel: str
    ranks: int
    name: str = ""
    app_args: Tuple[Tuple[str, Any], ...] = ()
    node_faults: Tuple[NodeFaultSpec, ...] = ()
    link_faults: Tuple[LinkFaultSpec, ...] = ()
    switch_faults: Tuple[SwitchFaultSpec, ...] = ()
    seed: int = 0
    technology: str = "gigabit_ethernet"
    hosts_per_leaf: Optional[int] = None
    checkpoint_every: int = 1
    checkpoint_write_seconds: float = 1e-3
    restart_seconds: float = 5e-3
    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    reliable: bool = True
    fault_aware: bool = True
    op_timeout: Optional[float] = None
    max_retries: int = 12
    #: When set, the faulty run recovers from *detected* deaths (a
    #: heartbeat monitor through the fabric) instead of the oracle:
    #: rollback waits for the detector, lost work includes time-to-
    #: detect, and a partition can trigger a spurious-but-safe rollback.
    detection: Optional[DetectionSpec] = None

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise ValueError("need at least one rank")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.checkpoint_write_seconds < 0 or self.restart_seconds < 0:
            raise ValueError("checkpoint/restart costs must be >= 0")
        for fault in self.node_faults:
            if fault.rank >= self.ranks:
                raise ValueError(
                    f"node fault victim {fault.rank} >= ranks {self.ranks}")

    def comm_config(self) -> CommConfig:
        """The messaging configuration this campaign runs under."""
        return CommConfig(reliable=self.reliable,
                          fault_aware=self.fault_aware,
                          op_timeout=self.op_timeout,
                          max_retries=self.max_retries)

    def topology(self) -> FatTreeTopology:
        """Full-bisection fat tree (spine redundancy enables re-routing)."""
        per_leaf = self.hosts_per_leaf
        if per_leaf is None:
            per_leaf = max(2, -(-self.ranks // 4))  # ceil(ranks / 4)
        return FatTreeTopology(self.ranks, hosts_per_leaf=per_leaf,
                               spines=per_leaf)


# -- coordinated checkpointing ---------------------------------------------


class CheckpointVault:
    """Versioned, coordinated checkpoint store (reliable storage model).

    A version commits only once every rank has staged it; partial stages
    (a failure landed mid-checkpoint) are discarded on rollback, so
    restarts only ever see complete, consistent cuts.
    """

    def __init__(self, ranks: int) -> None:
        if ranks < 1:
            raise ValueError("need at least one rank")
        self.ranks = ranks
        self._staged: Dict[int, Dict[int, Any]] = {}
        self._committed: Optional[Tuple[int, Dict[int, Any]]] = None
        self.commits = 0
        #: ``(virtual time, step)`` of every commit, in order.
        self.commit_times: List[Tuple[float, int]] = []

    def stage(self, rank: int, step: int, state: Any, now: float) -> None:
        """Record one rank's state for version ``step``; commits the
        version when the last rank arrives."""
        bucket = self._staged.setdefault(step, {})
        bucket[rank] = state
        if len(bucket) == self.ranks:
            self._committed = (step, bucket)
            self.commits += 1
            self.commit_times.append((now, step))
            for stale in [s for s in self._staged if s <= step]:
                del self._staged[stale]

    def rollback(self) -> None:
        """Discard partial stages (called at teardown after a fault)."""
        self._staged.clear()

    @property
    def latest(self) -> Optional[Tuple[int, Dict[int, Any]]]:
        """The newest committed ``(step, {rank: state})``, or ``None``."""
        return self._committed

    @property
    def last_commit_time(self) -> Optional[float]:
        """When the most recent checkpoint committed (None if never)."""
        return self.commit_times[-1][0] if self.commit_times else None


class RankCheckpoint:
    """Per-rank checkpoint handle handed to kernels.

    ``restored`` is this rank's state from the newest committed version
    (``None`` on a fresh start); ``interval`` is how many kernel steps
    between checkpoints; :meth:`save` is the coordinated write.
    """

    def __init__(self, vault: CheckpointVault, comm: Communicator,
                 write_seconds: float, interval: int = 1) -> None:
        self.vault = vault
        self.comm = comm
        self.write_seconds = write_seconds
        self.interval = interval
        committed = vault.latest
        self.restored_step: Optional[int] = None
        self.restored: Optional[Any] = None
        if committed is not None:
            self.restored_step = committed[0]
            self.restored = committed[1].get(comm.rank)

    def due(self, completed_steps: int) -> bool:
        """Should the kernel checkpoint after ``completed_steps`` steps?"""
        return completed_steps % self.interval == 0

    def save(self, step: int, state: Any):
        """Generator: coordinated checkpoint of ``state`` as version
        ``step`` — barrier (every rank quiesces at the same cut), write
        cost, then stage into the vault."""
        obs = self.comm.sim.obs
        with obs.span("ckpt.save", step=step, rank=self.comm.rank):
            yield from self.comm.barrier()
            if self.write_seconds > 0:
                yield self.comm.sim.timeout(self.write_seconds)
            self.vault.stage(self.comm.rank, step, state,
                             self.comm.sim.now)
        if obs.enabled:
            committed = self.vault.latest
            if committed is not None and committed[0] == step:
                # This rank's stage completed the version: the commit
                # instant lands exactly once per committed cut.
                obs.instant("ckpt.commit", step=step)
                obs.metrics.counter("ckpt.commits").inc()


# -- campaign execution ----------------------------------------------------


@dataclass(frozen=True)
class RunOutcome:
    """One full execution (clean or faulty) of the campaign workload."""

    elapsed: float
    answers: Tuple[Any, ...]
    incarnations: int
    commits: int
    fault_trace: Tuple[Tuple[float, int, Optional[int]], ...]
    lost_work_seconds: float
    recovery_seconds: float
    comm_stats: Dict[str, int]
    fabric_counters: Dict[str, int]
    #: Detector measurements when the run was detection-driven.
    detection: Optional[DetectionOutcome] = None


@dataclass(frozen=True)
class CampaignReport:
    """What a campaign measured, plus the correctness verdict."""

    spec: CampaignSpec
    clean: RunOutcome
    faulty: RunOutcome
    answers_match: bool

    @property
    def goodput(self) -> float:
        """Failure-free elapsed time over faulty elapsed time (1.0 means
        faults cost nothing; the no-recovery cliff drives this to 0)."""
        if self.faulty.elapsed <= 0:
            return 1.0
        return self.clean.elapsed / self.faulty.elapsed

    @property
    def retries(self) -> int:
        """Retransmissions the faulty run needed."""
        return self.faulty.comm_stats.get("retries", 0)

    def summary(self) -> str:
        """One paragraph for CLI output."""
        f = self.faulty
        text = (
            f"campaign {self.spec.name or self.spec.kernel!r}: "
            f"{len(f.fault_trace)} node fault(s), "
            f"{self.spec.topology().num_switches} switches, "
            f"{f.incarnations - 1} restart(s), {f.commits} checkpoint "
            f"commit(s), {f.comm_stats.get('retries', 0)} retransmit(s); "
            f"elapsed {f.elapsed:.6f}s vs {self.clean.elapsed:.6f}s clean "
            f"(goodput {self.goodput:.3f}); lost work "
            f"{f.lost_work_seconds:.6f}s; answers "
            f"{'bit-identical' if self.answers_match else 'DIVERGED'}"
        )
        detection = f.detection
        if detection is not None:
            mttd = detection.mttd_seconds
            mttd_text = ("n/a" if math.isnan(mttd)
                         else f"{mttd * 1000.0:.3f}ms")
            text += (
                f"; detector declared {len(detection.detections)} "
                f"death(s) ({detection.false_deaths} false), "
                f"MTTD {mttd_text}, availability "
                f"{detection.availability:.4f}"
            )
        return text


def _answers_equal(left: Any, right: Any) -> bool:
    """Bit-identical comparison across per-rank answer structures."""
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return bool(np.array_equal(np.asarray(left), np.asarray(right)))
    return bool(left == right)


def build_fault_plan(
        topology: FatTreeTopology,
        link_faults: Tuple[LinkFaultSpec, ...] = (),
        switch_faults: Tuple[SwitchFaultSpec, ...] = (),
        drop_probability: float = 0.0,
        corrupt_probability: float = 0.0,
        streams: Optional[RandomStreams] = None,
) -> Optional[FabricFaultPlan]:
    """The fabric fault plan for a faulty run (None when no fabric
    faults are declared).  Endpoints are validated against the topology
    so a typo'd node name fails loudly instead of silently never
    matching a route (hosts are ``("h", rank)``, switches ``("s", i)``).

    Shared by :func:`run_campaign` here and the job-control-plane
    campaigns in :mod:`repro.jobs.campaign` — one translation from
    declarative fault specs to a live :class:`FabricFaultPlan`.
    """
    random_faults = drop_probability > 0 or corrupt_probability > 0
    if not (link_faults or switch_faults or random_faults):
        return None
    rng = None
    if random_faults:
        if streams is None:
            raise ValueError(
                "probabilistic fabric faults need a RandomStreams")
        rng = streams.get("network.faults")
    plan = FabricFaultPlan(drop_probability=drop_probability,
                           corrupt_probability=corrupt_probability,
                           rng=rng)
    for lf in link_faults:
        if not topology.graph.has_edge(lf.a, lf.b):
            raise ValueError(
                f"link fault on {lf.a!r}--{lf.b!r}: no such link in the "
                f"campaign topology (hosts are ('h', rank), switches "
                f"('s', i))")
        plan.link_down(lf.a, lf.b, lf.start, lf.start + lf.duration)
    for sf in switch_faults:
        if sf.node not in topology.graph:
            raise ValueError(
                f"switch fault on {sf.node!r}: no such node in the "
                f"campaign topology")
        plan.node_down(sf.node, sf.start, sf.start + sf.duration)
    return plan


def _build_plan(spec: CampaignSpec, streams: RandomStreams,
                topology: FatTreeTopology) -> Optional[FabricFaultPlan]:
    """Spec-shaped wrapper over :func:`build_fault_plan`."""
    return build_fault_plan(
        topology,
        link_faults=spec.link_faults,
        switch_faults=spec.switch_faults,
        drop_probability=spec.drop_probability,
        corrupt_probability=spec.corrupt_probability,
        streams=streams)


def _teardown(procs: List[Process], victim: int, index: int) -> None:
    """Interrupt every live rank of the incarnation.

    A process whose pending wakeup is due at this very instant no-ops
    the first interrupt (it "finished first" — the same-timestamp rule),
    so the caller drains the queue and calls this again; the second pass
    always lands because survivors then wait on strictly-future events.
    """
    for rank, process in enumerate(procs):
        if process.is_alive:
            if rank == victim:
                process.interrupt(FailureCause.numbered(index))
            else:
                process.interrupt(AbortCause.numbered(victim, index))


def _collect_counters(plan: Optional[FabricFaultPlan]) -> Dict[str, int]:
    """Fabric fault-plan counters (zeros when no plan was active)."""
    if plan is None:
        return {
            "drops": 0, "corruptions": 0, "reroutes": 0, "unreachable": 0,
            "link_outages": 0,
        }
    return {
        "drops": plan.drops,
        "corruptions": plan.corruptions,
        "reroutes": plan.reroutes,
        "unreachable": plan.unreachable,
        "link_outages": plan.link_outages,
    }


def _collect_comm_stats(worlds: List[CommWorld]) -> Dict[str, int]:
    """Sum messaging stats across incarnations' worlds, so retransmits
    from torn-down incarnations still count."""
    comm_stats: Dict[str, int] = {}
    for world in worlds:
        for key, value in world.stats.snapshot().items():
            comm_stats[key] = comm_stats.get(key, 0) + value
    return comm_stats


def _verify_procs(procs: List[Process]) -> None:
    """Final-incarnation sanity: every rank finished cleanly."""
    for rank, process in enumerate(procs):
        if process.triggered and not process.ok:
            raise process.value
        if not process.triggered:
            raise SimulationError(
                f"campaign deadlock: rank {rank} still blocked after the "
                "event queue drained (message lost without reliable "
                "delivery, or an un-recovered failure)"
            )


def _publish_run_metrics(obs: Observability, incarnations: int,
                         lost_work: float, recovery: float, elapsed: float,
                         comm_stats: Dict[str, int],
                         counters: Dict[str, int]) -> None:
    """Push the per-run gauges every execution path shares."""
    if not obs.enabled:
        return
    metrics = obs.metrics
    metrics.gauge("campaign.incarnations").set(float(incarnations))
    metrics.gauge("campaign.lost_work_seconds").set(lost_work)
    metrics.gauge("campaign.recovery_seconds").set(recovery)
    metrics.gauge("campaign.elapsed_seconds").set(elapsed)
    for key, value in comm_stats.items():
        metrics.gauge(f"comm.stats.{key}").set(float(value))
    for key, value in counters.items():
        metrics.gauge(f"fabric.plan.{key}").set(float(value))


def _run_once(spec: CampaignSpec, faults_enabled: bool,
              obs: Optional[Observability] = None,
              detsan: Optional[DetSanRecorder] = None) -> RunOutcome:
    """Execute the campaign workload once, with or without faults.

    When the spec carries a :class:`~repro.health.monitor.DetectionSpec`
    and faults are enabled, recovery is detection-driven (see
    :func:`_run_detected`); the clean reference always runs oracle-free,
    which strengthens the bit-identity check — the detector may change
    *when* recovery happens, never *what* is computed.  ``detsan``
    attaches a determinism sanitizer to the run's simulator.
    """
    if obs is None:
        obs = NULL_OBS
    if faults_enabled and spec.detection is not None:
        return _run_detected(spec, obs, detsan=detsan)
    streams = RandomStreams(seed=spec.seed)
    sim = Simulator(obs=obs, detsan=detsan)
    topology = spec.topology()
    plan = (_build_plan(spec, streams, topology)
            if faults_enabled else None)
    # One fabric for the whole run: outage schedules, degraded-route
    # caches, and traffic counters span incarnations, as on a real
    # machine.  Each incarnation gets a fresh CommWorld so stale traffic
    # from a torn-down job can never match a restarted rank's receives.
    fabric = Fabric(sim, topology, get_interconnect(spec.technology),
                    fault_plan=plan)
    config = spec.comm_config()
    vault = CheckpointVault(spec.ranks)
    factory = get_kernel(spec.kernel)
    body_fn = factory(spec.ranks, streams, dict(spec.app_args))

    node_faults = (sorted(spec.node_faults, key=lambda f: (f.time, f.rank))
                   if faults_enabled else [])
    fault_trace: List[Tuple[float, int, Optional[int]]] = []
    lost_work = 0.0
    recovery = 0.0
    incarnations = 0
    next_fault = 0
    worlds: List[CommWorld] = []
    finished_at = [float("nan")] * spec.ranks
    answers: List[Any] = [None] * spec.ranks

    while True:
        incarnations += 1
        incarnation_start = sim.now
        inc_span = obs.span("campaign.incarnation", track="campaign",
                            index=incarnations)
        world = CommWorld(sim, fabric, config=config, streams=streams)
        worlds.append(world)
        procs: List[Process] = []

        def rank_body(comm: Communicator, ckpt: RankCheckpoint):
            result = yield from body_fn(comm, ckpt)
            finished_at[comm.rank] = sim.now
            answers[comm.rank] = result
            return result

        for rank in range(spec.ranks):
            comm = world.communicator(rank)
            ckpt = RankCheckpoint(vault, comm,
                                  spec.checkpoint_write_seconds,
                                  spec.checkpoint_every)
            process = sim.process(rank_body(comm, ckpt),
                                  name=f"rank{rank}.{incarnations}")
            process.defused = True
            procs.append(process)

        if next_fault < len(node_faults):
            fault = node_faults[next_fault]
            # A fault scheduled before `now` struck while the job was
            # down (mid-restart): it hits the new incarnation the
            # instant it comes up.
            sim.run(until=max(fault.time, sim.now))
            if all(p.triggered for p in procs):
                # The job beat the fault; it hits an idle machine.
                next_fault += 1
                inc_span.close()
                break
            next_fault += 1
            struck_at = sim.now
            committed = vault.latest
            committed_step = committed[0] if committed is not None else None
            # Work lost = progress made *this incarnation* past the last
            # committed cut (a commit from a previous incarnation cannot
            # move the base before this incarnation even started).
            last_commit = vault.last_commit_time
            base = incarnation_start
            if last_commit is not None and last_commit > base:
                base = last_commit
            lost_work += sim.now - base
            obs.instant("campaign.node_fault", track="campaign",
                        time=struck_at, rank=fault.rank)
            obs.add_span("campaign.lost_work", base, sim.now,
                         track="campaign", rank=fault.rank)
            world.fail_rank(fault.rank)
            _teardown(procs, fault.rank, len(fault_trace))
            sim.run(until=sim.now)
            # Survivors of the same-timestamp no-op rule get a second,
            # always-landing interrupt now that due wakeups have fired.
            _teardown(procs, fault.rank, len(fault_trace))
            sim.run(until=sim.now)
            vault.rollback()
            fault_trace.append((struck_at, fault.rank, committed_step))
            inc_span.set(faulted=True, victim=fault.rank).close()
            recovery += spec.restart_seconds
            obs.add_span("campaign.restart", sim.now,
                         sim.now + spec.restart_seconds, track="campaign")
            sim.run(until=sim.now + spec.restart_seconds)
            continue

        sim.run()
        inc_span.close()
        break

    _verify_procs(procs)
    # Deterministic teardown of abandoned helpers (suspended receives
    # from torn-down incarnations): their spans must close here, not
    # whenever the garbage collector reaps the generators.
    sim.quiesce()

    elapsed = max(finished_at)
    counters = _collect_counters(plan)
    comm_stats = _collect_comm_stats(worlds)
    _publish_run_metrics(obs, incarnations, lost_work, recovery, elapsed,
                         comm_stats, counters)
    return RunOutcome(
        elapsed=elapsed,
        answers=tuple(answers),
        incarnations=incarnations,
        commits=vault.commits,
        fault_trace=tuple(fault_trace),
        lost_work_seconds=lost_work,
        recovery_seconds=recovery,
        comm_stats=comm_stats,
        fabric_counters=counters,
    )


#: Event-budget backstop for detection-driven runs: the monitor keeps
#: the queue non-empty forever, so a supervisor bug would otherwise spin
#: silently instead of deadlocking the queue like the oracle path.
_DETECTION_MAX_EVENTS = 5_000_000
_DETECTION_CHUNK_EVENTS = 100_000


def _run_detected(spec: CampaignSpec, obs: Observability,
                  detsan: Optional[DetSanRecorder] = None) -> RunOutcome:
    """Execute the faulty run with detector-driven recovery.

    The supervisor has no oracle: a scheduled node fault only *stops the
    victim* (its rank process dies, its heartbeats cease).  Rollback
    waits until the :class:`~repro.health.monitor.HeartbeatMonitor`
    declares the node dead, so lost work includes the time-to-detect —
    and because heartbeats ride the real fabric, a link outage can
    produce a *false* declaration whose rollback must be spurious but
    safe (the bit-identity check proves it is).
    """
    detection = spec.detection
    assert detection is not None
    streams = RandomStreams(seed=spec.seed)
    sim = Simulator(obs=obs, detsan=detsan)
    topology = spec.topology()
    plan = _build_plan(spec, streams, topology)
    fabric = Fabric(sim, topology, get_interconnect(spec.technology),
                    fault_plan=plan)
    config = spec.comm_config()
    vault = CheckpointVault(spec.ranks)
    factory = get_kernel(spec.kernel)
    body_fn = factory(spec.ranks, streams, dict(spec.app_args))
    monitor = build_monitor(sim, fabric, spec.ranks, spec=detection,
                            streams=streams)
    monitor.start()

    node_faults = sorted(spec.node_faults, key=lambda f: (f.time, f.rank))
    fault_trace: List[Tuple[float, int, Optional[int]]] = []
    lost_work = 0.0
    recovery = 0.0
    incarnations = 0
    next_fault = 0
    worlds: List[CommWorld] = []
    finished_at = [float("nan")] * spec.ranks
    answers: List[Any] = [None] * spec.ranks
    procs: List[Process] = []

    def job_complete() -> bool:
        """The workload is done and no recovery is owed."""
        if not all(p.triggered for p in procs):
            return False
        if monitor.crashed_nodes or monitor.pending_deaths:
            return False
        if all(p.ok for p in procs):
            return True
        # A rank failed with nothing left to recover it: stop and let
        # the final verification surface the error.
        return next_fault >= len(node_faults)

    while True:
        incarnations += 1
        incarnation_start = sim.now
        inc_span = obs.span("campaign.incarnation", track="campaign",
                            index=incarnations)
        world = CommWorld(sim, fabric, config=config, streams=streams)
        worlds.append(world)
        procs = []

        def rank_body(comm: Communicator, ckpt: RankCheckpoint):
            result = yield from body_fn(comm, ckpt)
            finished_at[comm.rank] = sim.now
            answers[comm.rank] = result
            return result

        for rank in range(spec.ranks):
            comm = world.communicator(rank)
            ckpt = RankCheckpoint(vault, comm,
                                  spec.checkpoint_write_seconds,
                                  spec.checkpoint_every)
            process = sim.process(rank_body(comm, ckpt),
                                  name=f"rank{rank}.{incarnations}")
            process.defused = True
            procs.append(process)

        rolled_back = False
        while True:
            deaths = monitor.pop_deaths()
            if deaths:
                # The detector spoke: tear down and roll back, whether
                # the declaration is true or a partition's lie.
                victim = deaths[0].node
                declared_at = sim.now
                committed = vault.latest
                committed_step = (committed[0] if committed is not None
                                  else None)
                last_commit = vault.last_commit_time
                base = incarnation_start
                if last_commit is not None and last_commit > base:
                    base = last_commit
                lost_work += sim.now - base
                obs.instant("campaign.death_detected", track="campaign",
                            rank=victim,
                            false=deaths[0].false_positive)
                obs.add_span("campaign.lost_work", base, sim.now,
                             track="campaign", rank=victim)
                for record in deaths:
                    world.fail_rank(record.node)
                _teardown(procs, victim, len(fault_trace))
                sim.run(until=sim.now)
                _teardown(procs, victim, len(fault_trace))
                sim.run(until=sim.now)
                vault.rollback()
                fault_trace.append((declared_at, victim, committed_step))
                for record in deaths:
                    monitor.repair(record.node)
                inc_span.set(faulted=True, victim=victim).close()
                recovery += spec.restart_seconds
                obs.add_span("campaign.restart", sim.now,
                             sim.now + spec.restart_seconds,
                             track="campaign")
                sim.run(until=sim.now + spec.restart_seconds)
                for record in deaths:
                    monitor.restore(record.node)
                rolled_back = True
                break
            if job_complete():
                break
            if (next_fault < len(node_faults)
                    and sim.now >= node_faults[next_fault].time):
                fault = node_faults[next_fault]
                next_fault += 1
                if all(p.triggered and p.ok for p in procs):
                    continue  # the job beat the fault: an idle machine
                obs.instant("campaign.node_fault", track="campaign",
                            rank=fault.rank)
                victim_proc = procs[fault.rank]
                if victim_proc.is_alive:
                    victim_proc.interrupt(
                        FailureCause.numbered(len(fault_trace)))
                    sim.run(until=sim.now)
                    if victim_proc.is_alive:
                        # Same-timestamp no-op rule: the second
                        # interrupt always lands.
                        victim_proc.interrupt(
                            FailureCause.numbered(len(fault_trace)))
                        sim.run(until=sim.now)
                monitor.crash(fault.rank)
                continue
            target = None
            if next_fault < len(node_faults):
                target = max(node_faults[next_fault].time, sim.now)
            sim.run(until=target, max_events=_DETECTION_CHUNK_EVENTS,
                    stop=lambda: (bool(monitor.pending_deaths)
                                  or job_complete()))
            if sim.events_executed > _DETECTION_MAX_EVENTS:
                raise SimulationError(
                    "detection-driven campaign exceeded its event "
                    "budget: the job can neither finish nor recover "
                    "(detector never fired? victim not monitored?)")
        if rolled_back:
            continue
        inc_span.close()
        break

    # Quiesce the monitor so its spans close (double pass for the
    # same-timestamp no-op rule, as at teardown).
    monitor.stop()
    sim.run(until=sim.now)
    monitor.stop()
    sim.run(until=sim.now)
    _verify_procs(procs)
    # Deterministic teardown of abandoned helpers (suspended receives
    # from torn-down incarnations): their spans must close here, not
    # whenever the garbage collector reaps the generators.
    sim.quiesce()

    elapsed = max(finished_at)
    counters = _collect_counters(plan)
    comm_stats = _collect_comm_stats(worlds)
    _publish_run_metrics(obs, incarnations, lost_work, recovery, elapsed,
                         comm_stats, counters)
    monitor.publish(obs)
    return RunOutcome(
        elapsed=elapsed,
        answers=tuple(answers),
        incarnations=incarnations,
        commits=vault.commits,
        fault_trace=tuple(fault_trace),
        lost_work_seconds=lost_work,
        recovery_seconds=recovery,
        comm_stats=comm_stats,
        fabric_counters=counters,
        detection=monitor.outcome(),
    )


def run_workload(spec: CampaignSpec, *, faults_enabled: bool = True,
                 obs: Optional[Observability] = None,
                 detsan: Optional[DetSanRecorder] = None) -> RunOutcome:
    """Execute the campaign workload once (no clean-reference replay).

    The single-run entry point the ``trace`` and ``detsan`` CLIs use:
    pass an :class:`~repro.obs.Observability` to capture spans and
    metrics for export, and/or a
    :class:`~repro.sim.detsan.DetSanRecorder` to sanitize the run,
    without paying for the verification rerun.
    """
    return _run_once(spec, faults_enabled=faults_enabled, obs=obs,
                     detsan=detsan)


def run_campaign(spec: CampaignSpec,
                 obs: Optional[Observability] = None) -> CampaignReport:
    """Run the faulty campaign, then the failure-free reference, and
    verify the answers are bit-identical.

    Both runs use the same seed, so they derive identical inputs; the
    fault machinery must therefore change *when* things happen, never
    *what* is computed — which is exactly what the comparison checks.
    ``obs`` instruments only the faulty run, so the answers_match verdict
    doubles as proof that observability never perturbs the simulation.
    """
    faulty = _run_once(spec, faults_enabled=True, obs=obs)
    clean = _run_once(spec, faults_enabled=False)
    match = all(
        _answers_equal(c, f)
        for c, f in zip(clean.answers, faulty.answers)
    )
    return CampaignReport(spec=spec, clean=clean, faulty=faulty,
                          answers_match=match)
