"""Fault injection into the event kernel, and the Monte-Carlo
checkpoint/restart simulator that validates the analytic model.

:class:`FaultInjector` samples failure times from a
:class:`~repro.fault.models.FailureModel` and interrupts a victim process
at each — the generic mechanism any simulation in the library can attach.

:func:`simulate_checkpoint_run` is the concrete experiment behind benches
E8/E9: one long application on a failing system, checkpointing every
``tau``; failures roll progress back to the last checkpoint and charge a
restart.  Its measured makespans converge to
:func:`repro.fault.checkpoint.expected_runtime`, which the test suite
asserts statistically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.fault.checkpoint import CheckpointParams
from repro.fault.models import FailureModel
from repro.sim.causes import FailureCause
from repro.sim.engine import Interrupt, Process, Simulator
from repro.sim.rng import RandomStreams

__all__ = ["FaultInjector", "CheckpointRunStats", "simulate_checkpoint_run"]


class FaultInjector:
    """Interrupts a victim process at sampled failure times.

    The injector stops on its own when the victim finishes; each interrupt
    carries a :class:`~repro.sim.causes.FailureCause` — which compares
    equal to the legacy ``("failure", index)`` tuple — so victims can
    distinguish injected faults from other interrupts.  An interrupt that
    lands at the exact instant the victim's current wait is due is a
    no-op (the victim "finished first"; see ``Process.interrupt``).
    """

    def __init__(self, sim: Simulator, model: FailureModel,
                 rng: np.random.Generator) -> None:
        self.sim = sim
        self.model = model
        self.rng = rng
        self.failures_injected = 0

    def attach(self, victim: Process) -> Process:
        """Start injecting into ``victim``; returns the injector process."""
        return self.sim.process(self._run(victim), name="fault-injector")

    def _run(self, victim: Process):
        index = 0
        while victim.is_alive:
            gap = float(self.model.sample_interarrivals(self.rng, 1)[0])
            yield self.sim.timeout(gap)
            if not victim.is_alive:
                break
            victim.interrupt(FailureCause.numbered(index))
            self.failures_injected += 1
            index += 1
        return self.failures_injected


@dataclass(frozen=True)
class CheckpointRunStats:
    """Outcome of one simulated checkpointed run."""

    makespan: float
    useful_seconds: float
    checkpoint_seconds: float
    lost_seconds: float
    restart_seconds: float
    failures: int

    @property
    def efficiency(self) -> float:
        """Useful work over makespan (1.0 == no overhead)."""
        return self.useful_seconds / self.makespan if self.makespan else 1.0


def simulate_checkpoint_run(work_seconds: float,
                            params: CheckpointParams,
                            interval_seconds: float,
                            model: FailureModel,
                            streams: Optional[RandomStreams] = None,
                            replication: int = 0) -> CheckpointRunStats:
    """Run one application to completion under failures + checkpointing.

    The application alternates compute intervals and checkpoint writes; a
    failure at any point rolls back to the last completed checkpoint and
    charges the restart time.  Failures during checkpoint writes lose the
    interval being protected (the pessimistic, standard assumption).
    """
    if work_seconds <= 0:
        raise ValueError("work must be positive")
    if interval_seconds <= 0:
        raise ValueError("interval must be positive")
    streams = streams if streams is not None else RandomStreams(seed=0)
    rng = streams.fork(replication).get("fault.injection")
    sim = Simulator()

    tally = {"useful": 0.0, "checkpoint": 0.0, "lost": 0.0,
             "restart": 0.0, "failures": 0}

    def application():
        completed = 0.0          # durable (checkpointed) progress
        while completed < work_seconds:
            chunk = min(interval_seconds, work_seconds - completed)
            segment_useful = 0.0
            try:
                # Compute phase.
                start = sim.now
                yield sim.timeout(chunk)
                segment_useful = chunk
                tally["useful"] += chunk
                # Checkpoint phase (skipped if this was the final chunk —
                # results are the output, no checkpoint needed).
                if completed + chunk < work_seconds:
                    yield sim.timeout(params.checkpoint_seconds)
                    tally["checkpoint"] += params.checkpoint_seconds
                completed += chunk
            except Interrupt:
                tally["failures"] += 1
                # Progress since `start` is gone (compute and/or the
                # checkpoint protecting it).
                elapsed = sim.now - start
                tally["lost"] += elapsed
                tally["useful"] -= segment_useful
                # Restart from the last durable checkpoint; a failure
                # mid-restart restarts the restart.
                while True:
                    restart_begin = sim.now
                    try:
                        yield sim.timeout(params.restart_seconds)
                        tally["restart"] += params.restart_seconds
                        break
                    except Interrupt:
                        tally["failures"] += 1
                        tally["restart"] += sim.now - restart_begin
        return sim.now

    victim = sim.process(application(), name="app")
    victim.defused = True
    FaultInjector(sim, model, rng).attach(victim)
    sim.run()
    if not victim.ok:
        raise victim.value

    return CheckpointRunStats(
        makespan=victim.value,
        useful_seconds=tally["useful"],
        checkpoint_seconds=tally["checkpoint"],
        lost_seconds=tally["lost"],
        restart_seconds=tally["restart"],
        failures=tally["failures"],
    )
