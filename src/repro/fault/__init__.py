"""Fault tolerance at exploding scale.

"As system scale explodes even for moderate cost systems, the software
tools to manage them will take on new responsibilities" — fault recovery
is the keynote's canonical example.  This package quantifies the claim:

* :mod:`~repro.fault.models` — per-node failure laws (exponential,
  Weibull) and the system-level MTBF collapse as node count grows;
* :mod:`~repro.fault.checkpoint` — checkpoint/restart economics: Young's
  and Daly's optimal intervals, analytic expected runtime and efficiency;
* :mod:`~repro.fault.injection` — a failure injector for the event
  kernel, plus a Monte-Carlo checkpoint/restart simulator that validates
  the analytic model;
* :mod:`~repro.fault.recovery` — recovery strategies (cold restart vs
  checkpoint restart vs spare-node pools) compared on completion time;
* :mod:`~repro.fault.campaign` — declarative end-to-end fault campaigns:
  a real app kernel under scheduled node/link faults with coordinated
  checkpoint/restart, verified bit-identical to the failure-free run.
"""

from repro.fault.models import (
    ExponentialFailures,
    FailureModel,
    WeibullFailures,
    system_mtbf,
)
from repro.fault.checkpoint import (
    CheckpointParams,
    daly_interval,
    expected_runtime,
    efficiency,
    waste_fraction,
    young_interval,
)
from repro.fault.injection import FaultInjector, simulate_checkpoint_run
from repro.fault.campaign import (
    CampaignReport,
    CampaignSpec,
    CheckpointVault,
    LinkFaultSpec,
    NodeFaultSpec,
    RankCheckpoint,
    RunOutcome,
    SwitchFaultSpec,
    available_kernels,
    build_fault_plan,
    get_kernel,
    register_kernel,
    run_campaign,
    run_workload,
)
from repro.fault.recovery import RecoveryOutcome, compare_strategies
from repro.fault.availability import (
    DetectorDrivenSparePool,
    NodeAvailability,
    expected_up_nodes,
    node_availability,
    probability_at_least,
    spares_for_sla,
)

__all__ = [
    "CampaignReport",
    "CampaignSpec",
    "CheckpointParams",
    "CheckpointVault",
    "DetectorDrivenSparePool",
    "ExponentialFailures",
    "FailureModel",
    "FaultInjector",
    "LinkFaultSpec",
    "NodeAvailability",
    "NodeFaultSpec",
    "RankCheckpoint",
    "RecoveryOutcome",
    "RunOutcome",
    "SwitchFaultSpec",
    "WeibullFailures",
    "available_kernels",
    "build_fault_plan",
    "compare_strategies",
    "daly_interval",
    "efficiency",
    "expected_up_nodes",
    "node_availability",
    "probability_at_least",
    "expected_runtime",
    "get_kernel",
    "register_kernel",
    "run_campaign",
    "run_workload",
    "simulate_checkpoint_run",
    "spares_for_sla",
    "system_mtbf",
    "waste_fraction",
    "young_interval",
]
