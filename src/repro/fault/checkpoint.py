"""Checkpoint/restart economics: Young, Daly, and the efficiency curve.

Notation (all seconds):

* ``delta`` — time to write one checkpoint,
* ``R``     — restart time after a failure (read checkpoint + relaunch),
* ``M``     — system MTBF (exponential failures),
* ``tau``   — the compute interval between checkpoints (the knob).

Young's first-order optimum::

    tau* = sqrt(2 delta M)

Daly's higher-order refinement (J. T. Daly, FGCS 2006 — derived from the
same renewal analysis the 2002-era community used)::

    tau* = sqrt(2 delta M) [1 + (1/3) sqrt(delta / 2M) + (1/9)(delta / 2M)] - delta
           (for delta < 2M; otherwise tau* = M)

Expected wall-clock to complete ``W`` seconds of useful work (Daly's exact
expectation for exponential failures)::

    T(tau) = M e^{R/M} (e^{(tau+delta)/M} - 1) W / tau

and ``efficiency = W / T``.  The first-order waste decomposition
``delta/(tau+delta) + (tau+delta)/(2M)`` is also exposed because its two
terms (checkpoint overhead vs lost work) are how the trade-off is usually
explained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "CheckpointParams",
    "young_interval",
    "daly_interval",
    "expected_runtime",
    "efficiency",
    "waste_fraction",
]


@dataclass(frozen=True)
class CheckpointParams:
    """Checkpoint system characteristics."""

    checkpoint_seconds: float     # delta
    restart_seconds: float        # R
    system_mtbf_seconds: float    # M

    def __post_init__(self) -> None:
        if self.checkpoint_seconds <= 0:
            raise ValueError("checkpoint time must be positive")
        if self.restart_seconds < 0:
            raise ValueError("restart time must be non-negative")
        if self.system_mtbf_seconds <= 0:
            raise ValueError("system MTBF must be positive")


def young_interval(params: CheckpointParams) -> float:
    """Young's first-order optimal compute interval."""
    return math.sqrt(2.0 * params.checkpoint_seconds
                     * params.system_mtbf_seconds)


def daly_interval(params: CheckpointParams) -> float:
    """Daly's higher-order optimal compute interval."""
    delta = params.checkpoint_seconds
    mtbf = params.system_mtbf_seconds
    if delta >= 2.0 * mtbf:
        # Failures arrive faster than checkpoints can be amortised;
        # checkpoint as rarely as one MTBF.
        return mtbf
    ratio = delta / (2.0 * mtbf)
    tau = (math.sqrt(2.0 * delta * mtbf)
           * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0)
           - delta)
    return max(tau, delta)  # never compute for less than one checkpoint cost


def expected_runtime(params: CheckpointParams, work_seconds: float,
                     interval_seconds: float) -> float:
    """Expected wall-clock to finish ``work_seconds`` of computation when
    checkpointing every ``interval_seconds`` (Daly's exact expectation
    under exponential failures)."""
    if work_seconds <= 0:
        raise ValueError("work must be positive")
    if interval_seconds <= 0:
        raise ValueError("interval must be positive")
    mtbf = params.system_mtbf_seconds
    segment = interval_seconds + params.checkpoint_seconds
    segments = work_seconds / interval_seconds
    return (mtbf * math.exp(params.restart_seconds / mtbf)
            * (math.exp(segment / mtbf) - 1.0) * segments)


def efficiency(params: CheckpointParams,
               interval_seconds: float) -> float:
    """Useful-work fraction at a given interval, in (0, 1]."""
    work = 1.0  # efficiency is work-size independent in this model
    return work / expected_runtime(params, work_seconds=work,
                                   interval_seconds=interval_seconds)


def waste_fraction(params: CheckpointParams,
                   interval_seconds: float) -> float:
    """First-order waste decomposition (checkpoint overhead + lost work).

    Accurate for ``interval + delta << MTBF``; benches quote it alongside
    the exact :func:`efficiency` to show where the approximation bends.
    """
    if interval_seconds <= 0:
        raise ValueError("interval must be positive")
    segment = interval_seconds + params.checkpoint_seconds
    overhead = params.checkpoint_seconds / segment
    lost_work = segment / (2.0 * params.system_mtbf_seconds)
    return min(1.0, overhead + lost_work)
