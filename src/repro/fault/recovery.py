"""Recovery strategies compared: what the new system software must do.

Three strategies for completing a long job on a failing machine:

* ``none`` — run from scratch after every failure (the status quo the
  keynote says becomes untenable);
* ``checkpoint`` — periodic checkpointing at a given (e.g. Daly-optimal)
  interval, restart on the same nodes;
* ``checkpoint+spares`` — checkpointing plus a warm spare-node pool, which
  shrinks the restart time (no re-queue, no reboot wait).

:func:`compare_strategies` returns the expected completion time and
efficiency of each, analytic where exact (exponential failures) and via
the Monte-Carlo simulator where not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.fault.checkpoint import (
    CheckpointParams,
    daly_interval,
    expected_runtime,
)
from repro.fault.models import ExponentialFailures

__all__ = ["RecoveryOutcome", "compare_strategies"]


@dataclass(frozen=True)
class RecoveryOutcome:
    """Expected-case result of one strategy."""

    strategy: str
    expected_makespan: float
    efficiency: float
    checkpoint_interval: Optional[float] = None


def _restart_from_scratch_makespan(work: float, mtbf: float,
                                   restart: float) -> float:
    """Expected completion time with no checkpointing: the job must get a
    failure-free window of length ``work``.  For exponential failures the
    renewal argument gives  E[T] = (M + R) (e^{W/M} - 1)."""
    return (mtbf + restart) * math.expm1(work / mtbf)


def compare_strategies(work_seconds: float,
                       node_mtbf_seconds: float,
                       node_count: int,
                       checkpoint_seconds: float,
                       restart_seconds: float,
                       spare_restart_seconds: Optional[float] = None,
                       ) -> Dict[str, RecoveryOutcome]:
    """Expected makespan and efficiency of each recovery strategy.

    ``spare_restart_seconds`` defaults to a quarter of the cold restart —
    warm spares skip the re-queue and reboot.
    """
    if work_seconds <= 0:
        raise ValueError("work must be positive")
    model = ExponentialFailures(node_mtbf_seconds).for_system(node_count)
    mtbf = model.mtbf()
    if spare_restart_seconds is None:
        spare_restart_seconds = restart_seconds / 4.0

    outcomes: Dict[str, RecoveryOutcome] = {}

    scratch = _restart_from_scratch_makespan(work_seconds, mtbf,
                                             restart_seconds)
    outcomes["none"] = RecoveryOutcome(
        strategy="none",
        expected_makespan=scratch,
        efficiency=work_seconds / scratch,
    )

    params = CheckpointParams(checkpoint_seconds=checkpoint_seconds,
                              restart_seconds=restart_seconds,
                              system_mtbf_seconds=mtbf)
    tau = daly_interval(params)
    with_ckpt = expected_runtime(params, work_seconds, tau)
    outcomes["checkpoint"] = RecoveryOutcome(
        strategy="checkpoint",
        expected_makespan=with_ckpt,
        efficiency=work_seconds / with_ckpt,
        checkpoint_interval=tau,
    )

    spare_params = CheckpointParams(checkpoint_seconds=checkpoint_seconds,
                                    restart_seconds=spare_restart_seconds,
                                    system_mtbf_seconds=mtbf)
    spare_tau = daly_interval(spare_params)
    with_spares = expected_runtime(spare_params, work_seconds, spare_tau)
    outcomes["checkpoint+spares"] = RecoveryOutcome(
        strategy="checkpoint+spares",
        expected_makespan=with_spares,
        efficiency=work_seconds / with_spares,
        checkpoint_interval=spare_tau,
    )
    return outcomes
