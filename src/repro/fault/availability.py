"""Machine availability: how much of the cluster is up, and spare sizing.

Checkpointing protects *jobs*; this module quantifies the *machine*:
with per-node failures (MTBF) and a repair pipeline (MTTR), each node is
an independent two-state process, so

* per-node availability is ``A = MTBF / (MTBF + MTTR)``;
* the number of up nodes is Binomial(n, A) — tightly concentrated for
  large n, which is why big clusters run degraded but predictable;
* the probability of having at least ``k`` usable nodes, and the spare
  pool needed to promise ``k`` with a target confidence, follow directly.

These are the capacity-planning questions behind the keynote's "resource
management and fault recovery" software: a 10k-node machine with 3-year
nodes and half-hour repairs is *always* missing a handful of nodes, and
the scheduler must be built for that (see
:class:`repro.scheduler.FaultyBatchSimulator`).
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats as _scipy_stats

__all__ = [
    "NodeAvailability",
    "node_availability",
    "expected_up_nodes",
    "probability_at_least",
    "spares_for_sla",
]


@dataclass(frozen=True)
class NodeAvailability:
    """Per-node steady-state availability from MTBF and MTTR."""

    mtbf_seconds: float
    mttr_seconds: float

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ValueError("MTBF must be positive")
        if self.mttr_seconds < 0:
            raise ValueError("MTTR must be non-negative")

    @property
    def availability(self) -> float:
        """Fraction of time one node is up: MTBF / (MTBF + MTTR)."""
        return self.mtbf_seconds / (self.mtbf_seconds + self.mttr_seconds)

    @property
    def unavailability(self) -> float:
        """1 - availability (the 'nines' complement)."""
        return self.mttr_seconds / (self.mtbf_seconds + self.mttr_seconds)


def node_availability(mtbf_seconds: float,
                      mttr_seconds: float) -> float:
    """Per-node availability ``MTBF / (MTBF + MTTR)``."""
    return NodeAvailability(mtbf_seconds, mttr_seconds).availability


def expected_up_nodes(node_count: int, availability: float) -> float:
    """Mean number of simultaneously-up nodes (``n x A``)."""
    _check(node_count, availability)
    return node_count * availability


def probability_at_least(usable: int, node_count: int,
                         availability: float) -> float:
    """P(at least ``usable`` of ``node_count`` nodes are up) under
    independent Binomial(n, A) node states."""
    _check(node_count, availability)
    if usable < 0:
        raise ValueError("usable must be non-negative")
    if usable > node_count:
        return 0.0
    # P(X >= usable) = survival function at usable - 1.
    return float(_scipy_stats.binom.sf(usable - 1, node_count,
                                       availability))


def spares_for_sla(required_nodes: int, availability: float,
                   confidence: float = 0.999) -> int:
    """Smallest spare count s such that ``required + s`` nodes give at
    least ``required`` up nodes with probability ``confidence``.

    The capacity-planning question a hosting contract turns into: how
    many extra nodes to buy so the promised partition is (almost) always
    deliverable.
    """
    _check(required_nodes, availability)
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if availability >= 1.0:
        return 0
    spares = 0
    while probability_at_least(required_nodes, required_nodes + spares,
                               availability) < confidence:
        spares += 1
        if spares > 10 * required_nodes:  # pathological availability
            raise ValueError(
                f"availability {availability:.3f} cannot reach "
                f"{confidence:.4f} confidence with a sane spare pool"
            )
    return spares


def _check(node_count: int, availability: float) -> None:
    if node_count < 1:
        raise ValueError("node_count must be >= 1")
    if not 0.0 < availability <= 1.0:
        raise ValueError("availability must be in (0, 1]")
