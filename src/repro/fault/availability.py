"""Machine availability: how much of the cluster is up, and spare sizing.

Checkpointing protects *jobs*; this module quantifies the *machine*:
with per-node failures (MTBF) and a repair pipeline (MTTR), each node is
an independent two-state process, so

* per-node availability is ``A = MTBF / (MTBF + MTTR)``;
* the number of up nodes is Binomial(n, A) — tightly concentrated for
  large n, which is why big clusters run degraded but predictable;
* the probability of having at least ``k`` usable nodes, and the spare
  pool needed to promise ``k`` with a target confidence, follow directly.

These are the capacity-planning questions behind the keynote's "resource
management and fault recovery" software: a 10k-node machine with 3-year
nodes and half-hour repairs is *always* missing a handful of nodes, and
the scheduler must be built for that (see
:class:`repro.scheduler.FaultyBatchSimulator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from scipy import stats as _scipy_stats

from repro.health.monitor import DeathRecord
from repro.health.spares import SparePool

__all__ = [
    "DetectorDrivenSparePool",
    "NodeAvailability",
    "node_availability",
    "expected_up_nodes",
    "probability_at_least",
    "spares_for_sla",
]


@dataclass(frozen=True)
class NodeAvailability:
    """Per-node steady-state availability from MTBF and MTTR."""

    mtbf_seconds: float
    mttr_seconds: float

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ValueError("MTBF must be positive")
        if self.mttr_seconds < 0:
            raise ValueError("MTTR must be non-negative")

    @property
    def availability(self) -> float:
        """Fraction of time one node is up: MTBF / (MTBF + MTTR)."""
        return self.mtbf_seconds / (self.mtbf_seconds + self.mttr_seconds)

    @property
    def unavailability(self) -> float:
        """1 - availability (the 'nines' complement)."""
        return self.mttr_seconds / (self.mtbf_seconds + self.mttr_seconds)


def node_availability(mtbf_seconds: float,
                      mttr_seconds: float) -> float:
    """Per-node availability ``MTBF / (MTBF + MTTR)``."""
    return NodeAvailability(mtbf_seconds, mttr_seconds).availability


def expected_up_nodes(node_count: int, availability: float) -> float:
    """Mean number of simultaneously-up nodes (``n x A``)."""
    _check(node_count, availability)
    return node_count * availability


def probability_at_least(usable: int, node_count: int,
                         availability: float) -> float:
    """P(at least ``usable`` of ``node_count`` nodes are up) under
    independent Binomial(n, A) node states."""
    _check(node_count, availability)
    if usable < 0:
        raise ValueError("usable must be non-negative")
    if usable > node_count:
        return 0.0
    # P(X >= usable) = survival function at usable - 1.
    return float(_scipy_stats.binom.sf(usable - 1, node_count,
                                       availability))


def spares_for_sla(required_nodes: int, availability: float,
                   confidence: float = 0.999) -> int:
    """Smallest spare count s such that ``required + s`` nodes give at
    least ``required`` up nodes with probability ``confidence``.

    The capacity-planning question a hosting contract turns into: how
    many extra nodes to buy so the promised partition is (almost) always
    deliverable.
    """
    _check(required_nodes, availability)
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if availability >= 1.0:
        return 0
    spares = 0
    while probability_at_least(required_nodes, required_nodes + spares,
                               availability) < confidence:
        spares += 1
        if spares > 10 * required_nodes:  # pathological availability
            raise ValueError(
                f"availability {availability:.3f} cannot reach "
                f"{confidence:.4f} confidence with a sane spare pool"
            )
    return spares


class DetectorDrivenSparePool:
    """A :class:`~repro.health.spares.SparePool` that only the detection
    layer can drain.

    The analytic functions above size the pool; this class *operates*
    it, with one rule enforced by the API: an activation requires a
    :class:`~repro.health.monitor.DeathRecord` — the health layer's
    *declaration* of death — so ground truth (a crash nobody has
    detected yet) cannot activate a spare, and a partition's lie (a
    false-positive declaration) *does*.  The supervisor pays for false
    positives with real capacity, exactly as production clusters do;
    ``false_activations`` counts that bill, read from the record's own
    ground-truth annotation (metrics only, never decisions).
    """

    def __init__(self, spare_ids: Sequence[int]) -> None:
        self._pool = SparePool(spare_ids)
        #: Every activation's driving declaration, in order.
        self.records: List[DeathRecord] = []
        self.false_activations = 0

    @property
    def depth(self) -> int:
        """Spares currently available."""
        return self._pool.depth

    @property
    def min_depth(self) -> int:
        """Lowest depth ever reached (pool-sizing signal)."""
        return self._pool.min_depth

    @property
    def activations(self) -> int:
        """Successful activations so far."""
        return self._pool.activations

    @property
    def ids(self) -> Tuple[int, ...]:
        """Available spare ids, ascending."""
        return self._pool.ids

    def __contains__(self, node: int) -> bool:
        return node in self._pool

    def activate(self, record: DeathRecord) -> Optional[int]:
        """Activate the lowest spare for a *declared* death.

        Returns the activated node id, or ``None`` when the pool is
        dry.  Raises ``TypeError`` unless ``record`` is a genuine
        :class:`DeathRecord`: there is deliberately no way to activate
        a spare from ground truth alone.
        """
        if not isinstance(record, DeathRecord):
            raise TypeError(
                "spare activation requires a DeathRecord from the "
                f"health layer, got {record!r}")
        node = self._pool.activate()
        if node is not None:
            self.records.append(record)
            if record.false_positive:
                self.false_activations += 1
        return node

    def refill(self, node: int) -> None:
        """Return a repaired node to the pool."""
        self._pool.refill(node)

    def discard(self, node: int) -> bool:
        """Remove a spare that itself died; True when it was pooled."""
        return self._pool.discard(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DetectorDrivenSparePool depth={self.depth} "
                f"activations={self.activations} "
                f"false={self.false_activations}>")


def _check(node_count: int, availability: float) -> None:
    if node_count < 1:
        raise ValueError("node_count must be >= 1")
    if not 0.0 < availability <= 1.0:
        raise ValueError("availability must be in (0, 1]")
