"""Failure-time models.

Per-node hardware failures are modelled as renewal processes with either
exponential (memoryless, the standard assumption) or Weibull (infant
mortality / wear-out) interarrival laws.  The system-level consequence the
keynote worries about is immediate: with n independent exponential nodes,

    MTBF_system = MTBF_node / n

so a 10 000-node machine built from 3-year-MTBF nodes fails every ~2.6
hours — the number that makes checkpointing mandatory (bench E8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FailureModel",
    "ExponentialFailures",
    "WeibullFailures",
    "system_mtbf",
]


def system_mtbf(node_mtbf_seconds: float, node_count: int) -> float:
    """System mean time between failures for independent exponential nodes."""
    if node_mtbf_seconds <= 0:
        raise ValueError("node MTBF must be positive")
    if node_count < 1:
        raise ValueError("node_count must be >= 1")
    return node_mtbf_seconds / node_count


class FailureModel:
    """Interface: sample failure interarrival times."""

    def mtbf(self) -> float:
        """Mean time between failures (seconds)."""
        raise NotImplementedError

    def sample_interarrivals(self, rng: np.random.Generator,
                             count: int) -> np.ndarray:
        """``count`` independent interarrival draws (seconds)."""
        raise NotImplementedError

    def for_system(self, node_count: int) -> "FailureModel":
        """The aggregate failure process of ``node_count`` such nodes."""
        raise NotImplementedError


@dataclass(frozen=True)
class ExponentialFailures(FailureModel):
    """Memoryless failures at a constant hazard rate."""

    mtbf_seconds: float

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ValueError("MTBF must be positive")

    def mtbf(self) -> float:
        """Mean time between failures (the exponential's mean)."""
        return self.mtbf_seconds

    def sample_interarrivals(self, rng: np.random.Generator,
                             count: int) -> np.ndarray:
        """Draw exponential interarrival times."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return rng.exponential(self.mtbf_seconds, size=count)

    def for_system(self, node_count: int) -> "ExponentialFailures":
        """Aggregate process of ``node_count`` independent nodes
        (superposed Poisson processes: the rates add)."""
        return ExponentialFailures(system_mtbf(self.mtbf_seconds, node_count))


@dataclass(frozen=True)
class WeibullFailures(FailureModel):
    """Weibull interarrivals: ``shape < 1`` gives the decreasing hazard
    (infant-mortality) behaviour real cluster logs show.

    ``scale`` is the Weibull λ in seconds.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError("shape and scale must be positive")

    def mtbf(self) -> float:
        """Weibull mean: scale x Gamma(1 + 1/shape)."""
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def sample_interarrivals(self, rng: np.random.Generator,
                             count: int) -> np.ndarray:
        """Draw Weibull interarrival times."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return self.scale * rng.weibull(self.shape, size=count)

    def for_system(self, node_count: int) -> "WeibullFailures":
        """Approximate aggregate: same shape, scale shrunk so the mean
        matches the superposed rate.  Exact superposition of Weibull
        renewals is not Weibull; this is the standard engineering
        approximation and is validated against Monte-Carlo in tests."""
        if node_count < 1:
            raise ValueError("node_count must be >= 1")
        return WeibullFailures(self.shape, self.scale / node_count)

    @classmethod
    def from_mtbf(cls, mtbf_seconds: float, shape: float) -> "WeibullFailures":
        """Construct with a prescribed mean and shape."""
        if mtbf_seconds <= 0:
            raise ValueError("MTBF must be positive")
        scale = mtbf_seconds / math.gamma(1.0 + 1.0 / shape)
        return cls(shape=shape, scale=scale)
