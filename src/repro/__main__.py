"""Command-line interface: quick reports without writing a script.

::

    python -m repro roadmap [--scenario nominal] [--years 2003:2011]
    python -m repro nodes [--year 2006] [--scenario nominal]
    python -m repro design --budget 25e6 --year 2006 [--arch blade]
    python -m repro interconnects [--year 2006]
    python -m repro faults --nodes 10000 [--checkpoint 300]
    python -m repro campaign --kernel summa [--ranks 4] [--faults 3]
    python -m repro health [--detector fixed|phi] [--seed 7]
    python -m repro jobs [--jobs 12] [--workers 4] [--spares 2]
    python -m repro trace campaign [--out trace.json]
    python -m repro detsan campaign|app [--kernel summa] [--seed 7]
    python -m repro lint [-j N] [--format text|json] [--baseline FILE]

Each subcommand prints one of the library's standard tables; the full
experiment suite lives in ``benchmarks/`` (pytest-benchmark).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import Table
from repro.cluster import cluster_metrics, design_to_budget
from repro.fault import CheckpointParams, daly_interval, efficiency
from repro.fault.models import system_mtbf
from repro.network import available_interconnects
from repro.nodes import node_family
from repro.tech import SCENARIOS, get_scenario
from repro.units import (
    GIGA,
    format_bytes,
    format_dollars,
    format_flops,
    format_power,
    format_si,
    format_time,
)

__all__ = ["build_parser", "main"]


def _parse_years(text: str):
    start, _, end = text.partition(":")
    return float(start), float(end or start)


def _cmd_roadmap(args: argparse.Namespace) -> int:
    roadmap = get_scenario(args.scenario)
    start, end = _parse_years(args.years)
    table = Table(["year", "peak/node", "DRAM/node", "$/GFLOPS",
                   "W/GFLOPS"],
                  formats={"year": "{:.0f}", "$/GFLOPS": "{:.2f}",
                           "W/GFLOPS": "{:.2f}"},
                  title=f"{args.scenario} scenario")
    year = start
    while year <= end + 1e-9:
        table.add_row([
            year,
            format_flops(roadmap.value("node_peak_flops", year)),
            format_bytes(roadmap.value("node_memory_bytes", year)),
            roadmap.dollars_per_flops(year) * GIGA,
            roadmap.watts_per_flops(year) * GIGA,
        ])
        year += 1.0
    print(table.render())
    return 0


def _cmd_nodes(args: argparse.Namespace) -> int:
    roadmap = get_scenario(args.scenario)
    table = Table(["arch", "peak", "DRAM", "balance F/B", "W", "$",
                   "rack-U"],
                  formats={"balance F/B": "{:.2f}", "W": "{:.0f}",
                           "$": "{:.0f}", "rack-U": "{:.2f}"},
                  title=f"node architectures, {args.year:g}")
    for node in node_family(roadmap, args.year):
        table.add_row([node.architecture, format_flops(node.peak_flops),
                       format_bytes(node.memory_bytes),
                       node.machine_balance, node.power_watts,
                       node.cost_dollars, node.rack_units])
    print(table.render())
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    roadmap = get_scenario(args.scenario)
    spec = design_to_budget(args.budget, roadmap, args.year, args.arch)
    metrics = cluster_metrics(spec)
    table = Table(["quantity", "value"], title=str(spec))
    table.add_row(["nodes", spec.node_count])
    table.add_row(["peak", format_flops(metrics.peak_flops)])
    table.add_row(["memory", format_bytes(metrics.memory_bytes)])
    table.add_row(["racks", metrics.packaging.racks])
    table.add_row(["floor", f"{metrics.packaging.floor_area_m2:.0f} m^2"])
    table.add_row(["power", format_power(metrics.total_watts)])
    table.add_row(["price", format_dollars(metrics.purchase_dollars)])
    table.add_row(["network", spec.interconnect.name])
    print(table.render())
    return 0


def _cmd_interconnects(args: argparse.Namespace) -> int:
    table = Table(["name", "bandwidth", "0B latency", "$/port"],
                  formats={"$/port": "{:.0f}"},
                  title=f"purchasable in {args.year:g}")
    for technology in available_interconnects(args.year):
        params = technology.loggp
        table.add_row([technology.name,
                       format_si(params.bandwidth, "B/s"),
                       format_time(params.message_time(0)),
                       technology.cost_per_port])
    print(table.render())
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    mtbf = system_mtbf(args.node_mtbf_years * 365.25 * 86400, args.nodes)
    params = CheckpointParams(args.checkpoint, args.restart, mtbf)
    tau = daly_interval(params)
    table = Table(["quantity", "value"],
                  title=f"{args.nodes} nodes, "
                        f"{args.node_mtbf_years:g}-year node MTBF")
    table.add_row(["system MTBF", format_time(mtbf)])
    table.add_row(["Daly interval", format_time(tau)])
    table.add_row(["efficiency", f"{efficiency(params, tau):.1%}"])
    print(table.render())
    return 0


def _detection_spec(args: argparse.Namespace):
    """The CLI's heartbeat-detector configuration (None = oracle)."""
    from repro.health import DetectionSpec

    detector = getattr(args, "detector", "none")
    if detector == "none":
        return None
    heartbeat = getattr(args, "heartbeat", 1e-4)
    timeout = getattr(args, "detect_timeout", None)
    if timeout is None:
        timeout = 6.0 * heartbeat
    return DetectionSpec(
        detector=detector,
        heartbeat_interval=heartbeat,
        suspect_after=timeout / 2.0,
        dead_after=timeout,
    )


def _campaign_spec(args: argparse.Namespace, *, with_faults: bool):
    """The CLI's standard campaign spec (shared by campaign and trace)."""
    import repro.apps.campaigns  # noqa: F401  (registers kernels)
    from repro.fault import CampaignSpec, LinkFaultSpec, NodeFaultSpec

    node_faults = tuple(
        NodeFaultSpec(time=args.first_fault * (index + 1),
                      rank=index % args.ranks)
        for index in range(args.faults)
    ) if with_faults else ()
    link_faults = (
        LinkFaultSpec(start=0.0, duration=args.first_fault * 4,
                      a=("h", 0), b=("s", 0)),
        LinkFaultSpec(start=0.0, duration=args.first_fault * 20,
                      a=("s", 0), b=("s", 2)),
    ) if with_faults and args.link_faults else ()
    return CampaignSpec(
        kernel=args.kernel,
        ranks=args.ranks,
        node_faults=node_faults,
        link_faults=link_faults,
        seed=args.seed,
        restart_seconds=2e-4,
        checkpoint_write_seconds=1e-4,
        detection=_detection_spec(args),
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Run one end-to-end fault campaign and print the report."""
    from repro.fault import run_campaign

    spec = _campaign_spec(args, with_faults=True)
    report = run_campaign(spec)
    print(report.summary())
    return 0 if report.answers_match else 1


def _cmd_health(args: argparse.Namespace) -> int:
    """Demo detection-driven recovery: a real crash plus (by default) a
    link outage that silences a healthy node long enough to be falsely
    declared dead — the spurious rollback must still be bit-identical.
    """
    import repro.apps.campaigns  # noqa: F401  (registers kernels)
    from repro.fault import (
        CampaignSpec,
        LinkFaultSpec,
        NodeFaultSpec,
        run_campaign,
    )
    from repro.health import DetectionSpec

    # Gossip probes are round trips (ping + ack, then four-hop relay
    # chains), so its protocol period must dwarf the fabric RTT — run
    # the gossip demo at 1 ms periods and stretch the outage to match.
    heartbeat = 1e-3 if args.detector == "gossip" else 1e-4
    detection = DetectionSpec(
        detector=args.detector,
        heartbeat_interval=heartbeat,
        suspect_after=3.0 * heartbeat,
        dead_after=6.0 * heartbeat,
    )
    # The outage severs host 1's only access link for longer than the
    # detector's patience: its heartbeats go unreachable and it is
    # falsely declared dead, while application traffic rides reliable
    # retries.  The real crash strikes rank 2 later.
    if args.detector == "gossip":
        link_faults = () if args.no_false_positive else (
            LinkFaultSpec(start=2e-3, duration=1.2e-2,
                          a=("h", 1), b=("s", 0)),
        )
        # Strike while the job is still running; the declaration then
        # lands a suspicion window later and rollback pays the MTTD.
        crash_time = 1.5e-3
    else:
        link_faults = () if args.no_false_positive else (
            LinkFaultSpec(start=6e-4, duration=1e-3,
                          a=("h", 1), b=("s", 0)),
        )
        # Without the partition stretching the run, a 2.5 ms crash
        # would land after the ~2.3 ms failure-free finish; strike
        # earlier so the detector still has a death to find.
        crash_time = 1.5e-3 if args.no_false_positive else 2.5e-3
    spec = CampaignSpec(
        kernel="stencil2d",
        ranks=4,
        name="health-demo",
        app_args=(("n", 12), ("iterations", 6)),
        node_faults=(NodeFaultSpec(time=crash_time, rank=2),),
        link_faults=link_faults,
        seed=args.seed,
        restart_seconds=2e-4,
        checkpoint_write_seconds=1e-4,
        detection=detection,
    )
    report = run_campaign(spec)
    outcome = report.faulty.detection
    assert outcome is not None
    table = Table(["time", "epoch", "node", "transition", "cause"],
                  title=f"health events ({args.detector} detector)")
    for line in outcome.health_log:
        time_text, fields = line.split(" ", 1)
        parts = dict(part.split("=", 1) for part in fields.split(" ", 3)
                     if "=" in part)
        transition = fields.split(" ")[2]
        table.add_row([format_time(float(time_text)), parts["epoch"],
                       parts["node"], transition, parts["cause"]])
    print(table.render())
    mttd = outcome.mttd_seconds
    print(f"deaths declared: {len(outcome.detections)} "
          f"({outcome.false_deaths} false); "
          f"MTTD {'n/a' if mttd != mttd else format_time(mttd)}; "
          f"availability {outcome.availability:.4f}; heartbeats "
          f"{outcome.heartbeats_delivered}/{outcome.heartbeats_sent} "
          f"delivered ({outcome.heartbeats_lost} lost)")
    print(report.summary())
    return 0 if report.answers_match else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    """Demo the lease-based job control plane under a full fault
    campaign: worker crashes, a worker stall racing its lease, a
    supervisor crash with restart, duplicate submissions, and random
    message drops — then prove at-most-once (log replay) and
    determinism (byte-identical same-seed rerun).
    """
    from repro.jobs import (
        DuplicateSubmitSpec,
        JobRequest,
        JobsCampaignSpec,
        ServiceConfig,
        SupervisorCrashSpec,
        WorkerCrashSpec,
        WorkerStallSpec,
        prove_determinism,
        run_jobs_campaign,
    )

    requests = tuple(
        JobRequest(tenant=f"tenant{i % 3}", key=f"job-{i}", kernel="sum",
                   payload=(("x", i),), work_seconds=1.2e-3,
                   submit_time=i * 2e-4)
        for i in range(args.jobs))
    spec = JobsCampaignSpec(
        requests=requests,
        name="jobs-demo",
        service=ServiceConfig(workers=args.workers,
                              spare_workers=args.spares),
        worker_crashes=(WorkerCrashSpec(time=1.1e-3, host=1),
                        WorkerCrashSpec(time=4.3e-3, host=3)),
        worker_stalls=(WorkerStallSpec(time=1.6e-3, host=2,
                                       duration=3e-3),),
        supervisor_crashes=(SupervisorCrashSpec(time=2.2e-3,
                                                restart_after=1.5e-3),),
        duplicate_submits=(DuplicateSubmitSpec(time=9e-4, index=1),
                           DuplicateSubmitSpec(time=3e-3, index=5)),
        drop_probability=0.02,
        seed=args.seed,
    )
    report = run_jobs_campaign(spec)
    print(report.summary())
    proof = prove_determinism(spec)
    print(f"determinism: {len(proof.digests)} same-seed runs -> "
          f"{'byte-identical' if proof.identical else 'DIVERGED'} "
          f"(digest {proof.digests[0][:16]})")
    ok = report.clean and proof.identical
    print("at-most-once: " + ("PROVEN" if ok else "VIOLATED"))
    return 0 if ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one instrumented workload; write Chrome trace + metrics dump.

    ``trace campaign`` replays the standard fault campaign (faults,
    checkpoints, restarts all visible in the trace); ``trace app`` runs
    the same kernel failure-free, for a clean communication timeline.
    """
    from repro.fault.campaign import run_workload
    from repro.obs import Observability, write_chrome_trace, write_metrics

    with_faults = args.mode == "campaign"
    spec = _campaign_spec(args, with_faults=with_faults)
    obs = Observability()
    outcome = run_workload(spec, faults_enabled=with_faults, obs=obs)
    obs.finalize()
    write_chrome_trace(obs, args.out)
    write_metrics(obs.metrics, args.metrics_out)
    print(f"{args.mode} {spec.kernel!r}: {len(obs.spans)} span(s), "
          f"{len(obs.instants)} instant(s), {len(obs.metrics)} metric "
          f"series; elapsed {outcome.elapsed:.6f}s over "
          f"{outcome.incarnations} incarnation(s)")
    print(f"wrote {args.out} (load in Perfetto / chrome://tracing) "
          f"and {args.metrics_out}")
    return 0


def _cmd_detsan(args: argparse.Namespace) -> int:
    """Run the same workload twice with one seed under the determinism
    sanitizer; report the first divergent scheduling decision (if any).

    Exit status 0 means the two runs folded byte-identical digests over
    the same number of events — the workload is same-seed deterministic
    at the scheduling level.  Non-zero prints the first divergent event
    with process and span attribution.
    """
    from repro.fault.campaign import run_workload
    from repro.obs import Observability
    from repro.sim.detsan import DetSanRecorder, first_divergence

    with_faults = args.mode == "campaign"
    spec = _campaign_spec(args, with_faults=with_faults)
    recorders = []
    obs = None
    for _ in range(2):
        recorder = DetSanRecorder()
        obs = Observability()
        run_workload(spec, faults_enabled=with_faults, obs=obs,
                     detsan=recorder)
        obs.finalize()
        recorders.append(recorder)
    first, second = recorders
    divergence = first_divergence(first, second, obs=obs)
    if divergence is None:
        print(f"detsan {args.mode} {spec.kernel!r}: deterministic — "
              f"{first.events_folded} event(s), digest "
              f"{first.digest[:16]}..., two same-seed runs identical")
        return 0
    print(f"detsan {args.mode} {spec.kernel!r}: NONDETERMINISTIC — "
          f"run A folded {first.events_folded} event(s) "
          f"(digest {first.digest[:16]}...), run B "
          f"{second.events_folded} (digest {second.digest[:16]}...)")
    print(divergence.describe())
    return 1


def _cmd_fabrics(args: argparse.Namespace) -> int:
    """Price the fabric design alternatives for a host count."""
    from repro.network import compare_fabrics, get_interconnect

    technology = get_interconnect(args.technology)
    table = Table(["design", "switch ports", "total $", "$/host",
                   "bisection links", "$/bisection link"],
                  formats={"total $": "{:,.0f}", "$/host": "{:,.0f}",
                           "$/bisection link": "{:,.0f}"},
                  title=f"{args.hosts} hosts on {technology.name}")
    for bill in compare_fabrics(args.hosts, technology):
        table.add_row([bill.topology_name, bill.switch_ports,
                       bill.total_dollars, bill.dollars_per_host,
                       bill.bisection_links,
                       bill.dollars_per_bisection_link])
    print(table.render())
    return 0


def _cmd_procurement(args: argparse.Namespace) -> int:
    """Compare rolling vs forklift procurement over a span."""
    from repro.cluster import simulate_fleet, time_averaged_peak

    roadmap = get_scenario(args.scenario)
    table = Table(["strategy", "time-avg peak", "final peak",
                   "max generations"],
                  title=f"${args.annual_budget:,.0f}/yr, "
                        f"{args.start:g}-{args.end:g}")
    strategies = [("rolling", dict(strategy="rolling"))]
    for interval in (2.0, 3.0, 4.0):
        strategies.append((f"forklift {interval:.0f}y",
                           dict(strategy="forklift",
                                forklift_interval_years=interval)))
    for label, kwargs in strategies:
        timeline = simulate_fleet(roadmap, args.start, args.end,
                                  args.annual_budget, **kwargs)
        table.add_row([label,
                       format_flops(time_averaged_peak(timeline)),
                       format_flops(timeline[-1].peak_flops),
                       max(fy.cohort_count for fy in timeline)])
    print(table.render())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the AST-based invariant checker (see ``repro.lint``)."""
    from repro.lint import cli as lint_cli

    return lint_cli.run(args)


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Run the experiment fleet (see ``repro.xp``)."""
    from repro.xp import cli as xp_cli

    return xp_cli.run(args)


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="clusterlaunch quick reports",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    roadmap = sub.add_parser("roadmap", help="technology curves")
    roadmap.add_argument("--scenario", default="nominal",
                         choices=sorted(SCENARIOS))
    roadmap.add_argument("--years", default="2003:2010",
                         help="start:end, e.g. 2003:2010")
    roadmap.set_defaults(func=_cmd_roadmap)

    nodes = sub.add_parser("nodes", help="node architecture table")
    nodes.add_argument("--year", type=float, default=2006.0)
    nodes.add_argument("--scenario", default="nominal",
                       choices=sorted(SCENARIOS))
    nodes.set_defaults(func=_cmd_nodes)

    design = sub.add_parser("design", help="budget-sized cluster")
    design.add_argument("--budget", type=float, required=True)
    design.add_argument("--year", type=float, required=True)
    design.add_argument("--arch", default="conventional")
    design.add_argument("--scenario", default="nominal",
                        choices=sorted(SCENARIOS))
    design.set_defaults(func=_cmd_design)

    interconnects = sub.add_parser("interconnects",
                                   help="interconnect catalog")
    interconnects.add_argument("--year", type=float, default=2006.0)
    interconnects.set_defaults(func=_cmd_interconnects)

    fabrics = sub.add_parser("fabrics", help="price fabric designs")
    fabrics.add_argument("--hosts", type=int, required=True)
    fabrics.add_argument("--technology", default="infiniband_4x")
    fabrics.set_defaults(func=_cmd_fabrics)

    procurement = sub.add_parser("procurement",
                                 help="procurement strategy comparison")
    procurement.add_argument("--annual-budget", type=float, default=2e6)
    procurement.add_argument("--start", type=float, default=2003.0)
    procurement.add_argument("--end", type=float, default=2010.0)
    procurement.add_argument("--scenario", default="nominal",
                             choices=sorted(SCENARIOS))
    procurement.set_defaults(func=_cmd_procurement)

    fleet = sub.add_parser(
        "fleet", help="experiment fleet runner with result cache")
    from repro.xp import cli as xp_cli

    xp_cli.add_arguments(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    lint = sub.add_parser("lint",
                          help="check determinism/units/API invariants")
    from repro.lint import cli as lint_cli

    lint_cli.add_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    campaign = sub.add_parser(
        "campaign", help="fault campaign on a real kernel")
    campaign.add_argument("--kernel", default="summa",
                          help="registered kernel name (summa, stencil2d)")
    campaign.add_argument("--ranks", type=int, default=4)
    campaign.add_argument("--faults", type=int, default=3,
                          help="number of scheduled node faults")
    campaign.add_argument("--first-fault", type=float, default=6e-4,
                          help="virtual seconds until the first fault")
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument("--no-link-faults", dest="link_faults",
                          action="store_false",
                          help="skip the default link down windows")
    campaign.add_argument("--detector", default="none",
                          choices=("none", "fixed", "phi"),
                          help="none = oracle recovery; fixed/phi = "
                               "heartbeat-detected recovery")
    campaign.add_argument("--heartbeat", type=float, default=1e-4,
                          help="heartbeat interval in virtual seconds")
    campaign.add_argument("--detect-timeout", type=float, default=None,
                          help="dead-declaration silence threshold "
                               "(default 6 heartbeat intervals)")
    campaign.set_defaults(func=_cmd_campaign)

    health = sub.add_parser(
        "health", help="detection-driven recovery demo (false positive "
                       "included)")
    health.add_argument("--detector", default="fixed",
                        choices=("fixed", "phi", "gossip"))
    health.add_argument("--seed", type=int, default=7)
    health.add_argument("--no-false-positive", action="store_true",
                        help="skip the link outage that forces a false "
                             "death declaration")
    health.set_defaults(func=_cmd_health)

    jobs = sub.add_parser(
        "jobs", help="lease-based job control plane demo: at-most-once "
                     "under a full fault campaign")
    jobs.add_argument("--jobs", type=int, default=12,
                      help="number of tenant submissions")
    jobs.add_argument("--workers", type=int, default=4)
    jobs.add_argument("--spares", type=int, default=2,
                      help="spare workers activated on declared deaths")
    jobs.add_argument("--seed", type=int, default=7)
    jobs.set_defaults(func=_cmd_jobs)

    def add_workload_arguments(parser: argparse.ArgumentParser) -> None:
        """Shared mode + campaign-shape options (trace and detsan)."""
        parser.add_argument("mode", choices=("campaign", "app"),
                            help="campaign = standard fault campaign; "
                                 "app = same kernel, failure-free")
        parser.add_argument("--kernel", default="summa",
                            help="registered kernel name (summa, stencil2d)")
        parser.add_argument("--ranks", type=int, default=4)
        parser.add_argument("--faults", type=int, default=3,
                            help="number of scheduled node faults")
        parser.add_argument("--first-fault", type=float, default=6e-4,
                            help="virtual seconds until the first fault")
        parser.add_argument("--seed", type=int, default=7)
        parser.add_argument("--no-link-faults", dest="link_faults",
                            action="store_false",
                            help="skip the default link down windows")
        parser.add_argument("--detector", default="none",
                            choices=("none", "fixed", "phi"),
                            help="none = oracle recovery; fixed/phi = "
                                 "heartbeat-detected recovery")
        parser.add_argument("--heartbeat", type=float, default=1e-4,
                            help="heartbeat interval in virtual seconds")
        parser.add_argument("--detect-timeout", type=float, default=None,
                            help="dead-declaration silence threshold "
                                 "(default 6 heartbeat intervals)")

    trace = sub.add_parser(
        "trace", help="Chrome trace + metrics dump of an instrumented run")
    add_workload_arguments(trace)
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace_event JSON output path")
    trace.add_argument("--metrics-out", default="metrics.txt",
                       help="plain-text metrics dump output path")
    trace.set_defaults(func=_cmd_trace)

    detsan = sub.add_parser(
        "detsan", help="determinism sanitizer: same-seed double run, "
                       "report the first divergent event")
    add_workload_arguments(detsan)
    detsan.set_defaults(func=_cmd_detsan)

    faults = sub.add_parser("faults", help="reliability at a scale")
    faults.add_argument("--nodes", type=int, required=True)
    faults.add_argument("--node-mtbf-years", type=float, default=3.0)
    faults.add_argument("--checkpoint", type=float, default=300.0)
    faults.add_argument("--restart", type=float, default=600.0)
    faults.set_defaults(func=_cmd_faults)

    return parser


def main(argv=None) -> int:
    """CLI entry point (also installed as ``clusterlaunch``)."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
