"""Checkpoint I/O: where the fault model meets the storage model.

A checkpoint dumps (a fraction of) every node's memory to the parallel
file system.  Its duration is the machine-size-dependent quantity that
E8/E9 previously took as a constant; here it is derived:

* :func:`checkpoint_write_time` — analytic: aggregate dump bytes over the
  binding bottleneck (client injection, server ingest links, or server
  disks);
* :func:`simulate_checkpoint_write` — the same dump executed on the
  simulated fabric + PFS, validating the analytic bound;
* :func:`derive_checkpoint_params` — package the result as
  :class:`repro.fault.CheckpointParams` for the Daly machinery.

The headline phenomenon (bench E14): with a *fixed* I/O subsystem,
checkpoint time grows linearly with machine memory while MTBF shrinks as
1/n — efficiency collapses quadratically-ish unless I/O servers scale
with the machine.
"""

from __future__ import annotations

from typing import Optional

from repro.fault.checkpoint import CheckpointParams
from repro.fault.models import system_mtbf
from repro.io.disk import DiskModel
from repro.io.pfs import ParallelFileSystem
from repro.network.fabric import Fabric
from repro.network.technologies import InterconnectTechnology
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Simulator
from repro.units import MIB

__all__ = [
    "checkpoint_write_time",
    "simulate_checkpoint_write",
    "derive_checkpoint_params",
]


def checkpoint_write_time(dump_bytes_per_node: float, node_count: int,
                          server_count: int,
                          link_bandwidth: float,
                          disk: DiskModel = DiskModel()) -> float:
    """Analytic lower bound on the aggregate dump time.

    Three candidate bottlenecks, take the slowest:

    * clients injecting: each node pushes its dump up its own link;
    * servers ingesting: all traffic funnels into ``server_count`` links;
    * disks: all traffic lands on ``server_count`` spindles.
    """
    if dump_bytes_per_node < 0:
        raise ValueError("dump size must be non-negative")
    if node_count < 1 or server_count < 1:
        raise ValueError("need at least one node and one server")
    if link_bandwidth <= 0:
        raise ValueError("link bandwidth must be positive")
    total = dump_bytes_per_node * node_count
    client_time = dump_bytes_per_node / link_bandwidth
    ingest_time = total / (server_count * link_bandwidth)
    disk_time = total / (server_count * disk.transfer_bytes_per_second)
    return max(client_time, ingest_time, disk_time)


def simulate_checkpoint_write(node_count: int, server_count: int,
                              dump_bytes_per_node: int,
                              technology: InterconnectTechnology,
                              stripe_bytes: int = MIB,
                              disk: DiskModel = DiskModel()) -> float:
    """Execute the dump on a simulated fabric + PFS; returns seconds.

    Compute nodes are hosts ``0..node_count-1`` and storage servers the
    hosts above them, on a full-bisection fat tree.  Each node writes its
    own disjoint region of one shared checkpoint file (N-to-M striping).
    """
    if node_count < 1 or server_count < 1:
        raise ValueError("need at least one node and one server")
    sim = Simulator()
    hosts = node_count + server_count
    topology = FatTreeTopology(hosts, hosts_per_leaf=min(32, hosts))
    fabric = Fabric(sim, topology, technology)
    pfs = ParallelFileSystem(
        sim, fabric,
        server_hosts=list(range(node_count, hosts)),
        stripe_bytes=stripe_bytes,
        disk=disk,
    )

    def writer(node: int):
        offset = node * dump_bytes_per_node
        yield from pfs.write(node, offset, dump_bytes_per_node)
        return sim.now

    processes = [sim.process(writer(node), name=f"ckpt{node}")
                 for node in range(node_count)]
    sim.run()
    for process in processes:
        if not process.ok:
            raise process.value
    return max(process.value for process in processes)


def derive_checkpoint_params(memory_bytes_per_node: float,
                             node_count: int,
                             server_count: int,
                             link_bandwidth: float,
                             node_mtbf_seconds: float,
                             dump_fraction: float = 0.5,
                             disk: DiskModel = DiskModel(),
                             restart_factor: float = 2.0,
                             ) -> CheckpointParams:
    """Checkpoint parameters with the write time *derived* from the
    storage system instead of assumed.

    ``dump_fraction`` is the checkpointed share of memory (applications
    rarely dump everything); restart reads the same data back plus
    relaunch overhead, modelled as ``restart_factor`` times the write.
    """
    if not 0 < dump_fraction <= 1:
        raise ValueError("dump_fraction must be in (0, 1]")
    if restart_factor < 1:
        raise ValueError("restart cannot be faster than the write")
    delta = checkpoint_write_time(
        memory_bytes_per_node * dump_fraction, node_count, server_count,
        link_bandwidth, disk,
    )
    return CheckpointParams(
        checkpoint_seconds=delta,
        restart_seconds=delta * restart_factor,
        system_mtbf_seconds=system_mtbf(node_mtbf_seconds, node_count),
    )
