"""Commodity disk cost model, 2002 vintage.

A request costs one positioning overhead (seek + rotational latency)
plus streaming transfer.  Defaults describe the 80 GB 7200 rpm IDE drive
of the roadmap's anchor node: ~9 ms average seek, ~4 ms rotational, and
~40 MB/s sustained media rate.  Sequential follow-on requests skip the
positioning cost, which is why striped file systems write big aligned
chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskModel"]


@dataclass(frozen=True)
class DiskModel:
    """Positioning + streaming disk cost model."""

    #: Average positioning cost for a non-sequential request (seconds);
    #: includes rotational latency.
    seek_seconds: float = 13e-3
    #: Sustained media transfer rate (bytes/second).
    transfer_bytes_per_second: float = 40e6
    #: Capacity (bytes); writes past it raise.
    capacity_bytes: float = 80e9

    def __post_init__(self) -> None:
        if self.seek_seconds < 0:
            raise ValueError("seek time must be non-negative")
        if self.transfer_bytes_per_second <= 0:
            raise ValueError("transfer rate must be positive")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")

    def access_time(self, nbytes: int, sequential: bool = False) -> float:
        """Seconds to read or write ``nbytes`` in one request."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        positioning = 0.0 if sequential else self.seek_seconds
        return positioning + nbytes / self.transfer_bytes_per_second

    def streaming_bandwidth(self, nbytes: int) -> float:
        """Delivered bytes/second for one random request of ``nbytes`` —
        approaches the media rate as requests grow (the reason for big
        stripe sizes)."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        return nbytes / self.access_time(nbytes)

    def scaled(self, year_factor: float) -> "DiskModel":
        """A later-year disk: rate and capacity scale, seeks barely move
        (mechanics, not lithography)."""
        if year_factor <= 0:
            raise ValueError("factor must be positive")
        return DiskModel(
            seek_seconds=self.seek_seconds,
            transfer_bytes_per_second=(self.transfer_bytes_per_second
                                       * year_factor),
            capacity_bytes=self.capacity_bytes * year_factor,
        )
