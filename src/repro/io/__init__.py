"""Parallel storage: striped file service over the simulated fabric.

The keynote's "storage capacity" curve and its fault-recovery agenda meet
here: checkpointing a machine is a *parallel I/O* problem, and the era's
answer was a PVFS-class striped file system over commodity servers.  This
package provides:

* :class:`DiskModel` — seek + streaming-rate cost model of a 2002
  commodity disk;
* :class:`StorageNode` — one I/O server: a fabric host with a disk and a
  request queue;
* :class:`ParallelFileSystem` — round-robin striping across servers, with
  ``read``/``write`` client generators that move real byte counts over
  the contention-aware fabric and through per-server disk queues;
* :func:`checkpoint_write_time` (analytic) and
  :func:`simulate_checkpoint_write` (simulated) — the aggregate-dump
  bandwidth question that decides whether checkpointing scales;
* :func:`derive_checkpoint_params` — plug measured checkpoint time into
  :class:`repro.fault.CheckpointParams`, closing the loop between the
  storage and fault models (bench E14).
"""

from repro.io.disk import DiskModel
from repro.io.pfs import ParallelFileSystem, StorageNode, StripeChunk
from repro.io.checkpoint_io import (
    checkpoint_write_time,
    derive_checkpoint_params,
    simulate_checkpoint_write,
)

__all__ = [
    "DiskModel",
    "ParallelFileSystem",
    "StorageNode",
    "StripeChunk",
    "checkpoint_write_time",
    "derive_checkpoint_params",
    "simulate_checkpoint_write",
]
