"""PVFS-class parallel file system over the simulated fabric.

Files are striped round-robin across storage nodes in fixed-size stripe
units.  A client ``write`` ships each stripe chunk over the fabric to its
server and then through that server's disk queue; chunks proceed
concurrently (one in-flight request per touched server), so aggregate
bandwidth scales with server count until the network or the disks
saturate — the behaviour the PVFS papers measured.

The model is intentionally request-level (no metadata server, no
consistency protocol): the experiments it serves are about *bandwidth
scaling*, which lives entirely in striping + contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.io.disk import DiskModel
from repro.network.fabric import Fabric
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.units import KIB

__all__ = ["StorageNode", "StripeChunk", "ParallelFileSystem"]


@dataclass(frozen=True)
class StripeChunk:
    """One contiguous piece of a striped byte range on one server."""

    server_index: int
    server_offset: int
    nbytes: int


class StorageNode:
    """One I/O server: a fabric host with a disk and a FIFO request queue."""

    def __init__(self, sim: Simulator, host: int, disk: DiskModel) -> None:
        self.host = host
        self.disk = disk
        self.queue = Resource(sim, capacity=1, name=f"iosrv{host}")
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        self.requests = 0

    def service_time(self, nbytes: int) -> float:
        """Disk time for one chunk (random positioning each request)."""
        return self.disk.access_time(nbytes, sequential=False)


class ParallelFileSystem:
    """Round-robin striped file service.

    Parameters
    ----------
    sim, fabric:
        The simulation and transport; storage hosts must be valid fabric
        hosts (by convention the top of the host range, so compute ranks
        0..p-1 and servers p..p+s-1 share one topology).
    server_hosts:
        Fabric host ids running storage service.
    stripe_bytes:
        Stripe unit; the PVFS default of 64 KiB unless overridden.
    disk:
        Disk model shared by all servers.
    """

    def __init__(self, sim: Simulator, fabric: Fabric,
                 server_hosts: Sequence[int],
                 stripe_bytes: int = 64 * KIB,
                 disk: DiskModel = DiskModel()) -> None:
        if not server_hosts:
            raise ValueError("need at least one storage server")
        if len(set(server_hosts)) != len(server_hosts):
            raise ValueError("duplicate server hosts")
        if stripe_bytes < 1:
            raise ValueError("stripe size must be >= 1 byte")
        for host in server_hosts:
            if not 0 <= host < fabric.topology.hosts:
                raise ValueError(f"server host {host} not on the fabric")
        self.sim = sim
        self.fabric = fabric
        self.stripe_bytes = int(stripe_bytes)
        self.servers: List[StorageNode] = [
            StorageNode(sim, host, disk) for host in server_hosts
        ]

    # -- striping geometry -------------------------------------------------

    def map_range(self, offset: int, nbytes: int) -> List[StripeChunk]:
        """Stripe chunks covering ``[offset, offset + nbytes)``.

        Chunks are returned in file order; adjacent stripe units on the
        same server are *not* merged (each is a separate request, as the
        wire protocol would issue them).
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        chunks: List[StripeChunk] = []
        position = offset
        remaining = nbytes
        count = len(self.servers)
        while remaining > 0:
            stripe_index = position // self.stripe_bytes
            within = position % self.stripe_bytes
            take = min(self.stripe_bytes - within, remaining)
            server_index = stripe_index % count
            # Server-local offset: full stripes this server already holds
            # below this one, plus the offset within the current stripe.
            local_stripe = stripe_index // count
            server_offset = local_stripe * self.stripe_bytes + within
            chunks.append(StripeChunk(server_index=server_index,
                                      server_offset=server_offset,
                                      nbytes=take))
            position += take
            remaining -= take
        return chunks

    # -- client operations (generators; use from a rank process) -----------

    def write(self, client_host: int, offset: int, nbytes: int):
        """Write ``nbytes`` at ``offset``; completes when durable on all
        touched servers.  Chunks to distinct servers proceed concurrently."""
        result = yield from self._io(client_host, offset, nbytes,
                                     is_write=True)
        return result

    def read(self, client_host: int, offset: int, nbytes: int):
        """Read ``nbytes`` at ``offset``; completes when the last byte
        reaches the client."""
        result = yield from self._io(client_host, offset, nbytes,
                                     is_write=False)
        return result

    def _io(self, client_host: int, offset: int, nbytes: int,
            is_write: bool):
        if nbytes == 0:
            return 0
        chunks = self.map_range(offset, nbytes)
        processes = [
            self.sim.process(
                self._chunk_io(client_host, chunk, is_write),
                name=f"pfs{'W' if is_write else 'R'}",
            )
            for chunk in chunks
        ]
        yield self.sim.all_of(processes)
        return nbytes

    def _chunk_io(self, client_host: int, chunk: StripeChunk,
                  is_write: bool):
        server = self.servers[chunk.server_index]
        if is_write:
            # Data travels client -> server, then hits the disk.
            yield from self.fabric.transfer(client_host, server.host,
                                            chunk.nbytes)
            yield server.queue.request()
            yield self.sim.timeout(server.service_time(chunk.nbytes))
            server.queue.release()
            server.bytes_written += chunk.nbytes
        else:
            # Request reaches the server (tiny), disk reads, data returns.
            yield from self.fabric.transfer(client_host, server.host, 64)
            yield server.queue.request()
            yield self.sim.timeout(server.service_time(chunk.nbytes))
            server.queue.release()
            yield from self.fabric.transfer(server.host, client_host,
                                            chunk.nbytes)
            server.bytes_read += chunk.nbytes
        server.requests += 1

    # -- noncontiguous (list) I/O -------------------------------------------

    def write_regions(self, client_host: int, regions, *,
                      list_io: bool = True):
        """Write several ``(offset, nbytes)`` regions in one call.

        ``list_io=True`` batches all regions' chunks into one request
        wave per server (one network message carrying the region list,
        then the data, then one *sequential* disk pass per server) — the
        access method the PVFS "list I/O" work introduced.
        ``list_io=False`` issues each region as an independent write
        (one request + one seek per chunk), the pre-list-I/O behaviour
        its evaluation measured against.  Bench E18 reproduces the gap.
        """
        result = yield from self._regions_io(client_host, regions,
                                             list_io=list_io,
                                             is_write=True)
        return result

    def read_regions(self, client_host: int, regions, *,
                     list_io: bool = True):
        """Read several ``(offset, nbytes)`` regions in one call."""
        result = yield from self._regions_io(client_host, regions,
                                             list_io=list_io,
                                             is_write=False)
        return result

    def _regions_io(self, client_host: int, regions, *, list_io: bool,
                    is_write: bool):
        regions = list(regions)
        for offset, nbytes in regions:
            if offset < 0 or nbytes < 0:
                raise ValueError("regions need non-negative offset/nbytes")
        total = sum(nbytes for _offset, nbytes in regions)
        if total == 0:
            return 0
        if not list_io:
            # Naive: every region is its own independent operation.
            processes = [
                self.sim.process(self._io(client_host, offset, nbytes,
                                          is_write),
                                 name="pfs-region")
                for offset, nbytes in regions if nbytes > 0
            ]
            yield self.sim.all_of(processes)
            return total

        # List I/O: group every chunk by server, then one batched
        # request per server.
        by_server = {}
        for offset, nbytes in regions:
            for chunk in self.map_range(offset, nbytes):
                by_server.setdefault(chunk.server_index, []).append(chunk)
        processes = [
            self.sim.process(
                self._batched_server_io(client_host, server_index, chunks,
                                        is_write),
                name="pfs-listio")
            for server_index, chunks in by_server.items()
        ]
        yield self.sim.all_of(processes)
        return total

    def _batched_server_io(self, client_host: int, server_index: int,
                           chunks, is_write: bool):
        """One wire transfer + one disk pass for a whole chunk list.

        The disk pays a single positioning cost and then streams (the
        server sorts the chunk list by offset — the core list-I/O win);
        the network carries the data plus a small per-chunk descriptor.
        """
        server = self.servers[server_index]
        total = sum(chunk.nbytes for chunk in chunks)
        descriptors = 16 * len(chunks)
        disk_time = server.disk.access_time(total, sequential=False) \
            + (len(chunks) - 1) * 0.0  # one seek only: sorted pass
        if is_write:
            yield from self.fabric.transfer(client_host, server.host,
                                            total + descriptors)
            yield server.queue.request()
            yield self.sim.timeout(disk_time)
            server.queue.release()
            server.bytes_written += total
        else:
            yield from self.fabric.transfer(client_host, server.host,
                                            64 + descriptors)
            yield server.queue.request()
            yield self.sim.timeout(disk_time)
            server.queue.release()
            yield from self.fabric.transfer(server.host, client_host, total)
            server.bytes_read += total
        server.requests += 1

    # -- bookkeeping --------------------------------------------------------

    @property
    def total_bytes_written(self) -> float:
        """Bytes written across every server."""
        return sum(server.bytes_written for server in self.servers)

    @property
    def total_bytes_read(self) -> float:
        """Bytes read across every server."""
        return sum(server.bytes_read for server in self.servers)

    def server_balance(self) -> float:
        """max/mean of per-server written bytes (1.0 == perfectly even)."""
        written = [server.bytes_written for server in self.servers]
        mean = sum(written) / len(written)
        return max(written) / mean if mean > 0 else 1.0
