"""clusterlaunch — a commodity-cluster futures laboratory.

Reproduction of T. Sterling, *"Launching into the future of commodity
cluster computing"* (IEEE CLUSTER 2002 plenary keynote).  The keynote is a
vision talk published in summary form; this library turns each of its
quantitative claims into models, simulators, and regenerable experiments:

* :mod:`repro.tech` — the "performance, capacity, power, size, and cost
  curves" as calibrated projections with scenarios;
* :mod:`repro.nodes` — the "revolutionary structures embodied by the
  nodes": blades, SMP/system-on-chip, processor-in-memory, on a roofline
  model;
* :mod:`repro.network` — "Infiniband and optical switching": LogGP
  technology catalog, topologies, a contention-aware simulated fabric;
* :mod:`repro.messaging` — an MPI-flavoured layer in virtual time;
* :mod:`repro.apps` — stencil / CG / FFT / N-body / sweep kernels plus an
  HPL model for Top500-style projection;
* :mod:`repro.cluster` — whole-machine assembly: packaging, power, cost;
* :mod:`repro.scheduler` — "resource management": batch policies with
  EASY/conservative backfilling on synthetic workloads;
* :mod:`repro.fault` — "fault recovery" as scale explodes: failure laws,
  Young/Daly checkpointing, Monte-Carlo validation;
* :mod:`repro.sim` — the discrete-event kernel under everything;
* :mod:`repro.analysis` — tables/series/statistics for the benchmarks.

Quick start::

    from repro import run_spmd, SUM

    def hello(comm):
        total = yield from comm.allreduce(comm.rank, SUM)
        return total

    result = run_spmd(16, hello, technology="infiniband_4x")
    print(result.results[0], f"{result.elapsed * 1e6:.1f} virtual us")

See ``examples/`` for full scenarios and ``benchmarks/`` for the
experiment suite (``DESIGN.md`` maps experiments to modules).
"""

from repro.units import (
    format_bytes,
    format_dollars,
    format_flops,
    format_power,
    format_time,
    parse_bytes,
    parse_flops,
    parse_time,
)
from repro.sim import RandomStreams, Simulator
from repro.tech import SCENARIOS, TechnologyRoadmap, get_scenario, nominal_roadmap
from repro.nodes import NodeSpec, RooflineModel, make_node, node_family
from repro.network import (
    Fabric,
    FatTreeTopology,
    HypercubeTopology,
    INTERCONNECTS,
    SingleSwitchTopology,
    TorusTopology,
    get_interconnect,
)
from repro.messaging import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    MAX,
    MIN,
    PROD,
    SUM,
    run_spmd,
)
from repro.cluster import (
    ClusterSpec,
    cluster_metrics,
    design_cluster,
    design_to_budget,
    design_to_peak,
)
from repro.scheduler import (
    BatchSimulator,
    WorkloadGenerator,
    WorkloadParams,
    evaluate_schedule,
    get_policy,
)
from repro.fault import (
    CheckpointParams,
    ExponentialFailures,
    daly_interval,
    efficiency,
    simulate_checkpoint_run,
    system_mtbf,
    young_interval,
)
from repro.apps import (
    HplModel,
    run_cg,
    run_fft2d,
    run_nbody,
    run_stencil,
    run_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BatchSimulator",
    "CheckpointParams",
    "ClusterSpec",
    "Communicator",
    "ExponentialFailures",
    "Fabric",
    "FatTreeTopology",
    "HplModel",
    "HypercubeTopology",
    "INTERCONNECTS",
    "MAX",
    "MIN",
    "NodeSpec",
    "PROD",
    "RandomStreams",
    "RooflineModel",
    "SCENARIOS",
    "SUM",
    "Simulator",
    "SingleSwitchTopology",
    "TechnologyRoadmap",
    "TorusTopology",
    "WorkloadGenerator",
    "WorkloadParams",
    "__version__",
    "cluster_metrics",
    "daly_interval",
    "design_cluster",
    "design_to_budget",
    "design_to_peak",
    "efficiency",
    "evaluate_schedule",
    "format_bytes",
    "format_dollars",
    "format_flops",
    "format_power",
    "format_time",
    "get_interconnect",
    "get_policy",
    "get_scenario",
    "make_node",
    "node_family",
    "nominal_roadmap",
    "parse_bytes",
    "parse_flops",
    "parse_time",
    "run_cg",
    "run_fft2d",
    "run_nbody",
    "run_spmd",
    "run_stencil",
    "run_sweep",
    "simulate_checkpoint_run",
    "system_mtbf",
    "young_interval",
]
