"""Calibrate LogGP parameters against the simulated messaging stack.

Runs the standard ping-pong parameter benchmark over a chosen
interconnect and fits the measurements with
:func:`repro.network.loggp_fit.fit_loggp`.  Fitting the simulator's own
measurements must reproduce the catalog entry that generated them — the
end-to-end self-consistency check the test suite asserts, and the same
procedure one would run against real hardware to extend the catalog.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Generator,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.network.loggp_fit import LogGPFit, fit_loggp
from repro.units import KIB, MIB

if TYPE_CHECKING:
    from repro.messaging.comm import Communicator
    from repro.network.technologies import InterconnectTechnology

__all__ = ["measure_and_fit"]

_DEFAULT_SIZES = (0, KIB, 16 * KIB, 256 * KIB, MIB)


def measure_and_fit(technology: Union[str, "InterconnectTechnology"],
                    sizes: Sequence[int] = _DEFAULT_SIZES,
                    repetitions: int = 3) -> Tuple[LogGPFit, Dict[int, float]]:
    """Ping-pong the simulated fabric and fit the result.

    Returns ``(fit, measurements)`` where measurements maps message size
    to the measured half round trip.  ``technology`` is a catalog name or
    an :class:`~repro.network.technologies.InterconnectTechnology`.
    """
    from repro.messaging.program import run_spmd

    def body(comm: "Communicator", nbytes: int, reps: int
             ) -> Generator[Any, Any, float]:
        payload = np.zeros(nbytes, dtype=np.uint8)
        yield from comm.sendrecv(payload, 1 - comm.rank)  # warm-up
        start = comm.sim.now
        for _ in range(reps):
            if comm.rank == 0:
                yield from comm.send(payload, 1, tag=1)
                payload = yield from comm.recv(1, tag=2)
            else:
                payload = yield from comm.recv(0, tag=1)
                yield from comm.send(payload, 0, tag=2)
        return (comm.sim.now - start) / (2 * reps)

    measurements: Dict[int, float] = {}
    for nbytes in sizes:
        outcome = run_spmd(2, body, int(nbytes), repetitions,
                           technology=technology)
        measurements[int(nbytes)] = outcome.results[0]
    fit = fit_loggp(list(measurements), list(measurements.values()))
    return fit, measurements
