"""Collective communication algorithms.

Implementations follow the canonical MPICH/Open MPI algorithm families the
2002-era literature was standardising:

* **barrier** — dissemination (⌈log₂ p⌉ rounds, any p);
* **bcast / reduce** — binomial trees (latency-optimal for short data);
* **allreduce** — three selectable algorithms, because the choice is a
  design decision bench E13 ablates:

  - ``recursive_doubling`` (log p rounds, full vector each round; best for
    short vectors / low latency networks),
  - ``ring`` (2(p−1) rounds, 1/p of the vector each round;
    bandwidth-optimal for long vectors),
  - ``rabenseifner`` (recursive-halving reduce-scatter + recursive-doubling
    allgather; bandwidth-optimal with log p rounds, power-of-two p);

* **gather / scatter** — linear to/from root;
* **allgather** — ring;
* **alltoall** — pairwise exchange (XOR partners for power-of-two p).

All functions are generator bodies taking the calling rank's
:class:`~repro.messaging.comm.Communicator`; they are not public API —
users call the ``Communicator`` methods.

Reduction operators are assumed commutative and associative (all the
built-ins in :mod:`repro.messaging.message` are).

Analytic fast path
------------------
``algorithm="analytic"`` (barrier, bcast, allreduce) collapses the whole
bulk-synchronous phase into a *closed-form LogGP aggregate*: instead of
simulating every round's point-to-point transfers (O(p log p) engine
events), the p ranks rendezvous at a shared gate, the last arrival
computes the result with a deterministic rank-ordered reduction, and
every rank then pays the textbook completion time in a single timeout —
three engine events per rank regardless of p.  The completion time is
measured from the *last* arrival (bulk-synchronous semantics: nobody
leaves before everybody entered), using
:meth:`~repro.network.loggp.LogGPParams.message_time` per round:

* dissemination barrier — ``ceil(log2 p) * T(0)``;
* binomial bcast — ``ceil(log2 p) * T(n)``;
* allreduce — ``ceil(log2 p) * T(n)`` (recursive doubling), or the ring
  bound ``2 (p-1) * T(ceil(n/p))`` when the payload is chunkable and the
  ring is cheaper — the same adaptive switch the discrete dispatcher
  makes.

The analytic path deliberately ignores fabric congestion and topology
(that is what makes it closed-form), so it refuses to run under a fabric
fault plan — faults act on transfers, and the analytic path performs
none.  Results are bitwise-deterministic: contributions are folded in
rank order no matter which rank arrived last.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Generator,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.messaging.message import payload_nbytes

if TYPE_CHECKING:
    from repro.messaging.comm import Communicator
    from repro.sim.event import Event

__all__ = [
    "COLLECTIVE_TAG_BASE",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "scan",
    "exscan",
    "reduce_scatter",
]

#: Collective tags live far above any user tag.
COLLECTIVE_TAG_BASE = 1 << 20  # repro: noqa[REP003] tag namespace offset, not bytes

#: Zero-byte token for synchronisation-only messages.
_TOKEN = b""


# -- analytic fast path (closed-form LogGP aggregates) -----------------------

class _AnalyticGate:
    """One in-flight analytic collective: a rendezvous of all p ranks.

    Ranks deposit their contributions keyed by rank; the last arrival
    runs the finisher (rank-ordered, so the result never depends on
    arrival order) and succeeds ``done`` with ``(result, seconds)``.
    """

    __slots__ = ("values", "done")

    def __init__(self, done: "Event") -> None:
        self.values: dict = {}
        self.done = done


def _ceil_log2(p: int) -> int:
    """⌈log₂ p⌉ for p >= 1 (0 for p == 1)."""
    return (p - 1).bit_length()


def _analytic_run(comm: Communicator,
                  contribution: Any,
                  finish: Callable[[dict], Tuple[Any, float]]
                  ) -> Generator[Event, Any, Any]:
    """Generator: rendezvous with every peer, then pay the closed form.

    ``finish(values)`` — called exactly once, by the last-arriving rank —
    maps the rank-keyed contribution dict to ``(result, seconds)``; every
    rank receives an isolated copy of ``result`` after sleeping
    ``seconds`` past the last arrival (bulk-synchronous completion).
    """
    world = comm.world
    if world.fabric.fault_plan is not None:
        raise ValueError(
            "analytic collectives cannot run under a fabric fault plan: "
            "the closed form performs no transfers for faults to act on")
    tag = comm._next_tag()
    if comm.size == 1:
        result, seconds = finish({comm.rank: contribution})
        if seconds > 0.0:
            yield comm.sim.timeout(seconds)
        return comm._isolate(result)
    gates = world._analytic_gates
    key = (comm._context, tag)
    gate = gates.get(key)
    if gate is None:
        gate = _AnalyticGate(comm.sim.event(f"analytic#{tag}"))
        gates[key] = gate
    gate.values[comm.rank] = contribution
    done = gate.done
    if len(gate.values) == comm.size:
        # Last arrival: the gate is complete, compute and release.
        del gates[key]
        done.succeed(finish(gate.values))
    if not done.triggered:
        yield done
    result, seconds = done.value
    yield comm.sim.timeout(seconds)
    return comm._isolate(result)


def _analytic_barrier_body(comm: Communicator
                           ) -> Generator[Event, Any, None]:
    """Closed-form dissemination barrier: ⌈log₂ p⌉ zero-byte rounds."""
    params = comm.world.fabric.technology.loggp
    rounds = _ceil_log2(comm.size)

    def finish(_values: dict) -> Tuple[Any, float]:
        return None, rounds * params.message_time(0)

    result = yield from _analytic_run(comm, None, finish)
    return result


def _analytic_bcast_body(comm: Communicator, obj: Any, root: int
                         ) -> Generator[Event, Any, Any]:
    """Closed-form binomial bcast: ⌈log₂ p⌉ full-payload rounds."""
    comm._check_peer(root, "root")
    params = comm.world.fabric.technology.loggp
    rounds = _ceil_log2(comm.size)
    contribution = comm._isolate(obj) if comm.rank == root else None

    def finish(values: dict) -> Tuple[Any, float]:
        payload = values[root]
        return payload, rounds * params.message_time(payload_nbytes(payload))

    result = yield from _analytic_run(comm, contribution, finish)
    return result


def _analytic_allreduce_body(comm: Communicator, obj: Any, op: Callable
                             ) -> Generator[Event, Any, Any]:
    """Closed-form allreduce; recursive-doubling or ring bound.

    The reduction itself is exact — contributions folded in rank order —
    only the *time* is the closed form: ``ceil(log2 p) * T(n)`` for
    recursive doubling, or ``2 (p-1) * T(ceil(n/p))`` for the
    bandwidth-optimal ring when the payload is chunkable and the ring is
    cheaper (mirroring the discrete dispatcher's adaptive switch).
    """
    params = comm.world.fabric.technology.loggp
    size = comm.size

    def finish(values: dict) -> Tuple[Any, float]:
        result = values[0]
        for rank in range(1, size):
            result = op(result, values[rank])
        nbytes = payload_nbytes(values[0])
        seconds = _ceil_log2(size) * params.message_time(nbytes)
        if size > 1 and _chunkable(values[0], size):
            chunk = -(-nbytes // size)  # ceil division
            ring = 2.0 * (size - 1) * params.message_time(chunk)
            if ring < seconds:
                seconds = ring
        return result, seconds

    result = yield from _analytic_run(comm, comm._isolate(obj), finish)
    return result


def barrier(comm: Communicator, algorithm: str = "dissemination"
            ) -> Generator[Event, Any, None]:
    """Dissemination barrier: after round k every rank has heard (directly
    or transitively) from 2^k others; ⌈log₂ p⌉ rounds total.

    ``algorithm="analytic"`` pays the same ⌈log₂ p⌉-round bound as one
    closed-form timeout (see the module docstring).
    """
    if algorithm == "analytic":
        result = yield from _analytic_barrier_body(comm)
        return result
    if algorithm != "dissemination":
        raise ValueError(
            f"unknown barrier algorithm {algorithm!r}; choose from "
            "['dissemination', 'analytic']"
        )
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return None
    distance = 1
    while distance < size:
        request = comm.isend(_TOKEN, (rank + distance) % size, tag)
        yield from comm.recv((rank - distance) % size, tag)
        yield from request.wait()
        distance <<= 1
    return None


def bcast(comm: Communicator, obj: Any, root: int = 0,
          algorithm: str = "binomial") -> Generator[Event, Any, Any]:
    """Broadcast: binomial tree, or van de Geijn scatter+allgather.

    Binomial sends the full payload log₂ p times along the critical path
    (latency-optimal).  ``scatter_allgather`` splits the payload into p
    chunks, scatters them binomially, and ring-allgathers — each link
    carries ~2·(p−1)/p of the payload instead of the full payload per
    tree level, the bandwidth-optimal choice real MPIs switch to for
    large messages.  The scatter+allgather path requires a numpy-array
    payload long enough to chunk and falls back to binomial otherwise.
    ``analytic`` pays the binomial-tree bound as one closed-form timeout
    (see the module docstring).
    """
    if algorithm == "scatter_allgather":
        result = yield from _bcast_scatter_allgather(comm, obj, root)
        return result
    if algorithm == "analytic":
        result = yield from _analytic_bcast_body(comm, obj, root)
        return result
    if algorithm != "binomial":
        raise ValueError(
            f"unknown bcast algorithm {algorithm!r}; choose from "
            "['binomial', 'scatter_allgather', 'analytic']"
        )
    result = yield from _bcast_binomial(comm, obj, root)
    return result


def _bcast_scatter_allgather(comm: Communicator, array: Any, root: int
                             ) -> Generator[Event, Any, Any]:
    """van de Geijn: scatter chunks from root, ring-allgather them.

    Only the root can see whether the payload is chunkable, so the
    decision rides inside the scattered payloads (a ``chunked`` flag):
    every rank then agrees on whether the allgather phase runs — the SPMD
    contract is preserved without a pre-broadcast.
    """
    comm._check_peer(root, "root")
    size, rank = comm.size, comm.rank
    if size == 1:
        return array
    if rank == root:
        if _chunkable(array, size):
            flat = np.asarray(array).ravel()
            shape = np.asarray(array).shape
            payloads = [(True, shape, chunk)
                        for chunk in np.array_split(flat, size)]
        else:
            # Not chunkable: ship the whole object to everyone through
            # the same scatter skeleton (linear, but payloads this small
            # do not care).
            payloads = [(False, array, None)] * size
    else:
        payloads = None
    chunked, meta, mine = yield from scatter(comm, payloads, root)
    if not chunked:
        return meta
    pieces = yield from allgather(comm, mine)
    return np.concatenate(pieces).reshape(meta)


def _bcast_binomial(comm: Communicator, obj: Any, root: int
                    ) -> Generator[Event, Any, Any]:
    """Binomial-tree broadcast (MPICH formulation)."""
    comm._check_peer(root, "root")
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            source = (relative - mask + root) % size
            obj = yield from comm.recv(source, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dest = (relative + mask + root) % size
            yield from comm.send(obj, dest, tag)
        mask >>= 1
    return obj


def reduce(comm: Communicator, obj: Any, op: Callable, root: int = 0
           ) -> Generator[Event, Any, Any]:
    """Binomial-tree reduction; returns the result at ``root``, ``None``
    elsewhere.  ``op`` must be commutative."""
    comm._check_peer(root, "root")
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    relative = (rank - root) % size
    result = obj
    mask = 1
    while mask < size:
        if relative & mask == 0:
            source_relative = relative | mask
            if source_relative < size:
                incoming = yield from comm.recv(
                    (source_relative + root) % size, tag)
                result = op(result, incoming)
        else:
            dest = ((relative & ~mask) + root) % size
            yield from comm.send(result, dest, tag)
            break
        mask <<= 1
    return result if rank == root else None


# -- allreduce family ------------------------------------------------------

def allreduce(comm: Communicator, obj: Any, op: Callable,
              algorithm: str = "recursive_doubling"
              ) -> Generator[Event, Any, Any]:
    """Dispatch to the selected allreduce algorithm.

    ``ring`` and ``rabenseifner`` need a numpy vector long enough to chunk
    (and power-of-two ranks, for rabenseifner); when preconditions fail
    they quietly fall back to recursive doubling — the same adaptive
    behaviour real MPI libraries implement.  ``analytic`` folds the
    contributions in rank order and pays the cheaper of the
    recursive-doubling and ring bounds as one closed-form timeout (see
    the module docstring).
    """
    if algorithm == "recursive_doubling":
        result = yield from _allreduce_recursive_doubling(comm, obj, op)
        return result
    if algorithm == "analytic":
        result = yield from _analytic_allreduce_body(comm, obj, op)
        return result
    if algorithm == "ring":
        if _chunkable(obj, comm.size):
            result = yield from _allreduce_ring(comm, obj, op)
        else:
            result = yield from _allreduce_recursive_doubling(comm, obj, op)
        return result
    if algorithm == "rabenseifner":
        power_of_two = comm.size & (comm.size - 1) == 0
        if power_of_two and _chunkable(obj, comm.size):
            result = yield from _allreduce_rabenseifner(comm, obj, op)
        else:
            result = yield from _allreduce_recursive_doubling(comm, obj, op)
        return result
    raise ValueError(
        f"unknown allreduce algorithm {algorithm!r}; choose from "
        "['recursive_doubling', 'ring', 'rabenseifner', 'analytic']"
    )


def _chunkable(obj: Any, size: int) -> bool:
    return isinstance(obj, np.ndarray) and obj.size >= size


def _allreduce_recursive_doubling(comm: Communicator, obj: Any,
                                  op: Callable
                                  ) -> Generator[Event, Any, Any]:
    """MPICH recursive doubling with the standard non-power-of-two
    fold-in/fold-out phases."""
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    result = obj
    if size == 1:
        return result
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    remainder = size - pof2

    # Phase 1: fold the first 2*remainder ranks down to `remainder` ranks.
    if rank < 2 * remainder:
        if rank % 2 == 0:
            yield from comm.send(result, rank + 1, tag)
            virtual = -1  # drops out of phase 2
        else:
            incoming = yield from comm.recv(rank - 1, tag)
            result = op(result, incoming)
            virtual = rank // 2
    else:
        virtual = rank - remainder

    # Phase 2: recursive doubling among pof2 virtual ranks.
    if virtual != -1:
        mask = 1
        while mask < pof2:
            virtual_peer = virtual ^ mask
            peer = (virtual_peer * 2 + 1 if virtual_peer < remainder
                    else virtual_peer + remainder)
            request = comm.isend(result, peer, tag)
            incoming = yield from comm.recv(peer, tag)
            yield from request.wait()
            result = op(result, incoming)
            mask <<= 1

    # Phase 3: hand results back to the folded-out ranks.
    if rank < 2 * remainder:
        if rank % 2 == 1:
            yield from comm.send(result, rank - 1, tag)
        else:
            result = yield from comm.recv(rank + 1, tag)
    return result


def _allreduce_ring(comm: Communicator, array: np.ndarray, op: Callable
                    ) -> Generator[Event, Any, np.ndarray]:
    """Bandwidth-optimal ring: reduce-scatter then allgather, each p−1
    rounds moving 1/p of the vector."""
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return array
    flat = np.asarray(array).ravel().copy()
    chunks = np.array_split(flat, size)  # views into flat
    right = (rank + 1) % size
    left = (rank - 1) % size

    send_index = rank
    recv_index = (rank - 1) % size
    for _step in range(size - 1):
        request = comm.isend(chunks[send_index].copy(), right, tag)
        incoming = yield from comm.recv(left, tag)
        yield from request.wait()
        chunks[recv_index][:] = op(chunks[recv_index], incoming)
        send_index = recv_index
        recv_index = (recv_index - 1) % size

    # Rank r now owns the fully-reduced chunk (r+1) mod p; circulate it.
    send_index = (rank + 1) % size
    recv_index = rank
    for _step in range(size - 1):
        request = comm.isend(chunks[send_index].copy(), right, tag)
        incoming = yield from comm.recv(left, tag)
        yield from request.wait()
        chunks[recv_index][:] = incoming
        send_index = recv_index
        recv_index = (recv_index - 1) % size

    return flat.reshape(np.asarray(array).shape)


def _allreduce_rabenseifner(comm: Communicator, array: np.ndarray,
                            op: Callable
                            ) -> Generator[Event, Any, np.ndarray]:
    """Reduce-scatter by recursive halving, then allgather by recursive
    doubling.  Power-of-two ranks only (dispatcher guarantees it)."""
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return array
    flat = np.asarray(array).ravel().copy()

    lo, hi = 0, flat.size
    history = []  # (partner, kept_lo, kept_hi, other_lo, other_hi)
    mask = size >> 1
    while mask >= 1:
        partner = rank ^ mask
        mid = lo + (hi - lo) // 2
        if rank < partner:
            keep = (lo, mid)
            other = (mid, hi)
        else:
            keep = (mid, hi)
            other = (lo, mid)
        request = comm.isend(flat[other[0]:other[1]].copy(), partner, tag)
        incoming = yield from comm.recv(partner, tag)
        yield from request.wait()
        flat[keep[0]:keep[1]] = op(flat[keep[0]:keep[1]], incoming)
        history.append((partner, keep[0], keep[1], other[0], other[1]))
        lo, hi = keep
        mask >>= 1

    # Allgather: replay the exchanges in reverse, each time sending the
    # (now complete) kept segment and filling in the partner's half.
    for partner, keep_lo, keep_hi, other_lo, other_hi in reversed(history):
        request = comm.isend(flat[keep_lo:keep_hi].copy(), partner, tag)
        incoming = yield from comm.recv(partner, tag)
        yield from request.wait()
        flat[other_lo:other_hi] = incoming

    return flat.reshape(np.asarray(array).shape)


# -- gather / scatter family -------------------------------------------------

def gather(comm: Communicator, obj: Any, root: int = 0
           ) -> Generator[Event, Any, Optional[List[Any]]]:
    """Linear gather; root returns the list ordered by source rank."""
    comm._check_peer(root, "root")
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    if rank != root:
        yield from comm.send(obj, root, tag)
        return None
    results: List[Any] = [None] * size
    results[root] = comm._isolate(obj)
    for _ in range(size - 1):
        payload, status = yield from comm.recv_with_status(tag=tag)
        results[status.source] = payload
    return results


def scatter(comm: Communicator, objs: Optional[List[Any]], root: int = 0
            ) -> Generator[Event, Any, Any]:
    """Linear scatter; each rank returns its element of root's list."""
    comm._check_peer(root, "root")
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    if rank == root:
        if objs is None or len(objs) != size:
            raise ValueError(
                f"root must scatter exactly {size} items, got "
                f"{None if objs is None else len(objs)}"
            )
        requests = []
        for peer in range(size):
            if peer != root:
                requests.append(comm.isend(objs[peer], peer, tag))
        for request in requests:
            yield from request.wait()
        return comm._isolate(objs[root])
    received = yield from comm.recv(root, tag)
    return received


def allgather(comm: Communicator, obj: Any
              ) -> Generator[Event, Any, List[Any]]:
    """Ring allgather: p−1 rounds, each forwarding what arrived last."""
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    results: List[Any] = [None] * size
    results[rank] = comm._isolate(obj)
    if size == 1:
        return results
    right = (rank + 1) % size
    left = (rank - 1) % size
    forwarding = results[rank]
    for step in range(size - 1):
        request = comm.isend(forwarding, right, tag)
        incoming = yield from comm.recv(left, tag)
        yield from request.wait()
        source = (rank - step - 1) % size
        results[source] = incoming
        forwarding = incoming
    return results


def scan(comm: Communicator, obj: Any, op: Callable
         ) -> Generator[Event, Any, Any]:
    """Inclusive prefix reduction (MPI_Scan): rank r returns
    op(obj_0, ..., obj_r).  Hillis-Steele doubling: ⌈log₂ p⌉ rounds.

    ``op`` must be associative (commutativity is NOT required: partial
    results are always combined in rank order).
    """
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    result = comm._isolate(obj)
    distance = 1
    while distance < size:
        # Send my running prefix up; fold the prefix arriving from below.
        send_request = None
        if rank + distance < size:
            send_request = comm.isend(result, rank + distance, tag)
        if rank - distance >= 0:
            incoming = yield from comm.recv(rank - distance, tag)
            result = op(incoming, result)
        if send_request is not None:
            yield from send_request.wait()
        distance <<= 1
    return result


def exscan(comm: Communicator, obj: Any, op: Callable
           ) -> Generator[Event, Any, Any]:
    """Exclusive prefix reduction (MPI_Exscan): rank r returns
    op(obj_0, ..., obj_{r-1}); rank 0 returns ``None``.

    Implemented as a shifted inclusive scan: each rank forwards its
    inclusive prefix to rank+1 after the scan proper.
    """
    tag = comm._next_tag()
    size, rank = comm.size, comm.rank
    inclusive = yield from scan(comm, obj, op)
    request = None
    if rank + 1 < size:
        request = comm.isend(inclusive, rank + 1, tag)
    result = None
    if rank > 0:
        result = yield from comm.recv(rank - 1, tag)
    if request is not None:
        yield from request.wait()
    return result


def reduce_scatter(comm: Communicator, objs: List[Any], op: Callable
                   ) -> Generator[Event, Any, Any]:
    """Reduce p per-destination items, scattering result i to rank i
    (MPI_Reduce_scatter with equal blocks).

    Pairwise-exchange algorithm: p−1 rounds, each rank accumulating its
    own block; bandwidth-optimal for the balanced case.
    """
    size, rank = comm.size, comm.rank
    if objs is None or len(objs) != size:
        raise ValueError(
            f"reduce_scatter needs exactly {size} items, got "
            f"{None if objs is None else len(objs)}"
        )
    tag = comm._next_tag()
    result = comm._isolate(objs[rank])
    for step in range(1, size):
        send_to = (rank + step) % size
        recv_from = (rank - step) % size
        request = comm.isend(objs[send_to], send_to, tag)
        incoming = yield from comm.recv(recv_from, tag)
        yield from request.wait()
        result = op(result, incoming)
    return result


def alltoall(comm: Communicator, objs: List[Any]
             ) -> Generator[Event, Any, List[Any]]:
    """Pairwise-exchange alltoall; returns the list indexed by source."""
    size, rank = comm.size, comm.rank
    if objs is None or len(objs) != size:
        raise ValueError(
            f"alltoall needs exactly {size} items, got "
            f"{None if objs is None else len(objs)}"
        )
    tag = comm._next_tag()
    results: List[Any] = [None] * size
    results[rank] = comm._isolate(objs[rank])
    power_of_two = size & (size - 1) == 0
    for step in range(1, size):
        if power_of_two:
            send_to = recv_from = rank ^ step
        else:
            send_to = (rank + step) % size
            recv_from = (rank - step) % size
        request = comm.isend(objs[send_to], send_to, tag)
        results[recv_from] = yield from comm.recv(recv_from, tag)
        yield from request.wait()
    return results
