"""The per-rank communicator: point-to-point messaging and requests.

Every blocking operation is a generator driven with ``yield from`` — that
is how a simulated process blocks.  Semantics follow MPI where it matters:

* ``send`` is *buffered/eager*: the sender resumes after paying its local
  injection cost (overhead + serialization); delivery continues in the
  background.  Exchange patterns therefore do not deadlock, matching what
  real MPIs give you for eager-size messages.
* ``ssend`` is synchronous: it completes only when the receiver side has
  the message (rendezvous semantics).
* ``recv`` matches on (source, tag) with ``ANY_SOURCE``/``ANY_TAG``
  wildcards, non-overtaking per (source, tag) pair.
* ``isend``/``irecv`` return :class:`Request` handles with
  ``wait``/``test``.

Collective operations live in :mod:`repro.messaging.collectives`; the
methods here delegate so user code only ever touches ``Communicator``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.messaging import collectives as _collectives
from repro.messaging.message import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    Status,
    SUM,
    payload_nbytes,
)
from repro.network.fabric import Fabric
from repro.sim.engine import Process, Simulator
from repro.sim.resources import Store

__all__ = ["Communicator", "Request", "CommWorld", "SubCommunicator",
           "waitall", "waitany"]


class CommWorld:
    """Shared state for one set of communicating ranks: the simulator, the
    fabric, and one mailbox per rank."""

    def __init__(self, sim: Simulator, fabric: Fabric) -> None:
        self.sim = sim
        self.fabric = fabric
        self.size = fabric.topology.hosts
        self.mailboxes: List[Store] = [
            Store(sim, name=f"mbox{rank}") for rank in range(self.size)
        ]

    def communicator(self, rank: int) -> "Communicator":
        """The rank-local view of this world."""
        return Communicator(self, rank)


class Request:
    """Handle to a non-blocking operation (wraps the background process)."""

    def __init__(self, process: Process) -> None:
        self._process = process
        self._process.defused = True  # failure surfaces via wait(), not engine

    @property
    def complete(self) -> bool:
        return self._process.triggered

    def wait(self):
        """Generator: block until the operation finishes, return its value
        (the received object for ``irecv``, ``None`` for ``isend``)."""
        value = yield self._process
        return value

    def test(self) -> Tuple[bool, Any]:
        """Non-blocking completion check: ``(done, value_or_None)``."""
        if self._process.triggered:
            if not self._process.ok:
                raise self._process.value
            return True, self._process.value
        return False, None


def waitall(requests):
    """Generator: wait for every request; returns their values in order."""
    values = []
    for request in requests:
        value = yield from request.wait()
        values.append(value)
    return values


def waitany(requests):
    """Generator: wait until any request completes; returns
    ``(index, value)`` of the first completion (by event order)."""
    if not requests:
        raise ValueError("waitany needs at least one request")
    sim = requests[0]._process.sim
    index, value = yield sim.any_of([r._process for r in requests])
    return index, value


class Communicator:
    """One rank's endpoint, mpi4py-idiom surface.

    SPMD contract for collectives: every rank of the world calls the same
    collectives in the same order (tags are sequenced per rank under this
    assumption, exactly like real MPI contexts).
    """

    def __init__(self, world: CommWorld, rank: int) -> None:
        if not 0 <= rank < world.size:
            raise IndexError(f"rank {rank} out of range [0, {world.size})")
        self.world = world
        self.rank = rank
        self.size = world.size
        self._collective_seq = 0
        self._split_seq = 0
        #: Message context: 0 is the world; split() derives fresh ones.
        self._context: Any = 0

    # -- rank translation (identity in the world communicator) ------------

    def _to_world(self, rank: int) -> int:
        """Local rank -> world (fabric/mailbox) rank."""
        return rank

    def _from_world(self, world_rank: int) -> int:
        """World rank -> local rank."""
        return world_rank

    # MPI-style accessors, for muscle-memory compatibility.
    def Get_rank(self) -> int:
        """This rank's index (mpi4py-style accessor)."""
        return self.rank

    def Get_size(self) -> int:
        """Number of ranks in this communicator (mpi4py-style)."""
        return self.size

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    # -- internals --------------------------------------------------------

    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise IndexError(f"{what} rank {peer} out of range [0, {self.size})")

    @staticmethod
    def _isolate(obj: Any) -> Any:
        """Copy mutable buffers at the send boundary so sender-side writes
        after send cannot corrupt in-flight data (value semantics)."""
        if isinstance(obj, np.ndarray):
            return obj.copy()
        return obj

    def _transfer_body(self, dest: int, tag: int, payload: Any, nbytes: int,
                       ack=None):
        """Process body: move the bytes, then deposit in dest's mailbox.

        ``dest`` is a *local* rank; routing happens in world coordinates,
        but the envelope records local ranks plus this communicator's
        context so receives match within the right communicator.
        """
        dest_world = self._to_world(dest)
        yield from self.world.fabric.transfer(self._to_world(self.rank),
                                              dest_world, nbytes)
        envelope = Envelope(source=self.rank, dest=dest, tag=tag,
                            payload=payload, nbytes=nbytes, ack=ack,
                            context=self._context)
        yield self.world.mailboxes[dest_world].put(envelope)

    def _start_transfer(self, dest: int, tag: int, obj: Any,
                        ack=None) -> Tuple[Process, int]:
        payload = self._isolate(obj)
        nbytes = payload_nbytes(payload)
        process = self.sim.process(
            self._transfer_body(dest, tag, payload, nbytes, ack),
            name=f"xfer{self.rank}->{dest}#{tag}",
        )
        return process, nbytes

    # -- point-to-point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0):
        """Buffered send: resumes after the local injection cost."""
        self._check_peer(dest, "dest")
        _process, nbytes = self._start_transfer(dest, tag, obj)
        params = self.world.fabric.technology.loggp
        local_cost = params.overhead + max(
            params.gap, nbytes * params.gap_per_byte
        )
        yield self.sim.timeout(local_cost)

    def ssend(self, obj: Any, dest: int, tag: int = 0):
        """Synchronous send: completes only when the receiver has matched
        the message (true MPI rendezvous semantics, via an ack event the
        matching ``recv`` triggers)."""
        self._check_peer(dest, "dest")
        ack = self.sim.event(f"ssend-ack{self.rank}->{dest}")
        self._start_transfer(dest, tag, obj, ack=ack)
        yield ack

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; the request completes at delivery time."""
        self._check_peer(dest, "dest")
        process, _nbytes = self._start_transfer(dest, tag, obj)
        return Request(process)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the payload object."""
        obj, _status = yield from self.recv_with_status(source, tag)
        return obj

    def recv_with_status(self, source: int = ANY_SOURCE,
                         tag: int = ANY_TAG):
        """Blocking receive; returns ``(payload, Status)``."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        context = self._context
        envelope: Envelope = yield self.world.mailboxes[
            self._to_world(self.rank)].get(
            lambda e: e.context == context and e.matches(source, tag)
        )
        if envelope.ack is not None:
            envelope.ack.succeed()  # rendezvous: release the ssend-er
        status = Status(source=envelope.source, tag=envelope.tag,
                        nbytes=envelope.nbytes)
        return envelope.payload, status

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``wait()`` yields the payload."""
        process = self.sim.process(
            self.recv(source, tag), name=f"irecv@{self.rank}"
        )
        return Request(process)

    def sendrecv(self, obj: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        """Combined exchange (deadlock-free by construction)."""
        request = self.isend(obj, dest, sendtag)
        received = yield from self.recv(source, recvtag)
        yield from request.wait()
        return received

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
              ) -> Optional[Status]:
        """Non-blocking: status of a matching queued message, else None."""
        mailbox = self.world.mailboxes[self._to_world(self.rank)]
        for item in mailbox._items:
            if item.context == self._context and item.matches(source, tag):
                return Status(source=item.source, tag=item.tag,
                              nbytes=item.nbytes)
        return None

    # Buffer-flavoured aliases (mpi4py uppercase idiom).  Payloads are
    # numpy arrays; the wire size is exactly the buffer size.
    def Send(self, array: np.ndarray, dest: int, tag: int = 0):
        """Buffer send: like :meth:`send` but requires a numpy array."""
        if not isinstance(array, np.ndarray):
            raise TypeError("Send moves numpy arrays; use send for objects")
        yield from self.send(array, dest, tag)

    def Recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Buffer receive: like :meth:`recv` but demands a numpy array."""
        result = yield from self.recv(source, tag)
        if not isinstance(result, np.ndarray):
            raise TypeError(
                f"Recv matched a non-buffer message ({type(result).__name__});"
                " sender should have used Send"
            )
        return result

    # -- collectives (delegating; algorithms in collectives.py) -----------

    def _next_tag(self) -> int:
        """Collective tag sequencing (see SPMD contract in class docstring)."""
        self._collective_seq += 1
        return _collectives.COLLECTIVE_TAG_BASE + self._collective_seq

    def barrier(self):
        """Block until every rank has entered the barrier."""
        result = yield from _collectives.barrier(self)
        return result

    def bcast(self, obj: Any, root: int = 0,
              algorithm: str = "binomial"):
        """Broadcast ``obj`` from ``root`` to every rank (see
        :func:`repro.messaging.collectives.bcast` for algorithms)."""
        result = yield from _collectives.bcast(self, obj, root, algorithm)
        return result

    def reduce(self, obj: Any, op: Callable = SUM, root: int = 0):
        """Reduce every rank's ``obj`` with ``op``; result at ``root``."""
        result = yield from _collectives.reduce(self, obj, op, root)
        return result

    def allreduce(self, obj: Any, op: Callable = SUM,
                  algorithm: str = "recursive_doubling"):
        """Reduce with ``op`` and deliver the result to every rank (see
        :func:`repro.messaging.collectives.allreduce` for algorithms)."""
        result = yield from _collectives.allreduce(self, obj, op, algorithm)
        return result

    def gather(self, obj: Any, root: int = 0):
        """Collect every rank's ``obj`` at ``root`` (list by rank)."""
        result = yield from _collectives.gather(self, obj, root)
        return result

    def scatter(self, objs: Optional[List[Any]], root: int = 0):
        """Distribute ``objs[i]`` from ``root`` to rank ``i``."""
        result = yield from _collectives.scatter(self, objs, root)
        return result

    def allgather(self, obj: Any):
        """Every rank receives the list of every rank's ``obj``."""
        result = yield from _collectives.allgather(self, obj)
        return result

    def alltoall(self, objs: List[Any]):
        """Personalised exchange: rank d receives ``objs[d]`` from every
        rank, as a list indexed by source."""
        result = yield from _collectives.alltoall(self, objs)
        return result

    def scan(self, obj: Any, op: Callable = SUM):
        """Inclusive prefix reduction over ranks 0..self.rank."""
        result = yield from _collectives.scan(self, obj, op)
        return result

    def exscan(self, obj: Any, op: Callable = SUM):
        """Exclusive prefix reduction (rank 0 gets ``None``)."""
        result = yield from _collectives.exscan(self, obj, op)
        return result

    def reduce_scatter(self, objs: List[Any], op: Callable = SUM):
        """Reduce per-destination items; rank i gets reduced item i."""
        result = yield from _collectives.reduce_scatter(self, objs, op)
        return result

    # -- communicator construction (MPI_Comm_split) ------------------------

    def split(self, color: Any, key: int = 0):
        """Collective: partition this communicator by ``color``.

        Every rank calls ``split`` (SPMD contract); ranks sharing a color
        value form a new communicator, ordered by ``(key, old rank)``.
        Passing ``color=None`` opts a rank out (returns ``None``, like
        MPI_UNDEFINED).  Messages in the child cannot match messages in
        the parent or in siblings: each split gets a fresh context.
        """
        entries = yield from self.allgather((color, key, self.rank))
        self._split_seq += 1
        if color is None:
            return None
        members_local = [rank for c, k, rank in sorted(
            entries, key=lambda e: (e[1], e[2]))
            if c == color]
        members_world = [self._to_world(rank) for rank in members_local]
        my_index = members_local.index(self.rank)
        # Context derivation is pure SPMD arithmetic, so every member
        # computes the identical value with no extra communication.
        context = (self._context, self._split_seq, color)
        return SubCommunicator(self.world, members_world, my_index, context)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator rank={self.rank}/{self.size}>"


class SubCommunicator(Communicator):
    """A communicator over a subset of the world's ranks.

    Created by :meth:`Communicator.split`; local ranks are dense
    ``0..len(members)-1`` and translate to world ranks through the member
    table.  All point-to-point and collective machinery is inherited —
    only rank translation and the message context differ.
    """

    def __init__(self, world: CommWorld, members_world: List[int],
                 my_index: int, context: Any) -> None:
        if not members_world:
            raise ValueError("sub-communicator needs at least one member")
        if len(set(members_world)) != len(members_world):
            raise ValueError("duplicate members in sub-communicator")
        self.world = world
        self.members = list(members_world)
        self.rank = my_index
        self.size = len(members_world)
        self._collective_seq = 0
        self._split_seq = 0
        self._context = context

    def _to_world(self, rank: int) -> int:
        return self.members[rank]

    def _from_world(self, world_rank: int) -> int:
        return self.members.index(world_rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SubCommunicator rank={self.rank}/{self.size} "
                f"context={self._context!r}>")
