"""The per-rank communicator: point-to-point messaging and requests.

Every blocking operation is a generator driven with ``yield from`` — that
is how a simulated process blocks.  Semantics follow MPI where it matters:

* ``send`` is *buffered/eager*: the sender resumes after paying its local
  injection cost (overhead + serialization); delivery continues in the
  background.  Exchange patterns therefore do not deadlock, matching what
  real MPIs give you for eager-size messages.
* ``ssend`` is synchronous: it completes only when the receiver side has
  the message (rendezvous semantics).
* ``recv`` matches on (source, tag) with ``ANY_SOURCE``/``ANY_TAG``
  wildcards, non-overtaking per (source, tag) pair.
* ``isend``/``irecv`` return :class:`Request` handles with
  ``wait``/``test``.

Collective operations live in :mod:`repro.messaging.collectives`; the
methods here delegate so user code only ever touches ``Communicator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Generator,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.messaging import collectives as _collectives
from repro.messaging.message import (
    ANY_SOURCE,
    ANY_TAG,
    ENVELOPE_BYTES,
    Envelope,
    Status,
    SUM,
    payload_nbytes,
)
from repro.network.fabric import Fabric, NetworkUnreachable, TransferDropped
from repro.obs import NULL_SPAN
from repro.sim.engine import Process, Simulator
from repro.sim.event import Event
from repro.sim.resources import Store
from repro.sim.rng import RandomStreams

__all__ = ["Communicator", "Request", "CommWorld", "SubCommunicator",
           "CommConfig", "CommStats", "RankFailure", "CommTimeout",
           "DeliveryError", "waitall", "waitany"]


class RankFailure(RuntimeError):
    """A peer rank has failed; the operation cannot complete.

    Raised by fault-aware receives, sends to dead peers, and at
    collective entry (so collectives error out instead of hanging, in
    the FT-MPI/ULFM tradition).  ``ranks`` holds the failed ranks in the
    raising communicator's local numbering.
    """

    def __init__(self, ranks: Iterable[int], message: str = "") -> None:
        self.ranks: FrozenSet[int] = frozenset(ranks)
        super().__init__(
            message or f"rank(s) {sorted(self.ranks)} failed"
        )


class CommTimeout(RuntimeError):
    """A blocking operation exceeded its timeout without completing."""


class DeliveryError(RuntimeError):
    """Reliable delivery gave up after exhausting its retry budget."""


@dataclass(frozen=True)
class CommConfig:
    """Fault-tolerance knobs for a :class:`CommWorld`.

    The zero-argument default leaves every new code path disabled, so a
    plain world behaves (and times) exactly as before this machinery
    existed.  ``reliable`` turns sends into retransmit-until-acked
    delivery; ``fault_aware`` arms failure notices so blocked receives
    and collectives raise :class:`RankFailure` instead of hanging when
    a peer dies; ``op_timeout`` bounds blocking operations.
    """

    #: Retransmit-until-acknowledged sends (drops/corruption survivable).
    reliable: bool = False
    #: Raise RankFailure from receives/collectives when a peer has died.
    fault_aware: bool = False
    #: Timeout for blocking ops (seconds of virtual time; None = forever).
    op_timeout: Optional[float] = None
    #: Ack round-trip allowance before retransmit (None = adaptive,
    #: derived from the fabric's uncontended transfer time).
    ack_timeout: Optional[float] = None
    #: Retransmissions after the first attempt before DeliveryError.
    max_retries: int = 8
    #: Exponential backoff: sleep min(cap, base * factor**(attempt-1)).
    backoff_base: float = 20e-6
    backoff_factor: float = 2.0
    backoff_cap: float = 50e-3
    #: Jitter fraction: backoff *= 1 + jitter * U[0,1) (needs streams).
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_factor < 1:
            raise ValueError("backoff_base must be > 0, factor >= 1")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if not 0 <= self.jitter:
            raise ValueError("jitter must be >= 0")
        for name in ("op_timeout", "ack_timeout"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")

    @property
    def active(self) -> bool:
        """True when any fault-tolerance machinery is enabled."""
        return (self.reliable or self.fault_aware
                or self.op_timeout is not None)


@dataclass
class CommStats:
    """Counters the fault-tolerance machinery accumulates per world."""

    retries: int = 0
    acks: int = 0
    duplicates: int = 0
    losses: int = 0
    corrupt_discarded: int = 0
    op_timeouts: int = 0
    delivery_failures: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy, for campaign reports and determinism checks."""
        return {
            "retries": self.retries,
            "acks": self.acks,
            "duplicates": self.duplicates,
            "losses": self.losses,
            "corrupt_discarded": self.corrupt_discarded,
            "op_timeouts": self.op_timeouts,
            "delivery_failures": self.delivery_failures,
        }


class CommWorld:
    """Shared state for one set of communicating ranks: the simulator, the
    fabric, one mailbox per rank, and (optionally) the fault-tolerance
    machinery configured by a :class:`CommConfig`."""

    def __init__(self, sim: Simulator, fabric: Fabric,
                 config: Optional[CommConfig] = None,
                 streams: Optional[RandomStreams] = None) -> None:
        self.sim = sim
        self.fabric = fabric
        self.size = fabric.topology.hosts
        self.config = config if config is not None else CommConfig()
        self.streams = streams
        self.mailboxes: List[Store] = [
            Store(sim, name=f"mbox{rank}") for rank in range(self.size)
        ]
        #: World ranks known to have failed (fault-aware mode).
        self.failed: Set[int] = set()
        self.stats = CommStats()
        self._failure_event: Event = sim.event("rank-failure")
        self._failure_event.defused = True
        self._seq = 0
        #: Sequence numbers already deposited at their destination —
        #: the receiver-side dedup table for reliable delivery.
        self._delivered_seqs: Set[int] = set()
        #: In-flight analytic collectives, keyed by (context, tag); see
        #: the analytic fast path in :mod:`repro.messaging.collectives`.
        self._analytic_gates: Dict[Any, Any] = {}
        self._jitter_rng = (streams.get("messaging.retry.jitter")
                            if streams is not None else None)

    def communicator(self, rank: int) -> "Communicator":
        """The rank-local view of this world."""
        return Communicator(self, rank)

    # -- failure bookkeeping (fault-aware mode) ---------------------------

    def fail_rank(self, rank: int) -> None:
        """Declare a world rank dead: wakes every blocked fault-aware
        operation so it can raise :class:`RankFailure`."""
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range [0, {self.size})")
        if rank in self.failed:
            return
        self.failed.add(rank)
        notice, self._failure_event = (
            self._failure_event, self.sim.event("rank-failure"))
        self._failure_event.defused = True
        notice.succeed(frozenset(self.failed))

    def failure_notice(self) -> Event:
        """The event that fires at the *next* rank failure."""
        return self._failure_event

    def next_seq(self) -> int:
        """World-unique sequence number for reliable delivery."""
        self._seq += 1
        return self._seq

    def ack_timeout_for(self, src_world: int, dst_world: int,
                        nbytes: int) -> float:
        """Retransmit allowance: configured, or a few uncontended RTTs."""
        if self.config.ack_timeout is not None:
            return self.config.ack_timeout
        forward = self.fabric.uncontended_time(src_world, dst_world, nbytes)
        back = self.fabric.uncontended_time(dst_world, src_world,
                                            ENVELOPE_BYTES)
        return 4.0 * (forward + back)

    def retry_backoff(self, attempt: int) -> float:
        """Backoff before retransmission ``attempt`` (1-based), with
        jitter from the ``messaging.retry.jitter`` stream when streams
        were provided (bit-reproducible for a fixed seed)."""
        cfg = self.config
        backoff = min(cfg.backoff_cap,
                      cfg.backoff_base * cfg.backoff_factor ** (attempt - 1))
        if self._jitter_rng is not None and cfg.jitter > 0:
            backoff *= 1.0 + cfg.jitter * float(self._jitter_rng.random())
        return backoff


class Request:
    """Handle to a non-blocking operation (wraps the background process)."""

    def __init__(self, process: Process) -> None:
        self._process = process
        self._process.defused = True  # failure surfaces via wait(), not engine

    @property
    def complete(self) -> bool:
        """True once the operation has finished."""
        return self._process.triggered

    def wait(self) -> Generator[Event, Any, Any]:
        """Generator: block until the operation finishes, return its value
        (the received object for ``irecv``, ``None`` for ``isend``)."""
        value = yield self._process
        return value

    def test(self) -> Tuple[bool, Any]:
        """Non-blocking completion check: ``(done, value_or_None)``."""
        if self._process.triggered:
            if not self._process.ok:
                raise self._process.value
            return True, self._process.value
        return False, None


def waitall(requests: Iterable[Request]) -> Generator[Event, Any, List[Any]]:
    """Generator: wait for every request; returns their values in order."""
    values: List[Any] = []
    for request in requests:
        value = yield from request.wait()
        values.append(value)
    return values


def waitany(requests: Sequence[Request]
            ) -> Generator[Event, Any, Tuple[int, Any]]:
    """Generator: wait until any request completes; returns
    ``(index, value)`` of the first completion (by event order)."""
    if not requests:
        raise ValueError("waitany needs at least one request")
    sim = requests[0]._process.sim
    index, value = yield sim.any_of([r._process for r in requests])
    return index, value


class Communicator:
    """One rank's endpoint, mpi4py-idiom surface.

    SPMD contract for collectives: every rank of the world calls the same
    collectives in the same order (tags are sequenced per rank under this
    assumption, exactly like real MPI contexts).
    """

    def __init__(self, world: CommWorld, rank: int) -> None:
        if not 0 <= rank < world.size:
            raise IndexError(f"rank {rank} out of range [0, {world.size})")
        self.world = world
        self.rank = rank
        self.size = world.size
        self._collective_seq = 0
        self._split_seq = 0
        #: Message context: 0 is the world; split() derives fresh ones.
        self._context: Any = 0

    # -- rank translation (identity in the world communicator) ------------

    def _to_world(self, rank: int) -> int:
        """Local rank -> world (fabric/mailbox) rank."""
        return rank

    def _from_world(self, world_rank: int) -> int:
        """World rank -> local rank."""
        return world_rank

    # MPI-style accessors, for muscle-memory compatibility.
    def Get_rank(self) -> int:
        """This rank's index (mpi4py-style accessor)."""
        return self.rank

    def Get_size(self) -> int:
        """Number of ranks in this communicator (mpi4py-style)."""
        return self.size

    @property
    def sim(self) -> Simulator:
        """The simulator this communicator's world runs on."""
        return self.world.sim

    # -- internals --------------------------------------------------------

    def _op_span(self, op: str) -> Any:
        """Span + entry counter for one messaging operation.

        Hot-path guard: returns the shared null span without building
        any attribute dict when observability is disabled, keeping the
        per-message overhead to an attribute lookup and a branch.
        """
        obs = self.sim.obs
        if not obs.enabled:
            return NULL_SPAN
        obs.metrics.counter("comm.ops", op=op, rank=str(self.rank)).inc()
        return obs.span(f"comm.{op}", rank=self.rank)

    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise IndexError(f"{what} rank {peer} out of range [0, {self.size})")

    @staticmethod
    def _isolate(obj: Any) -> Any:
        """Copy mutable buffers at the send boundary so sender-side writes
        after send cannot corrupt in-flight data (value semantics)."""
        if isinstance(obj, np.ndarray):
            return obj.copy()
        return obj

    def _transfer_body(self, dest: int, tag: int, payload: Any, nbytes: int,
                       ack: Optional[Event] = None
                       ) -> Generator[Event, Any, None]:
        """Process body: move the bytes, then deposit in dest's mailbox.

        ``dest`` is a *local* rank; routing happens in world coordinates,
        but the envelope records local ranks plus this communicator's
        context so receives match within the right communicator.

        Under a fabric fault plan this is *unreliable* ("best effort")
        delivery: dropped or corrupted transfers vanish silently (a NIC
        discards a bad checksum), counted in the world's stats.  Use the
        reliable path (``CommConfig.reliable``) to survive them.
        """
        world = self.world
        dest_world = self._to_world(dest)
        src_world = self._to_world(self.rank)
        if world.fabric.fault_plan is not None:
            try:
                outcome = yield from world.fabric.transfer_ex(
                    src_world, dest_world, nbytes)
            except (TransferDropped, NetworkUnreachable):
                world.stats.losses += 1
                return
            if outcome.corrupted:
                world.stats.corrupt_discarded += 1
                return
        else:
            yield from world.fabric.transfer(src_world, dest_world, nbytes)
        envelope = Envelope(source=self.rank, dest=dest, tag=tag,
                            payload=payload, nbytes=nbytes, ack=ack,
                            context=self._context)
        yield world.mailboxes[dest_world].put(envelope)

    def _start_transfer(self, dest: int, tag: int, obj: Any,
                        ack: Optional[Event] = None) -> Tuple[Process, int]:
        payload = self._isolate(obj)
        nbytes = payload_nbytes(payload)
        body = (self._reliable_body(dest, tag, payload, nbytes, ack)
                if self.world.config.reliable
                else self._transfer_body(dest, tag, payload, nbytes, ack))
        process = self.sim.process(
            body, name=f"xfer{self.rank}->{dest}#{tag}",
        )
        return process, nbytes

    def _reliable_body(self, dest: int, tag: int, payload: Any, nbytes: int,
                       ack: Optional[Event] = None
                       ) -> Generator[Event, Any, None]:
        """Process body: retransmit-until-acknowledged delivery.

        Each attempt moves the bytes; corrupted arrivals are discarded by
        the receiving NIC (no ack), so the sender retransmits after an
        adaptive ack timeout plus exponential backoff with jitter.  A
        successful deposit is acknowledged over the fabric; a lost ack
        triggers a retransmission that the destination's dedup table
        absorbs (the duplicate is re-acked, not re-delivered).  Gives up
        with :class:`DeliveryError` after ``max_retries`` retransmits,
        and with :class:`RankFailure` when the destination is known dead.
        """
        world = self.world
        cfg = world.config
        fabric = world.fabric
        seq = world.next_seq()
        dest_world = self._to_world(dest)
        src_world = self._to_world(self.rank)
        rto = world.ack_timeout_for(src_world, dest_world, nbytes)
        attempt = 0
        while True:
            if cfg.fault_aware and dest_world in world.failed:
                raise RankFailure({dest}, f"send to dead rank {dest}")
            attempt += 1
            try:
                corrupted = False
                if fabric.fault_plan is not None:
                    outcome = yield from fabric.transfer_ex(
                        src_world, dest_world, nbytes)
                    corrupted = outcome.corrupted
                else:
                    yield from fabric.transfer(src_world, dest_world, nbytes)
                if corrupted:
                    # Receiver NIC drops the bad frame: no ack will come.
                    world.stats.corrupt_discarded += 1
                    raise TransferDropped("corrupted frame discarded")
                if seq not in world._delivered_seqs:
                    world._delivered_seqs.add(seq)
                    envelope = Envelope(source=self.rank, dest=dest,
                                        tag=tag, payload=payload,
                                        nbytes=nbytes, ack=ack,
                                        context=self._context,
                                        reliable=True, seq=seq)
                    yield world.mailboxes[dest_world].put(envelope)
                else:
                    world.stats.duplicates += 1
                # Acknowledgment rides back over the fabric; its loss is
                # survivable (the retransmit hits the dedup table).
                yield from fabric.transfer(dest_world, src_world,
                                           ENVELOPE_BYTES)
                world.stats.acks += 1
                return None
            except (TransferDropped, NetworkUnreachable):
                obs = self.sim.obs
                if attempt > cfg.max_retries:
                    world.stats.delivery_failures += 1
                    obs.instant("comm.delivery_failure", dest=dest, tag=tag)
                    obs.metrics.counter("comm.delivery_failures").inc()
                    raise DeliveryError(
                        f"send {self.rank}->{dest} tag={tag} seq={seq} "
                        f"undelivered after {attempt} attempt(s)"
                    )
                world.stats.retries += 1
                obs.instant("comm.retry", dest=dest, tag=tag,
                            attempt=attempt)
                obs.metrics.counter("comm.retries").inc()
                yield self.sim.timeout(rto + world.retry_backoff(attempt))

    def _dead_local_ranks(self) -> List[int]:
        """Failed world ranks translated into this communicator's
        numbering (empty when none of this communicator's peers died)."""
        if not self.world.failed:
            return []
        return [local for local in range(self.size)
                if self._to_world(local) in self.world.failed]

    def _raise_if_dead(self, peer: int, what: str) -> None:
        if (self.world.config.fault_aware
                and self._to_world(peer) in self.world.failed):
            raise RankFailure({peer}, f"{what} to failed rank {peer}")

    # -- point-to-point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0
             ) -> Generator[Event, Any, None]:
        """Buffered send: resumes after the local injection cost.

        In reliable mode, delivery (retransmits included) continues in
        the background; an exhausted retry budget is recorded in
        ``world.stats.delivery_failures`` rather than raised here (use
        :meth:`isend` + ``wait`` to observe per-message outcomes).
        """
        self._check_peer(dest, "dest")
        self._raise_if_dead(dest, "send")
        with self._op_span("send").set(dest=dest, tag=tag):
            process, nbytes = self._start_transfer(dest, tag, obj)
            if self.world.config.active:
                process.defused = True  # outcome tracked in world.stats
            params = self.world.fabric.technology.loggp
            local_cost = params.overhead + max(
                params.gap, nbytes * params.gap_per_byte
            )
            yield self.sim.timeout(local_cost)

    def ssend(self, obj: Any, dest: int, tag: int = 0,
              timeout: Optional[float] = None
              ) -> Generator[Event, Any, None]:
        """Synchronous send: completes only when the receiver has matched
        the message (true MPI rendezvous semantics, via an ack event the
        matching ``recv`` triggers).  Fault-aware mode raises
        :class:`RankFailure` if ``dest`` dies first and
        :class:`CommTimeout` past the operation timeout."""
        self._check_peer(dest, "dest")
        self._raise_if_dead(dest, "ssend")
        with self._op_span("ssend").set(dest=dest, tag=tag):
            cfg = self.world.config
            ack = self.sim.event(f"ssend-ack{self.rank}->{dest}")
            process, _nbytes = self._start_transfer(dest, tag, obj, ack=ack)
            if not cfg.active and timeout is None:
                yield ack
                return
            process.defused = True
            op_timeout = timeout if timeout is not None else cfg.op_timeout
            deadline = (self.sim.now + op_timeout
                        if op_timeout is not None else None)
            while True:
                waiters: List[Event] = [ack]
                if cfg.fault_aware:
                    waiters.append(self.world.failure_notice())
                timer = None
                if deadline is not None:
                    remaining = deadline - self.sim.now
                    if remaining <= 0:
                        self.world.stats.op_timeouts += 1
                        raise CommTimeout(f"ssend to {dest} timed out")
                    timer = self.sim.timeout(remaining)
                    waiters.append(timer)
                if len(waiters) == 1:
                    yield ack
                    return
                yield self.sim.any_of(waiters)
                if ack.triggered:
                    return
                self._raise_if_dead(dest, "ssend")
                if timer is not None and timer.triggered:
                    self.world.stats.op_timeouts += 1
                    raise CommTimeout(f"ssend to {dest} timed out")
                # Unrelated rank failed; keep waiting for the rendezvous.

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; the request completes at delivery time.

        In reliable mode ``wait()`` raises :class:`DeliveryError` when
        the retry budget runs out and :class:`RankFailure` when the
        destination is known dead.
        """
        self._check_peer(dest, "dest")
        self._raise_if_dead(dest, "isend")
        process, _nbytes = self._start_transfer(dest, tag, obj)
        return Request(process)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: Optional[float] = None
             ) -> Generator[Event, Any, Any]:
        """Blocking receive; returns the payload object."""
        obj, _status = yield from self.recv_with_status(source, tag,
                                                        timeout)
        return obj

    def recv_with_status(self, source: int = ANY_SOURCE,
                         tag: int = ANY_TAG,
                         timeout: Optional[float] = None
                         ) -> Generator[Event, Any, Tuple[Any, Status]]:
        """Blocking receive; returns ``(payload, Status)``.

        Fault-aware mode turns hangs into errors: a receive naming a
        failed source raises :class:`RankFailure` (unless a matching
        message is already queued — it was sent before the death and is
        still deliverable); a wildcard receive raises when *any* peer
        has failed, because the dead rank could have been the match.
        ``timeout`` (or ``CommConfig.op_timeout``) bounds the wait with
        :class:`CommTimeout`.
        """
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        cfg = self.world.config
        context = self._context

        def match(e: Envelope) -> bool:
            return e.context == context and e.matches(source, tag)

        mailbox = self.world.mailboxes[self._to_world(self.rank)]
        with self._op_span("recv").set(source=source, tag=tag):
            if not cfg.active and timeout is None:
                envelope: Envelope = yield mailbox.get(match)
                return self._accept(envelope)
            world = self.world
            op_timeout = timeout if timeout is not None else cfg.op_timeout
            deadline = (self.sim.now + op_timeout
                        if op_timeout is not None else None)
            while True:
                if cfg.fault_aware and world.failed:
                    queued = any(match(item) for item in mailbox._items)
                    if not queued:
                        if (source != ANY_SOURCE
                                and self._to_world(source) in world.failed):
                            raise RankFailure(
                                {source}, f"recv from failed rank {source}")
                        if source == ANY_SOURCE:
                            dead = self._dead_local_ranks()
                            if dead:
                                raise RankFailure(
                                    dead,
                                    "wildcard recv with failed peer(s)")
                get_event = mailbox.get(match)
                waiters = [get_event]
                if cfg.fault_aware:
                    waiters.append(world.failure_notice())
                timer = None
                if deadline is not None:
                    remaining = deadline - self.sim.now
                    if remaining <= 0:
                        mailbox.cancel(get_event)
                        world.stats.op_timeouts += 1
                        raise CommTimeout(
                            f"recv(source={source}, tag={tag}) timed out")
                    timer = self.sim.timeout(remaining)
                    waiters.append(timer)
                if len(waiters) == 1:
                    envelope = yield get_event
                    return self._accept(envelope)
                yield self.sim.any_of(waiters)
                if get_event.triggered:
                    return self._accept(get_event.value)
                mailbox.cancel(get_event)
                if timer is not None and timer.triggered:
                    world.stats.op_timeouts += 1
                    raise CommTimeout(
                        f"recv(source={source}, tag={tag}) timed out")
                # A rank failed somewhere; loop to re-evaluate and re-post.

    def _accept(self, envelope: Envelope) -> Tuple[Any, Status]:
        """Deliver a matched envelope: rendezvous release + status."""
        if envelope.ack is not None:
            envelope.ack.succeed()  # rendezvous: release the ssend-er
        status = Status(source=envelope.source, tag=envelope.tag,
                        nbytes=envelope.nbytes)
        return envelope.payload, status

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``wait()`` yields the payload."""
        process = self.sim.process(
            self.recv(source, tag), name=f"irecv@{self.rank}"
        )
        return Request(process)

    def sendrecv(self, obj: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG
                 ) -> Generator[Event, Any, Any]:
        """Combined exchange (deadlock-free by construction)."""
        request = self.isend(obj, dest, sendtag)
        received = yield from self.recv(source, recvtag)
        yield from request.wait()
        return received

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
              ) -> Optional[Status]:
        """Non-blocking: status of a matching queued message, else None."""
        mailbox = self.world.mailboxes[self._to_world(self.rank)]
        for item in mailbox._items:
            if item.context == self._context and item.matches(source, tag):
                return Status(source=item.source, tag=item.tag,
                              nbytes=item.nbytes)
        return None

    # Buffer-flavoured aliases (mpi4py uppercase idiom).  Payloads are
    # numpy arrays; the wire size is exactly the buffer size.
    def Send(self, array: np.ndarray, dest: int, tag: int = 0
             ) -> Generator[Event, Any, None]:
        """Buffer send: like :meth:`send` but requires a numpy array."""
        if not isinstance(array, np.ndarray):
            raise TypeError("Send moves numpy arrays; use send for objects")
        yield from self.send(array, dest, tag)

    def Recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
             ) -> Generator[Event, Any, np.ndarray]:
        """Buffer receive: like :meth:`recv` but demands a numpy array."""
        result = yield from self.recv(source, tag)
        if not isinstance(result, np.ndarray):
            raise TypeError(
                f"Recv matched a non-buffer message ({type(result).__name__});"
                " sender should have used Send"
            )
        return result

    # -- collectives (delegating; algorithms in collectives.py) -----------

    def _next_tag(self) -> int:
        """Collective tag sequencing (see SPMD contract in class docstring).

        Every collective enters through here, so in fault-aware mode this
        single choke point makes *all* collectives raise
        :class:`RankFailure` when a member has died — the ULM/FT-MPI
        behaviour — instead of deadlocking on the dead rank's silence.
        """
        world = self.world
        if world.config.fault_aware and world.failed:
            dead = self._dead_local_ranks()
            if dead:
                raise RankFailure(
                    dead, "collective entered with failed peer(s)")
        self._collective_seq += 1
        return _collectives.COLLECTIVE_TAG_BASE + self._collective_seq

    def barrier(self, algorithm: str = "dissemination"
                ) -> Generator[Event, Any, None]:
        """Block until every rank has entered the barrier (see
        :func:`repro.messaging.collectives.barrier` for algorithms)."""
        with self._op_span("barrier"):
            result = yield from _collectives.barrier(self, algorithm)
        return result

    def bcast(self, obj: Any, root: int = 0,
              algorithm: str = "binomial") -> Generator[Event, Any, Any]:
        """Broadcast ``obj`` from ``root`` to every rank (see
        :func:`repro.messaging.collectives.bcast` for algorithms)."""
        with self._op_span("bcast").set(root=root):
            result = yield from _collectives.bcast(self, obj, root,
                                                   algorithm)
        return result

    def reduce(self, obj: Any, op: Callable = SUM, root: int = 0
               ) -> Generator[Event, Any, Any]:
        """Reduce every rank's ``obj`` with ``op``; result at ``root``."""
        with self._op_span("reduce").set(root=root):
            result = yield from _collectives.reduce(self, obj, op, root)
        return result

    def allreduce(self, obj: Any, op: Callable = SUM,
                  algorithm: str = "recursive_doubling"
                  ) -> Generator[Event, Any, Any]:
        """Reduce with ``op`` and deliver the result to every rank (see
        :func:`repro.messaging.collectives.allreduce` for algorithms)."""
        with self._op_span("allreduce"):
            result = yield from _collectives.allreduce(self, obj, op,
                                                       algorithm)
        return result

    def gather(self, obj: Any, root: int = 0
               ) -> Generator[Event, Any, Optional[List[Any]]]:
        """Collect every rank's ``obj`` at ``root`` (list by rank)."""
        with self._op_span("gather").set(root=root):
            result = yield from _collectives.gather(self, obj, root)
        return result

    def scatter(self, objs: Optional[List[Any]], root: int = 0
                ) -> Generator[Event, Any, Any]:
        """Distribute ``objs[i]`` from ``root`` to rank ``i``."""
        with self._op_span("scatter").set(root=root):
            result = yield from _collectives.scatter(self, objs, root)
        return result

    def allgather(self, obj: Any) -> Generator[Event, Any, List[Any]]:
        """Every rank receives the list of every rank's ``obj``."""
        with self._op_span("allgather"):
            result = yield from _collectives.allgather(self, obj)
        return result

    def alltoall(self, objs: List[Any]) -> Generator[Event, Any, List[Any]]:
        """Personalised exchange: rank d receives ``objs[d]`` from every
        rank, as a list indexed by source."""
        with self._op_span("alltoall"):
            result = yield from _collectives.alltoall(self, objs)
        return result

    def scan(self, obj: Any, op: Callable = SUM
             ) -> Generator[Event, Any, Any]:
        """Inclusive prefix reduction over ranks 0..self.rank."""
        with self._op_span("scan"):
            result = yield from _collectives.scan(self, obj, op)
        return result

    def exscan(self, obj: Any, op: Callable = SUM
               ) -> Generator[Event, Any, Any]:
        """Exclusive prefix reduction (rank 0 gets ``None``)."""
        with self._op_span("exscan"):
            result = yield from _collectives.exscan(self, obj, op)
        return result

    def reduce_scatter(self, objs: List[Any], op: Callable = SUM
                       ) -> Generator[Event, Any, Any]:
        """Reduce per-destination items; rank i gets reduced item i."""
        with self._op_span("reduce_scatter"):
            result = yield from _collectives.reduce_scatter(self, objs, op)
        return result

    # -- communicator construction (MPI_Comm_split) ------------------------

    def split(self, color: Any, key: int = 0
              ) -> Generator[Event, Any, Optional["SubCommunicator"]]:
        """Collective: partition this communicator by ``color``.

        Every rank calls ``split`` (SPMD contract); ranks sharing a color
        value form a new communicator, ordered by ``(key, old rank)``.
        Passing ``color=None`` opts a rank out (returns ``None``, like
        MPI_UNDEFINED).  Messages in the child cannot match messages in
        the parent or in siblings: each split gets a fresh context.
        """
        entries = yield from self.allgather((color, key, self.rank))
        self._split_seq += 1
        if color is None:
            return None
        members_local = [rank for c, k, rank in sorted(
            entries, key=lambda e: (e[1], e[2]))
            if c == color]
        members_world = [self._to_world(rank) for rank in members_local]
        my_index = members_local.index(self.rank)
        # Context derivation is pure SPMD arithmetic, so every member
        # computes the identical value with no extra communication.
        context = (self._context, self._split_seq, color)
        return SubCommunicator(self.world, members_world, my_index, context)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator rank={self.rank}/{self.size}>"


class SubCommunicator(Communicator):
    """A communicator over a subset of the world's ranks.

    Created by :meth:`Communicator.split`; local ranks are dense
    ``0..len(members)-1`` and translate to world ranks through the member
    table.  All point-to-point and collective machinery is inherited —
    only rank translation and the message context differ.
    """

    def __init__(self, world: CommWorld, members_world: List[int],
                 my_index: int, context: Any) -> None:
        if not members_world:
            raise ValueError("sub-communicator needs at least one member")
        if len(set(members_world)) != len(members_world):
            raise ValueError("duplicate members in sub-communicator")
        self.world = world
        self.members = list(members_world)
        self.rank = my_index
        self.size = len(members_world)
        self._collective_seq = 0
        self._split_seq = 0
        self._context = context

    def _to_world(self, rank: int) -> int:
        return self.members[rank]

    def _from_world(self, world_rank: int) -> int:
        return self.members.index(world_rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SubCommunicator rank={self.rank}/{self.size} "
                f"context={self._context!r}>")
