"""Message envelopes, wildcards, size estimation, reduction operators."""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Envelope",
    "Status",
    "payload_nbytes",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "BAND",
    "LOR",
]

#: Wildcards for ``recv`` matching, mirroring MPI.
ANY_SOURCE = -1
ANY_TAG = -1

#: Fixed per-message envelope overhead on the wire (headers, matching info).
ENVELOPE_BYTES = 64


@dataclass(frozen=True)
class Envelope:
    """A message in flight: routing metadata plus the payload object.

    ``ack`` (when present) is succeeded by the receiver at match time —
    the rendezvous signal behind synchronous sends.  ``context``
    identifies the communicator the message belongs to (0 is the world);
    receives only ever match within their own context, which is how
    split sub-communicators are isolated without tag arithmetic.
    """

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    ack: Any = None
    context: Any = 0
    #: True when the message travelled under the reliable-delivery
    #: protocol (retransmit-until-acknowledged); ``seq`` is then its
    #: world-unique sequence number.  Informational — deduplication
    #: happens in the delivery process, not at match time.
    reliable: bool = False
    seq: Optional[int] = None

    def matches(self, source: int, tag: int) -> bool:
        """Does this envelope satisfy a receive posted for (source, tag)?"""
        source_ok = source == ANY_SOURCE or source == self.source
        tag_ok = tag == ANY_TAG or tag == self.tag
        return source_ok and tag_ok


@dataclass(frozen=True)
class Status:
    """Receive status: where the message actually came from."""

    source: int
    tag: int
    nbytes: int


def payload_nbytes(obj: Any) -> int:
    """Wire size of a payload, envelope included.

    numpy arrays travel at their buffer size (the mpi4py "uppercase" fast
    path); bytes-likes at their length; everything else at its pickled
    length (the "lowercase" path).
    """
    if isinstance(obj, np.ndarray):
        data = obj.nbytes
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        data = len(obj)
    elif isinstance(obj, np.generic):
        data = obj.nbytes
    else:
        data = len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    return int(data) + ENVELOPE_BYTES


def _elementwise(array_fn: Callable, scalar_fn: Callable) -> Callable:
    """Reduction op that handles numpy arrays and plain scalars alike."""

    def op(a: Any, b: Any) -> Any:
        """Combine two payloads (numpy arrays elementwise, scalars
        directly); associative and commutative."""
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return array_fn(a, b)
        return scalar_fn(a, b)

    return op


#: Reduction operators for ``reduce``/``allreduce``.  All are associative
#: and commutative over the payloads the library sends (numbers and numpy
#: arrays), which the collective algorithms rely on.
SUM = _elementwise(np.add, lambda a, b: a + b)
PROD = _elementwise(np.multiply, lambda a, b: a * b)
MAX = _elementwise(np.maximum, max)
MIN = _elementwise(np.minimum, min)
BAND = _elementwise(np.bitwise_and, lambda a, b: a & b)
LOR = _elementwise(np.logical_or, lambda a, b: bool(a) or bool(b))
