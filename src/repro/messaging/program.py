"""SPMD program harness: run one generator function per rank.

``run_spmd(4, body)`` builds a simulator + fabric + world, spawns ``body``
as a process per rank, runs the clock, and returns per-rank results with
the elapsed virtual time.  This is the entry point every application
kernel and benchmark uses::

    def body(comm):
        value = yield from comm.allreduce(comm.rank, SUM)
        return value

    result = run_spmd(8, body, technology="infiniband_4x")
    result.elapsed        # virtual seconds for the slowest rank
    result.results        # [28, 28, ..., 28]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Union

from repro.messaging.comm import CommConfig, CommWorld, Communicator
from repro.network.fabric import Fabric, FabricFaultPlan
from repro.network.technologies import InterconnectTechnology, get_interconnect
from repro.network.topology import FatTreeTopology, SingleSwitchTopology, Topology
from repro.obs import Observability
from repro.sim.engine import SimulationError, Simulator
from repro.sim.rng import RandomStreams

__all__ = ["run_spmd", "make_world", "SpmdResult"]

#: Above this host count a single crossbar is unrealistic; default to a
#: full-bisection two-level fat tree instead.
_SINGLE_SWITCH_LIMIT = 64


@dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    #: Virtual time when the last rank finished (seconds).
    elapsed: float
    #: Per-rank return values, indexed by rank.
    results: List[Any]
    #: Per-rank finish times (seconds), indexed by rank.
    finish_times: List[float] = field(default_factory=list)
    #: Total bytes the fabric moved.
    bytes_moved: float = 0.0
    #: Total point-to-point transfers the fabric carried.
    transfer_count: int = 0

    @property
    def imbalance(self) -> float:
        """Max finish time over mean finish time (1.0 == perfectly even)."""
        if not self.finish_times:
            return 1.0
        mean = sum(self.finish_times) / len(self.finish_times)
        return max(self.finish_times) / mean if mean > 0 else 1.0


def _default_topology(hosts: int) -> Topology:
    if hosts <= _SINGLE_SWITCH_LIMIT:
        return SingleSwitchTopology(hosts)
    return FatTreeTopology(hosts, hosts_per_leaf=min(32, hosts))


def make_world(size: int, *,
               technology: Union[str, InterconnectTechnology] = "gigabit_ethernet",
               topology: Optional[Topology] = None,
               sim: Optional[Simulator] = None,
               contention: bool = True,
               record_transfers: bool = False,
               config: Optional[CommConfig] = None,
               streams: Optional[RandomStreams] = None,
               fault_plan: Optional[FabricFaultPlan] = None,
               obs: Optional[Observability] = None) -> CommWorld:
    """Assemble simulator + topology + fabric + mailboxes for ``size`` ranks.

    Useful when a caller wants to co-locate other processes (fault
    injectors, monitors) in the same simulation; otherwise use
    :func:`run_spmd` directly.  ``config`` enables the fault-tolerant
    messaging machinery, ``fault_plan`` injects fabric faults,
    ``streams`` supplies the named RNG streams (retry jitter) that keep
    fault campaigns bit-reproducible, and ``obs`` attaches an
    observability recorder to the (newly created) simulator.
    """
    if size < 1:
        raise ValueError(f"need at least one rank, got {size}")
    if obs is not None and sim is not None:
        raise ValueError("pass obs via Simulator(obs=...) when supplying "
                         "an existing simulator")
    if isinstance(technology, str):
        technology = get_interconnect(technology)
    if topology is None:
        topology = _default_topology(size)
    if topology.hosts < size:
        raise ValueError(
            f"topology has {topology.hosts} hosts < {size} ranks"
        )
    simulator = sim if sim is not None else Simulator(obs=obs)
    fabric = Fabric(simulator, topology, technology,
                    contention=contention,
                    record_transfers=record_transfers,
                    fault_plan=fault_plan)
    return CommWorld(simulator, fabric, config=config, streams=streams)


def run_spmd(size: int,
             body: Callable[..., Any],
             *args: Any,
             technology: Union[str, InterconnectTechnology] = "gigabit_ethernet",
             topology: Optional[Topology] = None,
             contention: bool = True,
             record_transfers: bool = False,
             max_events: Optional[int] = None,
             config: Optional[CommConfig] = None,
             streams: Optional[RandomStreams] = None,
             fault_plan: Optional[FabricFaultPlan] = None,
             obs: Optional[Observability] = None) -> SpmdResult:
    """Run ``body(comm, *args)`` as an SPMD program on ``size`` ranks.

    ``body`` must be a generator function; its return value becomes the
    rank's entry in :attr:`SpmdResult.results`.  Raises the first rank
    failure as-is, and :class:`SimulationError` on deadlock (event queue
    drained with ranks still blocked).  Pass an
    :class:`~repro.obs.Observability` as ``obs`` to capture spans and
    metrics for the whole run.
    """
    world = make_world(size, technology=technology, topology=topology,
                       contention=contention,
                       record_transfers=record_transfers,
                       config=config, streams=streams,
                       fault_plan=fault_plan, obs=obs)
    sim = world.sim

    finish_times: List[float] = [float("nan")] * size
    processes: List[Any] = []

    def rank_body(comm: Communicator) -> Generator[Any, Any, Any]:
        result = yield from body(comm, *args)
        finish_times[comm.rank] = sim.now
        return result

    for rank in range(size):
        process = sim.process(rank_body(world.communicator(rank)),
                              name=f"rank{rank}")
        process.defused = True  # failures re-raised below with context
        processes.append(process)

    sim.run(max_events=max_events)

    # Report a rank failure before any deadlock: a crashed rank is the
    # usual *cause* of the others blocking forever.
    for process in processes:
        if process.triggered and not process.ok:
            raise process.value
    for rank, process in enumerate(processes):
        if not process.triggered:
            raise SimulationError(
                f"deadlock: rank {rank} still blocked when the event queue "
                "drained (unmatched send/recv or collective order mismatch)"
            )

    return SpmdResult(
        elapsed=max(finish_times),
        results=[p.value for p in processes],
        finish_times=finish_times,
        bytes_moved=world.fabric.bytes_moved,
        transfer_count=world.fabric.transfer_count,
    )
