"""User-level messaging in virtual time.

An MPI-flavoured message-passing layer running *inside* the discrete-event
simulator.  The API follows mpi4py idiom — lowercase methods move arbitrary
Python objects, capitalised methods move numpy buffers — except that every
blocking call is a generator to be driven with ``yield from`` (this is how
a simulated process "blocks").

Why simulated: the calibration note for this reproduction observes that
CPython interpreter overhead (microseconds per bytecode) would drown the
microsecond-scale latencies the keynote's networking claims are about.  In
virtual time the latency of a message is a *model quantity* from the LogGP
parameters of the chosen interconnect, so comparisons between technologies
are exact.

Public surface
--------------
:class:`Communicator`
    Point-to-point (``send``/``recv``/``isend``/``irecv``/``ssend``) and
    collectives (``barrier``/``bcast``/``reduce``/``allreduce``/``gather``
    /``scatter``/``allgather``/``alltoall``).
:func:`run_spmd`
    Harness: run one generator function per rank over a chosen fabric and
    return per-rank results plus elapsed virtual time.
:data:`ANY_SOURCE`, :data:`ANY_TAG`, :data:`SUM`, :data:`MAX`, ...
    Wildcards and reduction operators.
"""

from repro.messaging.message import (
    ANY_SOURCE,
    ANY_TAG,
    BAND,
    LOR,
    MAX,
    MIN,
    PROD,
    SUM,
    Envelope,
    Status,
    payload_nbytes,
)
from repro.messaging.comm import (
    CommConfig,
    CommStats,
    CommTimeout,
    CommWorld,
    Communicator,
    DeliveryError,
    RankFailure,
    Request,
    SubCommunicator,
)
from repro.messaging.program import SpmdResult, make_world, run_spmd
from repro.messaging.calibrate import measure_and_fit

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BAND",
    "CommConfig",
    "CommStats",
    "CommTimeout",
    "CommWorld",
    "Communicator",
    "DeliveryError",
    "Envelope",
    "LOR",
    "MAX",
    "MIN",
    "PROD",
    "RankFailure",
    "Request",
    "SUM",
    "SpmdResult",
    "Status",
    "SubCommunicator",
    "make_world",
    "measure_and_fit",
    "payload_nbytes",
    "run_spmd",
]
