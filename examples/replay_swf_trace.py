#!/usr/bin/env python
"""Replay a workload trace: SWF in, policy comparison out.

The Parallel Workloads Archive distributes site traces in the Standard
Workload Format; this example shows the full interchange loop:

1. synthesise a month of load and export it as SWF (what you would do to
   feed another simulator);
2. read an SWF trace back (what you would do with a real archive file —
   point ``load_swf`` at e.g. ``SDSC-SP2-1998-4.2-cln.swf`` and the rest
   of the pipeline is identical);
3. replay it under every scheduling policy and print the comparison.

Usage: ``python examples/replay_swf_trace.py [trace.swf]``
"""

import io
import sys

from repro.analysis import Table
from repro.scheduler import (
    BatchSimulator,
    WorkloadGenerator,
    WorkloadParams,
    dump_swf,
    evaluate_schedule,
    get_policy,
    load_swf,
)
from repro.sim import RandomStreams

NODES = 128


def obtain_trace(path=None):
    if path is not None:
        print(f"loading {path} ...")
        jobs = load_swf(path)
        print(f"  {len(jobs)} usable jobs\n")
        return jobs
    # No file given: synthesise, round-trip through SWF, and use that —
    # proving the interchange without shipping a archive file.
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=NODES, offered_load=0.8),
        RandomStreams(seed=1998))
    jobs = generator.generate(1200)
    buffer = io.StringIO()
    dump_swf(jobs, buffer, max_nodes=NODES,
             comment="synthetic Feitelson-style month")
    print("synthesised 1200 jobs and round-tripped them through SWF "
          f"({buffer.tell()} bytes)\n")
    buffer.seek(0)
    return load_swf(buffer)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else None
    jobs = obtain_trace(path)
    widest = max(job.nodes for job in jobs)
    machine = max(NODES, widest)

    table = Table(["policy", "utilization", "mean wait (h)", "mean bsld",
                   "p95 bsld"],
                  formats={"utilization": "{:.1%}",
                           "mean wait (h)": "{:.2f}", "mean bsld": "{:.1f}",
                           "p95 bsld": "{:.1f}"})
    for policy in ("fcfs", "sjf", "easy", "conservative"):
        result = BatchSimulator(machine, get_policy(policy)).run(jobs)
        metrics = evaluate_schedule(result)
        table.add_row([policy, metrics.utilization,
                       metrics.mean_wait / 3600.0,
                       metrics.mean_bounded_slowdown,
                       metrics.p95_bounded_slowdown])
    print(f"replaying {len(jobs)} jobs on {machine} nodes:\n")
    print(table.render())
    print("\nAny archive trace drops straight into this pipeline — the "
          "policies, metrics, and fault-aware variant all consume the "
          "same Job stream.")


if __name__ == "__main__":
    main()
