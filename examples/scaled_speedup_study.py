#!/usr/bin/env python
"""Strong vs weak scaling: how petaflops machines actually get used.

Amdahl's law says a fixed problem stops speeding up; Gustafson's answer —
scale the problem with the machine — is how trans-petaflops systems earn
their keep.  This example *measures* both regimes on the simulated
cluster (2D stencil over InfiniBand), fits the serial fraction, and shows
the isoefficiency prescription for how fast the problem must grow.

Usage: ``python examples/scaled_speedup_study.py``
"""

import numpy as np

from repro.analysis import Table
from repro.analysis.scaling import (
    amdahl_speedup,
    fit_serial_fraction,
    gustafson_speedup,
    isoefficiency_problem_size,
    karp_flatt,
)
from repro.apps import ComputeCharge, run_stencil

RANKS = [1, 2, 4, 8, 16, 32]
BASE_N = 1024
ITERATIONS = 3


def charge():
    return ComputeCharge(effective_flops=3e9)


def strong_scaling():
    print(f"== strong scaling: fixed {BASE_N}x{BASE_N} grid ==")
    times = {p: run_stencil(p, n=BASE_N, iterations=ITERATIONS,
                            charge=charge(),
                            technology="infiniband_4x").elapsed
             for p in RANKS}
    speedups = [times[1] / times[p] for p in RANKS]
    fraction, rms = fit_serial_fraction(RANKS, speedups)
    table = Table(["ranks", "time (ms)", "speedup", "efficiency",
                   "Karp-Flatt f"],
                  formats={"time (ms)": "{:.2f}", "speedup": "{:.1f}",
                           "efficiency": "{:.2f}",
                           "Karp-Flatt f": lambda v: ("-" if v is None
                                                      else f"{v:.4f}")})
    for p, s in zip(RANKS, speedups):
        table.add_row([p, times[p] * 1e3, s, s / p,
                       None if p == 1 else karp_flatt(s, p)])
    print(table.render())
    print(f"\nAmdahl fit: serial fraction f = {fraction:.4f} "
          f"(rms {rms:.2f}); the rising Karp-Flatt column shows the "
          "'serial fraction' is really growing communication overhead.\n")
    return fraction


def weak_scaling():
    print("== weak scaling: grid grows with the machine "
          f"(~{BASE_N}x{BASE_N} per 4 ranks) ==")
    table = Table(["ranks", "grid", "time (ms)", "scaled speedup",
                   "Gustafson ideal"],
                  formats={"time (ms)": "{:.2f}",
                           "scaled speedup": "{:.1f}",
                           "Gustafson ideal": "{:.1f}"})
    base_time = None
    for p in RANKS:
        # 2D problem, 1D decomposition: rows scale with p so per-rank
        # work is constant.
        n = int(BASE_N * np.sqrt(p) / np.sqrt(RANKS[0]) / 2) * 2
        result = run_stencil(p, n=n, iterations=ITERATIONS,
                             charge=charge(), technology="infiniband_4x")
        if base_time is None:
            base_time = result.elapsed
        # Scaled speedup: work grew ~p while time should stay ~flat.
        work_ratio = (n * n) / (BASE_N * BASE_N)
        scaled = work_ratio * base_time / result.elapsed
        table.add_row([p, f"{n}x{n}", result.elapsed * 1e3, scaled,
                       gustafson_speedup(0.02, p)])
    print(table.render())
    print("\nScaled speedup tracks Gustafson's near-linear ideal: the "
          "machine is used by growing the science, not by shrinking the "
          "wall clock of a fixed problem.\n")


def isoefficiency(fraction):
    print("== isoefficiency: how fast must the problem grow? ==")
    table = Table(["ranks", "required work (x base)"],
                  formats={"required work (x base)": "{:.0f}"})
    for p in (32, 256, 2048, 16384):
        grown = isoefficiency_problem_size(1.0, 32, p,
                                           overhead_exponent=1.5)
        table.add_row([p, grown])
    print(table.render())
    print("\n(1D-decomposed 2D stencil: overhead exponent ~1.5 — work "
          "must grow as p^1.5 to hold efficiency, i.e. the grid side "
          "grows as p^0.75. Memory per node stays bounded, which is why "
          "weak scaling was always the petaflops plan.)")


def main():
    fraction = strong_scaling()
    weak_scaling()
    isoefficiency(fraction)


if __name__ == "__main__":
    main()
