#!/usr/bin/env python
"""Plan the I/O system for a big machine's checkpoints.

The quiet corollary of the keynote's storage-capacity curve: every byte
of DRAM you buy is a byte your checkpoints must move.  This example plays
storage architect for a 4096-node, 2 GiB/node machine:

1. sweep the I/O server count and watch the dump-time bottleneck move
   from disks to client links;
2. feed each provisioning into the Daly machinery and price the machine
   time each option loses to checkpointing;
3. sanity-check one configuration by actually running the dump on the
   simulated fabric + striped file system.

Usage: ``python examples/checkpoint_io_planning.py``
"""

from repro.analysis import Table
from repro.fault import daly_interval, efficiency
from repro.io import (
    DiskModel,
    checkpoint_write_time,
    derive_checkpoint_params,
    simulate_checkpoint_write,
)
from repro.network import get_interconnect
from repro.units import format_time

NODES = 4096
MEMORY_PER_NODE = 2 * 2**30
NODE_MTBF_YEARS = 3.0
RAID = DiskModel(transfer_bytes_per_second=160e6, capacity_bytes=320e9)


def provisioning_sweep():
    technology = get_interconnect("infiniband_4x")
    link = technology.loggp.bandwidth
    print(f"== provisioning sweep: {NODES} nodes x 2 GiB, IB-4x links, "
          "4-spindle RAID servers ==\n")
    table = Table(["servers", "ratio", "dump time", "bottleneck",
                   "Daly interval", "machine kept"],
                  formats={"machine kept": "{:.1%}"})
    for servers in (16, 64, 256, 1024, 4096):
        dump = MEMORY_PER_NODE * 0.5
        total = dump * NODES
        client_time = dump / link
        ingest_time = total / (servers * link)
        disk_time = total / (servers * RAID.transfer_bytes_per_second)
        bottleneck = max(
            ("client link", client_time),
            ("server links", ingest_time),
            ("disks", disk_time),
            key=lambda pair: pair[1],
        )[0]
        params = derive_checkpoint_params(
            MEMORY_PER_NODE, NODES, servers, link,
            NODE_MTBF_YEARS * 365.25 * 86400, disk=RAID)
        tau = daly_interval(params)
        table.add_row([servers, f"1:{NODES // servers}",
                       format_time(params.checkpoint_seconds), bottleneck,
                       format_time(tau), efficiency(params, tau)])
    print(table.render())
    print("\nReading the table: with 2002-class spindles the disks bind "
          "at every sane ratio, so each doubling of I/O servers halves "
          "the dump and buys real machine time — the curve only knees "
          "over when server or client links saturate, far beyond any "
          "sane budget.  Deciding where on this curve to stop is the "
          "I/O-architect's job this example automates.\n")


def validate_one_configuration():
    print("== validating 1:16 provisioning on the simulator ==")
    technology = get_interconnect("infiniband_4x")
    nodes, servers = 64, 4           # a 1:16 slice of the big machine
    dump = 8 << 20                   # scaled-down dump, same ratios
    simulated = simulate_checkpoint_write(nodes, servers, dump, technology,
                                          disk=RAID)
    analytic = checkpoint_write_time(dump, nodes, servers,
                                     technology.loggp.bandwidth, RAID)
    print(f"analytic bound {format_time(analytic)}, simulated "
          f"{format_time(simulated)} (x{simulated / analytic:.2f} — seeks, "
          "queueing and fabric contention explain the gap).")


def main():
    provisioning_sweep()
    validate_one_configuration()


if __name__ == "__main__":
    main()
