#!/usr/bin/env python
"""Interconnect shootout: pick the right 2005 fabric for your workload.

A 32-node cluster buyer in 2005 could pick Gigabit Ethernet ($150/port),
Myrinet ($1200/port), or InfiniBand 4x ($1000/port).  The right answer
depends entirely on the workload — so we run the workloads.  Each fabric
carries the three kernels whose communication patterns span the space
(nearest-neighbour stencil, allreduce-bound CG, alltoall-bound FFT) and
the example reports time-to-solution per dollar.

Usage: ``python examples/interconnect_shootout.py``
"""

from repro import get_interconnect, get_scenario
from repro.analysis import Table
from repro.apps import ComputeCharge, run_cg, run_fft2d, run_stencil

RANKS = 32
FABRICS = ["gigabit_ethernet", "myrinet_2000", "infiniband_4x"]
#: 2005 dual-socket node street price, for the $/port context.
NODE_COST = 3000.0


def measure(technology):
    charge = ComputeCharge(effective_flops=3e9)
    stencil = run_stencil(RANKS, n=2048, iterations=5, charge=charge,
                          technology=technology).elapsed
    cg = run_cg(RANKS, n=262144, max_iterations=50, tolerance=0.0,
                charge=charge, technology=technology).elapsed
    fft = run_fft2d(RANKS, n=1024, charge=charge,
                    technology=technology).elapsed
    return {"stencil": stencil, "cg": cg, "fft": fft}


def main():
    results = {fabric: measure(fabric) for fabric in FABRICS}

    table = Table(["fabric", "$/port", "stencil ms", "cg ms", "fft ms",
                   "cluster $ premium"],
                  formats={"stencil ms": "{:.2f}", "cg ms": "{:.2f}",
                           "fft ms": "{:.2f}",
                           "cluster $ premium": "{:+.1%}"})
    base_cost = RANKS * (NODE_COST
                         + get_interconnect(FABRICS[0]).cost_per_port)
    for fabric in FABRICS:
        port = get_interconnect(fabric).cost_per_port
        cluster_cost = RANKS * (NODE_COST + port)
        times = results[fabric]
        table.add_row([fabric, f"${port:.0f}",
                       times["stencil"] * 1e3, times["cg"] * 1e3,
                       times["fft"] * 1e3,
                       cluster_cost / base_cost - 1.0])
    print(f"{RANKS}-node cluster, 2005 parts, virtual time to solution:\n")
    print(table.render())

    print("\nReading the table:")
    gige, ib = results["gigabit_ethernet"], results["infiniband_4x"]
    for kernel, blurb in [
        ("stencil", "nearest-neighbour halo: cheap networks suffice"),
        ("cg", "latency-bound dot products: fast fabrics pay off"),
        ("fft", "alltoall transposes: bandwidth is everything"),
    ]:
        gain = gige[kernel] / ib[kernel]
        print(f"  {kernel:8s} IB is {gain:4.1f}x faster than GigE  ({blurb})")
    premium = (RANKS * (NODE_COST + 1000.0)) / base_cost - 1.0
    print(f"\nIB adds {premium:.0%} to the cluster price; if your codes "
          "look like FFT or CG it repays itself, if they look like the "
          "stencil (or a parameter sweep) keep the ethernet and buy more "
          "nodes — the 2005 conventional wisdom, reproduced.")


if __name__ == "__main__":
    main()
