#!/usr/bin/env python
"""Quickstart: a ten-minute tour of the clusterlaunch library.

Runs in seconds and touches each layer:

1. project the 2002 technology roadmap forward,
2. build node specs for the keynote's "revolutionary structures",
3. run an SPMD program (allreduce) on a simulated InfiniBand fabric,
4. solve a real distributed CG system and verify it,
5. ask the fault model what a 10k-node machine costs you in failures.

Usage: ``python examples/quickstart.py``
"""

import numpy as np

from repro import (
    SUM,
    daly_interval,
    format_flops,
    format_time,
    get_scenario,
    make_node,
    run_cg,
    run_spmd,
    system_mtbf,
)
from repro.fault import CheckpointParams, efficiency


def main():
    # 1. The roadmap: what does the nominal scenario say about 2008?
    roadmap = get_scenario("nominal")
    print("== the curves ==")
    for year in (2002.75, 2005, 2008):
        peak = roadmap.value("node_peak_flops", year)
        dollars = roadmap.dollars_per_flops(year)
        print(f"  {year:7.2f}: node peak {format_flops(peak):>12s}, "
              f"${dollars * 1e9:8.2f} per GFLOPS")

    # 2. Node architectures at the same roadmap point.
    print("\n== the nodes (2006) ==")
    for architecture in ("conventional", "blade", "soc", "pim"):
        node = make_node(architecture, roadmap, 2006)
        print(f"  {architecture:12s} peak={format_flops(node.peak_flops):>12s} "
              f"balance={node.machine_balance:5.1f} F/B  "
              f"{node.flops_per_watt / 1e6:6.0f} MFLOPS/W")

    # 3. SPMD hello: 16 ranks allreduce their rank ids in virtual time.
    def hello(comm):
        total = yield from comm.allreduce(comm.rank, SUM)
        return total

    outcome = run_spmd(16, hello, technology="infiniband_4x")
    print("\n== messaging ==")
    print(f"  16-rank allreduce -> {outcome.results[0]} in "
          f"{outcome.elapsed * 1e6:.1f} virtual us on InfiniBand 4x")

    # 4. A real solver on the simulated machine.
    result = run_cg(8, n=256, max_iterations=1000, technology="infiniband_4x")
    assert result.converged and np.allclose(result.x, 1.0, atol=1e-5)
    print("\n== applications ==")
    print(f"  distributed CG: {result.iterations} iterations, residual "
          f"{result.residual:.2e}, {result.elapsed * 1e3:.2f} virtual ms "
          "(solution verified against the exact answer)")

    # 5. What scale does to reliability.
    print("\n== faults at scale ==")
    for nodes in (100, 10_000):
        mtbf = system_mtbf(3 * 365.25 * 86400, nodes)
        params = CheckpointParams(300.0, 600.0, mtbf)
        tau = daly_interval(params)
        print(f"  {nodes:6d} nodes: system MTBF {format_time(mtbf):>9s}, "
              f"checkpoint every {format_time(tau):>9s}, "
              f"efficiency {efficiency(params, tau):.1%}")

    print("\nNext: examples/design_a_petaflops_machine.py, "
          "examples/interconnect_shootout.py, examples/operate_a_cluster.py")


if __name__ == "__main__":
    main()
