#!/usr/bin/env python
"""Design study: ride the roadmap to a petaflops machine.

The keynote's central promise is the "trans-Petaflops performance regime"
within the decade.  This example plays procurement officer: every two
years from 2002 we spend the same $25M, pick the best node architecture
and interconnect of the day, and watch the machine's peak, HPL Rmax,
footprint, power, and reliability evolve — until the petaflops shows up.

Usage: ``python examples/design_a_petaflops_machine.py``
"""

from repro import (
    CheckpointParams,
    HplModel,
    cluster_metrics,
    daly_interval,
    design_to_budget,
    format_dollars,
    format_flops,
    format_power,
    format_time,
    get_scenario,
    system_mtbf,
)
from repro.analysis import Table
from repro.fault import efficiency
from repro.nodes import ARCHITECTURES

BUDGET = 25e6
NODE_MTBF = 3 * 365.25 * 86400.0


def best_design(roadmap, year):
    """Try every architecture available this year; keep the highest HPL
    Rmax for the budget — procurement by benchmark, as real sites did."""
    model = HplModel()
    best = None
    for architecture in ARCHITECTURES:
        try:
            spec = design_to_budget(BUDGET, roadmap, year, architecture)
        except ValueError:
            continue  # architecture not purchasable yet
        estimate = model.estimate(spec)
        if best is None or estimate.rmax_flops > best[1].rmax_flops:
            best = (spec, estimate)
    return best


def main():
    roadmap = get_scenario("nominal")
    table = Table(["year", "arch", "nodes", "network", "peak", "Rmax",
                   "racks", "power", "sys MTBF", "eff w/ckpt"],
                  formats={"year": "{:.0f}"})
    crossing_year = None

    for year in (2002.75, 2004, 2006, 2008, 2010, 2012):
        spec, estimate = best_design(roadmap, year)
        metrics = cluster_metrics(spec)
        mtbf = system_mtbf(NODE_MTBF, spec.node_count)
        params = CheckpointParams(300.0, 600.0, mtbf)
        table.add_row([
            year,
            spec.node.architecture,
            spec.node_count,
            spec.interconnect.name,
            format_flops(spec.peak_flops),
            format_flops(estimate.rmax_flops),
            metrics.packaging.racks,
            format_power(metrics.total_watts),
            format_time(mtbf),
            f"{efficiency(params, daly_interval(params)):.0%}",
        ])
        if crossing_year is None and estimate.rmax_flops >= 1e15:
            crossing_year = year

    print(f"The same {format_dollars(BUDGET)} every two years "
          "(nominal scenario, best architecture + network of the day):\n")
    print(table.render())
    if crossing_year is not None:
        print(f"\n-> first petaflops Rmax for this budget: {crossing_year:.0f}")
    else:
        print("\n-> petaflops Rmax is still out of reach for this budget "
              "by 2012; raise the budget or the scenario")
    print("\nNote the last two columns: the machine that finally reaches "
          "petaflops also fails every few hours — the keynote's point "
          "that new system software (checkpointing, recovery, resource "
          "management) is part of the price of scale.")


if __name__ == "__main__":
    main()
