#!/usr/bin/env python
"""Operate a cluster: the system-software side of the keynote.

"The software tools to manage them will take on new responsibilities
alleviating much of the burden experienced by today's practitioners."
This example is a day in the life of those tools on a 512-node machine:

1. a month of batch workload under FCFS vs EASY backfilling — what the
   scheduler choice is worth in delivered node-hours;
2. the reliability picture at this scale and the checkpoint policy the
   system should impose on long jobs;
3. a Monte-Carlo rehearsal of a 48-hour capability job under failures,
   with and without the optimal policy.

Usage: ``python examples/operate_a_cluster.py``
"""

import numpy as np

from repro import (
    CheckpointParams,
    ExponentialFailures,
    RandomStreams,
    WorkloadGenerator,
    WorkloadParams,
    daly_interval,
    evaluate_schedule,
    format_time,
    get_policy,
    simulate_checkpoint_run,
    system_mtbf,
)
from repro.analysis import Table
from repro.fault import expected_runtime
from repro.scheduler import BatchSimulator

NODES = 512
NODE_MTBF = 3 * 365.25 * 86400.0


def scheduling_study():
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=NODES, offered_load=0.85),
        RandomStreams(seed=2002))
    jobs = generator.generate(3000)
    print("== 1. the scheduler is worth real money ==")
    table = Table(["policy", "utilization", "mean wait", "p95 slowdown"],
                  formats={"utilization": "{:.1%}"})
    delivered = {}
    for policy in ("fcfs", "easy", "conservative"):
        outcome = BatchSimulator(NODES, get_policy(policy)).run(jobs)
        metrics = evaluate_schedule(outcome)
        delivered[policy] = metrics.utilization
        table.add_row([policy, metrics.utilization,
                       format_time(metrics.mean_wait),
                       f"{metrics.p95_bounded_slowdown:.0f}x"])
    print(table.render())
    gain = delivered["easy"] - delivered["fcfs"]
    print(f"\nEASY backfilling recovers {gain:.0%} of the machine over "
          f"FCFS — on {NODES} nodes that is {gain * NODES:.0f} nodes' "
          "worth of capacity, for free, in software.\n")


def reliability_study():
    print("== 2. the reliability picture ==")
    mtbf = system_mtbf(NODE_MTBF, NODES)
    params = CheckpointParams(checkpoint_seconds=300.0,
                              restart_seconds=600.0,
                              system_mtbf_seconds=mtbf)
    tau = daly_interval(params)
    print(f"{NODES} nodes x 3-year node MTBF -> a failure every "
          f"{format_time(mtbf)}.")
    print(f"Site policy the tools should impose: checkpoint every "
          f"{format_time(tau)} (Daly-optimal for 5-min checkpoints).\n")
    return params, tau


def capability_job_rehearsal(params, tau):
    print("== 3. rehearsing a 48-hour capability job ==")
    work = 48 * 3600.0
    model = ExponentialFailures(params.system_mtbf_seconds)
    rows = []
    for label, interval in [("hourly ckpt", 3600.0),
                            ("Daly-optimal", tau)]:
        runs = [simulate_checkpoint_run(work, params, interval, model,
                                        RandomStreams(31), rep)
                for rep in range(10)]
        makespans = np.array([r.makespan for r in runs])
        failures = np.mean([r.failures for r in runs])
        rows.append((label, interval, makespans.mean(), failures))
    expected = expected_runtime(params, work, tau)
    table = Table(["policy", "interval", "mean makespan", "failures/run"],
                  formats={"failures/run": "{:.1f}"})
    for label, interval, makespan, failures in rows:
        table.add_row([label, format_time(interval),
                       format_time(makespan), failures])
    print(table.render())
    print(f"\nAnalytic expectation at the optimal interval: "
          f"{format_time(expected)} — the Monte-Carlo rehearsal agrees, "
          "so the policy can be trusted before the real job burns a "
          "week of machine time.")


def main():
    scheduling_study()
    params, tau = reliability_study()
    capability_job_rehearsal(params, tau)


if __name__ == "__main__":
    main()
